"""Shared fixtures for the benchmark harnesses.

Every benchmark regenerates one table or figure of the thesis' evaluation
(see DESIGN.md's per-experiment index) and prints the reproduced rows/series
so ``pytest benchmarks/ --benchmark-only -s`` doubles as the paper-report
generator.  Setup objects are session-scoped: building the synthetic
databases dominates wall-clock otherwise.
"""

from __future__ import annotations

import pytest

from repro.experiments import ch3, ch4, ch5, ch6


@pytest.fixture(scope="session")
def ch3_imdb():
    return ch3.build_setup("imdb", n_queries=20)


@pytest.fixture(scope="session")
def ch3_lyrics():
    return ch3.build_setup("lyrics", n_queries=20)


@pytest.fixture(scope="session")
def ch4_imdb():
    return ch4.build_setup("imdb", n_queries=12)


@pytest.fixture(scope="session")
def ch4_lyrics():
    return ch4.build_setup("lyrics", n_queries=12)


@pytest.fixture(scope="session")
def ch6_setup():
    return ch6.build_setup(n_tables=60)
