"""Ablation benches for the design choices DESIGN.md calls out.

* **Option selection policy** — Alg. 3.2's information-gain criterion vs a
  random-splitting-option control: IG must not cost more interactions.
* **Keyword statistic** — ATF (typicality) vs TF-IDF (distinctiveness) for
  ranking the intended interpretation: the thesis' §3.8.3 observation that
  ATF wins on keyword workloads.
* **Top-k execution** — TA-style early stopping vs naive execute-everything:
  identical results, strictly less work.
"""

import statistics

from repro.core.probability import TFIDFModel
from repro.core.topk import TopKExecutor
from repro.experiments import ch3
from repro.experiments.reporting import format_table
from repro.iqp.ranking import Ranker
from repro.iqp.session import ConstructionSession
from repro.user.oracle import SimulatedUser


def test_ablation_option_selection_policy(benchmark, ch3_imdb):
    def run():
        ig_costs, random_costs = [], []
        model = ch3_imdb.models["atf_tequal"]
        for item in ch3_imdb.workload:
            u1, u2 = SimulatedUser(item.intended), SimulatedUser(item.intended)
            ig = ConstructionSession(item.query, ch3_imdb.engine, model).run(u1)
            rnd = ConstructionSession(
                item.query,
                ch3_imdb.engine,
                model,
                selection_policy="random",
                policy_seed=13,
            ).run(u2)
            ig_costs.append(ig.options_evaluated)
            random_costs.append(rnd.options_evaluated)
        return ig_costs, random_costs

    ig_costs, random_costs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sum(ig_costs) <= sum(random_costs)
    print()
    print(
        format_table(
            ["policy", "mean cost", "max cost"],
            [
                ["information gain", statistics.mean(ig_costs), max(ig_costs)],
                ["random option", statistics.mean(random_costs), max(random_costs)],
            ],
        )
    )


def test_ablation_atf_vs_tfidf(benchmark, ch3_imdb):
    def run():
        atf_ranker = Ranker(ch3_imdb.engine, ch3_imdb.models["atf_tequal"])
        tfidf_model = TFIDFModel(ch3_imdb.engine.index, ch3_imdb.engine.catalog)
        tfidf_ranker = Ranker(ch3_imdb.engine, tfidf_model)
        atf_ranks, tfidf_ranks = [], []
        for item in ch3_imdb.workload:
            r1 = atf_ranker.rank_of(item.query, item.intended)
            r2 = tfidf_ranker.rank_of(item.query, item.intended)
            if r1 is not None and r2 is not None:
                atf_ranks.append(r1)
                tfidf_ranks.append(r2)
        return atf_ranks, tfidf_ranks

    atf_ranks, tfidf_ranks = benchmark.pedantic(run, rounds=1, iterations=1)
    assert atf_ranks
    # ATF's typicality preference wins on keyword workloads (§3.8.3).
    assert statistics.median(atf_ranks) <= statistics.median(tfidf_ranks)
    print()
    print(
        format_table(
            ["statistic", "median intended rank", "mean intended rank"],
            [
                ["ATF", statistics.median(atf_ranks), statistics.mean(atf_ranks)],
                ["TF-IDF", statistics.median(tfidf_ranks), statistics.mean(tfidf_ranks)],
            ],
        )
    )


def test_ablation_topk_early_stopping(benchmark, ch3_imdb):
    def run():
        executor = TopKExecutor(ch3_imdb.database)
        smart_work = naive_work = 0
        mismatches = 0
        for item in ch3_imdb.workload[:10]:
            ranked = ch3_imdb.engine.rank(item.query)
            smart = executor.execute(ranked, k=3)
            smart_work += executor.statistics.interpretations_executed
            naive = executor.execute_naive(ranked, k=3)
            naive_work += executor.statistics.interpretations_executed
            if [r.row_uids() for r in smart] != [r.row_uids() for r in naive]:
                mismatches += 1
        return smart_work, naive_work, mismatches

    smart_work, naive_work, mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mismatches == 0  # early stopping never changes the answer
    assert smart_work < naive_work
    print()
    print(
        format_table(
            ["strategy", "interpretations executed"],
            [["early stopping (TA)", smart_work], ["naive union", naive_work]],
        )
    )
