"""Storage-backend comparison: build time and query latency, memory vs SQLite.

Not a thesis figure — this benchmark guards the storage-backend abstraction:
it reports what switching engines costs (dataset build/load time, per-query
pipeline latency through :class:`repro.engine.QueryEngine`) and asserts both
engines return identical top-ranked results while doing so.  Result caching
is disabled here so the numbers measure actual execution; the cache's effect
is measured separately in ``benchmarks/test_bench_engine.py``.  Run with
``-s`` to see the table:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_backends.py -s
"""

from __future__ import annotations

import time

from repro.datasets.imdb import build_imdb
from repro.engine import EngineConfig, QueryEngine
from repro.experiments.reporting import format_table

QUERIES = ["hanks 2001", "london", "stone hill", "summer"]
BUILD_KWARGS = dict(seed=7, n_movies=150, n_actors=90)
#: Measure raw pipeline latency: no result cache.
UNCACHED = EngineConfig(cache_results=False)


def _timed_build(backend: str, db_path=None):
    start = time.perf_counter()
    db = build_imdb(**BUILD_KWARGS, backend=backend, db_path=db_path)
    return db, time.perf_counter() - start


def _run_queries(engine: QueryEngine, repeats: int = 3):
    """Mean best-of-N per-query latency (ms) and result signatures for parity."""
    signatures = []
    total = 0.0
    for query_text in QUERIES:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            context = engine.run(query_text, k=5)
            best = min(best, time.perf_counter() - start)
        total += best
        signatures.append(
            (
                query_text,
                [i.to_structured_query().algebra() for i, _p in context.ranked[:3]],
                [r.row_uids() for r in context.results],
            )
        )
    return (total / len(QUERIES)) * 1000.0, signatures


def test_bench_backends(benchmark, tmp_path):
    rows = []

    mem_db, mem_build = _timed_build("memory")
    mem_engine = QueryEngine(mem_db, config=UNCACHED)
    mem_latency, mem_signatures = benchmark.pedantic(
        lambda: _run_queries(mem_engine), rounds=1, iterations=1
    )
    rows.append(["memory", f"{mem_build * 1000:.1f}", "-", f"{mem_latency:.2f}"])

    db_path = tmp_path / "imdb.sqlite"
    sq_db, sq_build = _timed_build("sqlite", db_path=db_path)
    sq_latency, sq_signatures = _run_queries(QueryEngine(sq_db, config=UNCACHED))
    sq_db.close()

    # Second open: rows already on disk, generation skipped, index loaded
    # from the persisted postings side tables.
    reopened, reload_time = _timed_build("sqlite", db_path=db_path)
    rows.append(
        ["sqlite", f"{sq_build * 1000:.1f}", f"{reload_time * 1000:.1f}", f"{sq_latency:.2f}"]
    )

    # Parity is part of the benchmark contract: same top-ranked
    # interpretations and identical top-k rows on both engines.
    assert sq_signatures == mem_signatures
    reopened_latency, reopened_signatures = _run_queries(
        QueryEngine(reopened, config=UNCACHED)
    )
    assert reopened_signatures == mem_signatures
    reopened.close()

    print()
    print(
        format_table(
            ["backend", "build ms", "reload ms", "query ms"],
            rows + [["sqlite (reopened)", "-", f"{reload_time * 1000:.1f}", f"{reopened_latency:.2f}"]],
        )
    )
