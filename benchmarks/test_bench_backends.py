"""Storage-backend comparison: build time and query latency, memory vs SQLite.

Not a thesis figure — this benchmark guards the storage-backend abstraction:
it reports what switching engines costs (dataset build/load time, per-query
interpretation-execution latency) and asserts both engines return identical
top-ranked results while doing so.  Run with ``-s`` to see the table:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_backends.py -s
"""

from __future__ import annotations

import time

from repro.core.generator import InterpretationGenerator
from repro.core.keywords import KeywordQuery
from repro.core.probability import ATFModel, TemplateCatalog, rank_interpretations
from repro.core.topk import TopKExecutor
from repro.datasets.imdb import build_imdb
from repro.experiments.reporting import format_table

QUERIES = ["hanks 2001", "london", "stone hill", "summer"]
BUILD_KWARGS = dict(seed=7, n_movies=150, n_actors=90)


def _timed_build(backend: str, db_path=None):
    start = time.perf_counter()
    db = build_imdb(**BUILD_KWARGS, backend=backend, db_path=db_path)
    return db, time.perf_counter() - start


def _query_stack(db):
    generator = InterpretationGenerator(db, max_template_joins=4)
    model = ATFModel(db.require_index(), TemplateCatalog(generator.templates))
    return generator, model


def _run_queries(db, generator, model, repeats: int = 3):
    """Mean per-query latency (ms) and the result signatures for parity."""
    signatures = []
    total = 0.0
    for query_text in QUERIES:
        query = KeywordQuery.parse(query_text)
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            ranked = rank_interpretations(generator.interpretations(query), model)
            results = TopKExecutor(db).execute(ranked, k=5)
            best = time.perf_counter() - start  # last run, caches warm
        total += best
        signatures.append(
            (
                query_text,
                [i.to_structured_query().algebra() for i, _p in ranked[:3]],
                [r.row_uids() for r in results],
            )
        )
    return (total / len(QUERIES)) * 1000.0, signatures


def test_bench_backends(benchmark, tmp_path):
    rows = []

    mem_db, mem_build = _timed_build("memory")
    mem_latency, mem_signatures = benchmark.pedantic(
        lambda: _run_queries(mem_db, *_query_stack(mem_db)), rounds=1, iterations=1
    )
    rows.append(["memory", f"{mem_build * 1000:.1f}", "-", f"{mem_latency:.2f}"])

    db_path = tmp_path / "imdb.sqlite"
    sq_db, sq_build = _timed_build("sqlite", db_path=db_path)
    sq_latency, sq_signatures = _run_queries(sq_db, *_query_stack(sq_db))
    sq_db.close()

    # Second open: rows already on disk, generation skipped, index rebuilt
    # from the stored tables.
    reopened, reload_time = _timed_build("sqlite", db_path=db_path)
    rows.append(
        ["sqlite", f"{sq_build * 1000:.1f}", f"{reload_time * 1000:.1f}", f"{sq_latency:.2f}"]
    )

    # Parity is part of the benchmark contract: same top-ranked
    # interpretations and identical top-k rows on both engines.
    assert sq_signatures == mem_signatures
    reopened_latency, reopened_signatures = _run_queries(reopened, *_query_stack(reopened))
    assert reopened_signatures == mem_signatures
    reopened.close()

    print()
    print(
        format_table(
            ["backend", "build ms", "reload ms", "query ms"],
            rows + [["sqlite (reopened)", "-", f"{reload_time * 1000:.1f}", f"{reopened_latency:.2f}"]],
        )
    )
