"""Data-based vs schema-based baseline comparison (Sections 2.2.2/2.2.3).

Context bench: BANKS answers directly on the tuple graph; the schema-based
pipeline disambiguates first and executes candidate networks.  Shapes to
hold: both find answers for the workload; BANKS' minimal joining tuple trees
for 2-concept queries have the actor-acts-movie size (<= 3 tuples), and the
schema-based top-1 result agrees with BANKS' tree on the connecting tuples
for unambiguous queries.
"""

from repro.baselines.banks import BanksSearch
from repro.core.probability import rank_interpretations
from repro.db.datagraph import DataGraph
from repro.experiments.reporting import format_table


def test_banks_vs_schema_based(benchmark, ch3_imdb):
    def run():
        datagraph = DataGraph(ch3_imdb.database)
        banks = BanksSearch(datagraph)
        model = ch3_imdb.models["atf_tequal"]
        rows = []
        answered_banks = answered_schema = 0
        for item in ch3_imdb.workload[:12]:
            trees = banks.search(item.query, k=3)
            ranked = rank_interpretations(
                ch3_imdb.generator.interpretations(item.query), model
            )
            schema_rows = []
            for interp, _p in ranked[:3]:
                schema_rows = interp.execute(ch3_imdb.database, limit=5)
                if schema_rows:
                    break
            answered_banks += bool(trees)
            answered_schema += bool(schema_rows)
            rows.append(
                [
                    str(item.query),
                    len(trees),
                    trees[0].size if trees else 0,
                    len(schema_rows),
                ]
            )
        return rows, answered_banks, answered_schema

    rows, answered_banks, answered_schema = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert answered_banks >= len(rows) * 0.7
    assert answered_schema >= len(rows) * 0.7
    for _query, _n_trees, tree_size, _n_rows in rows:
        assert tree_size <= 5  # minimal JTTs stay small
    print()
    print(
        format_table(
            ["query", "BANKS trees", "best tree size", "schema rows"], rows
        )
    )
