"""QueryEngine perf guards: persisted-postings cold opens, warm result cache.

Not a thesis figure — this benchmark measures the two storage optimizations
the engine seam hosts:

* **Cold open.** Opening a populated SQLite store with persisted index
  postings must beat the rebuild path (re-scanning + re-tokenizing every
  stored table), while producing an identical index.
* **Warm cache.** A second engine session over an unchanged store must serve
  identical top-k rows while executing zero interpretations (all rows come
  from the cross-session result cache).

Run with ``-s`` to see the table:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_engine.py -s
"""

from __future__ import annotations

import os
import time

from repro.datasets.imdb import build_imdb, imdb_schema
from repro.db.backends.sqlite import SQLiteBackend
from repro.engine import QueryEngine, ResultCache
from repro.experiments.reporting import format_table

QUERIES = ["hanks 2001", "london", "stone hill", "summer"]
BUILD_KWARGS = dict(seed=7, n_movies=150, n_actors=90)
REPEATS = 3


def _timed_open(path, persist_index: bool) -> tuple[SQLiteBackend, float]:
    """Best-of-N cold open: connect + build_indexes on a populated store."""
    best = float("inf")
    db = None
    for _ in range(REPEATS):
        if db is not None:
            db.close()
        start = time.perf_counter()
        db = SQLiteBackend(imdb_schema(), path=path, persist_index=persist_index)
        db.build_indexes()
        best = min(best, time.perf_counter() - start)
    return db, best


def test_bench_engine_cold_open_and_warm_cache(benchmark, tmp_path):
    path = tmp_path / "imdb.sqlite"
    build_imdb(**BUILD_KWARGS, backend="sqlite", db_path=path).close()

    # -- cold open: persisted postings vs full rebuild ---------------------
    rebuilt_db, rebuild_seconds = benchmark.pedantic(
        lambda: _timed_open(path, persist_index=False), rounds=1, iterations=1
    )
    rebuilt_snapshot = rebuilt_db.index.stats_snapshot()
    rebuilt_db.close()
    loaded_db, load_seconds = _timed_open(path, persist_index=True)
    assert loaded_db.index.stats_snapshot() == rebuilt_snapshot
    # Locally the margin is ~2x; shared CI runners get a little slack so a
    # scheduler hiccup cannot fail unrelated changes (best-of-N already
    # absorbs most noise).
    slack = 1.25 if os.environ.get("CI") else 1.0
    assert load_seconds < rebuild_seconds * slack, (
        f"persisted postings ({load_seconds * 1000:.1f} ms) must beat the "
        f"rebuild path ({rebuild_seconds * 1000:.1f} ms)"
    )

    # -- warm cache: a "new session" executes zero interpretations ---------
    ResultCache.clear_process_cache()
    first_engine = QueryEngine(loaded_db)
    cold_stats: list[tuple[str, int, list]] = []
    cold_seconds = 0.0
    for query_text in QUERIES:
        start = time.perf_counter()
        context = first_engine.run(query_text, k=5)
        cold_seconds += time.perf_counter() - start
        cold_stats.append(
            (
                query_text,
                context.executor_statistics.interpretations_executed,
                [r.row_uids() for r in context.results],
            )
        )
    loaded_db.close()

    ResultCache.clear_process_cache()  # simulate the next CLI run
    warm_db, _ = _timed_open(path, persist_index=True)
    warm_engine = QueryEngine(warm_db)
    warm_seconds = 0.0
    for query_text, _cold_executed, cold_rows in cold_stats:
        start = time.perf_counter()
        context = warm_engine.run(query_text, k=5)
        warm_seconds += time.perf_counter() - start
        assert context.executor_statistics.interpretations_executed == 0
        assert context.cache_hits > 0
        assert [r.row_uids() for r in context.results] == cold_rows
    warm_db.close()

    print()
    print(
        format_table(
            ["path", "ms"],
            [
                ["cold open, rebuild postings", f"{rebuild_seconds * 1000:.1f}"],
                ["cold open, persisted postings", f"{load_seconds * 1000:.1f}"],
                ["4 queries, cold result cache", f"{cold_seconds * 1000:.1f}"],
                ["4 queries, warm result cache", f"{warm_seconds * 1000:.1f}"],
            ],
        )
    )
