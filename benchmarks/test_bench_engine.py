"""QueryEngine perf guards: cold opens, warm result cache, batched execution.

Not a thesis figure — this benchmark *asserts* the storage/execution
optimizations the engine seam hosts, so a regression fails the bench-smoke CI
lane loudly instead of shipping as a slower table:

* **Cold open.** Opening a populated SQLite store with persisted index
  postings must beat the rebuild path (re-scanning + re-tokenizing every
  stored table), while producing an identical index.
* **Warm cache.** A second engine session over an unchanged store must serve
  identical top-k rows while executing zero interpretations, and the whole
  warm pass must beat the cold pass (the asserted speedup ratio).
* **Batched execution.** The batched strategy must collapse every
  multi-statement query to one ``UNION ALL`` statement (the asserted
  statement-reduction ratio — the round-trip currency that matters on a
  networked RDB) with identical rows, and must stay within a small constant
  factor of sequential wall-clock on in-process SQLite, where per-statement
  overhead is negligible by construction.

Run with ``-s`` to see the tables:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_engine.py -s
"""

from __future__ import annotations

import os
import time

from repro.datasets.imdb import build_imdb, imdb_schema
from repro.db.backends.sqlite import SQLiteBackend
from repro.engine import EngineConfig, QueryEngine, ResultCache
from repro.experiments.reporting import format_table

QUERIES = ["hanks 2001", "london", "stone hill", "summer"]
BUILD_KWARGS = dict(seed=7, n_movies=150, n_actors=90)
REPEATS = 3


def _timed_open(path, persist_index: bool) -> tuple[SQLiteBackend, float]:
    """Best-of-N cold open: connect + build_indexes on a populated store."""
    best = float("inf")
    db = None
    for _ in range(REPEATS):
        if db is not None:
            db.close()
        start = time.perf_counter()
        db = SQLiteBackend(imdb_schema(), path=path, persist_index=persist_index)
        db.build_indexes()
        best = min(best, time.perf_counter() - start)
    return db, best


def test_bench_engine_cold_open_and_warm_cache(benchmark, tmp_path):
    path = tmp_path / "imdb.sqlite"
    build_imdb(**BUILD_KWARGS, backend="sqlite", db_path=path).close()

    # -- cold open: persisted postings vs full rebuild ---------------------
    rebuilt_db, rebuild_seconds = benchmark.pedantic(
        lambda: _timed_open(path, persist_index=False), rounds=1, iterations=1
    )
    rebuilt_snapshot = rebuilt_db.index.stats_snapshot()
    rebuilt_db.close()
    loaded_db, load_seconds = _timed_open(path, persist_index=True)
    assert loaded_db.index.stats_snapshot() == rebuilt_snapshot
    # Locally the margin is ~2x; shared CI runners get a little slack so a
    # scheduler hiccup cannot fail unrelated changes (best-of-N already
    # absorbs most noise).
    slack = 1.25 if os.environ.get("CI") else 1.0
    assert load_seconds < rebuild_seconds * slack, (
        f"persisted postings ({load_seconds * 1000:.1f} ms) must beat the "
        f"rebuild path ({rebuild_seconds * 1000:.1f} ms)"
    )

    # -- warm cache: a "new session" executes zero interpretations ---------
    ResultCache.clear_process_cache()
    first_engine = QueryEngine(loaded_db)
    cold_stats: list[tuple[str, int, list]] = []
    cold_seconds = 0.0
    for query_text in QUERIES:
        start = time.perf_counter()
        context = first_engine.run(query_text, k=5)
        cold_seconds += time.perf_counter() - start
        cold_stats.append(
            (
                query_text,
                context.executor_statistics.interpretations_executed,
                [r.row_uids() for r in context.results],
            )
        )
    loaded_db.close()

    ResultCache.clear_process_cache()  # simulate the next CLI run
    warm_db, _ = _timed_open(path, persist_index=True)
    warm_engine = QueryEngine(warm_db)
    warm_seconds = 0.0
    for query_text, _cold_executed, cold_rows in cold_stats:
        start = time.perf_counter()
        context = warm_engine.run(query_text, k=5)
        warm_seconds += time.perf_counter() - start
        assert context.executor_statistics.interpretations_executed == 0
        assert context.cache_hits > 0
        assert [r.row_uids() for r in context.results] == cold_rows
    warm_db.close()
    # The asserted warm-cache speedup ratio: serving from the cache must beat
    # executing (same slack policy as the cold-open assertion above).
    assert warm_seconds < cold_seconds * slack, (
        f"warm result cache ({warm_seconds * 1000:.1f} ms) must beat cold "
        f"execution ({cold_seconds * 1000:.1f} ms)"
    )

    print()
    print(
        format_table(
            ["path", "ms"],
            [
                ["cold open, rebuild postings", f"{rebuild_seconds * 1000:.1f}"],
                ["cold open, persisted postings", f"{load_seconds * 1000:.1f}"],
                ["4 queries, cold result cache", f"{cold_seconds * 1000:.1f}"],
                ["4 queries, warm result cache", f"{warm_seconds * 1000:.1f}"],
            ],
        )
    )


def test_bench_engine_semantic_cache_zero_statement_reuse(tmp_path):
    """Semantic cache: a narrowed/truncated variant costs 0 backend statements.

    The acceptance guard of the subsumption layer: after one cold pass over a
    query, (a) re-running its interpretations under a *lower* LIMIT and (b) a
    *filter-narrowed* variant of an interpretation both answer entirely from
    the subsuming cached entries — zero SQL statements, zero interpretations
    executed, rows byte-identical to uncached execution — while an exact miss
    (a fresh query) still executes normally.
    """
    from repro.core.topk import TopKExecutor
    from repro.engine import SemanticResultCache

    path = tmp_path / "imdb.sqlite"
    build_imdb(**BUILD_KWARGS, backend="sqlite", db_path=path).close()
    db, _ = _timed_open(path, persist_index=True)
    ResultCache.clear_process_cache()
    cache = SemanticResultCache(db)
    engine = QueryEngine(db, cache=cache)

    # Cold pass: execute and cache every interpretation the queries reach,
    # then complete coverage to the full ranked lists (a lower LIMIT can push
    # the TA bound past where the cold run stopped — those interpretations
    # must be cached too for the zero-statement claim to be about reuse, not
    # about early stopping).
    cold_statements = 0
    for query_text in QUERIES:
        context = engine.run(query_text, k=5)
        cold_statements += context.executor_statistics.sql_statements
        for interpretation, _score in engine.rank(query_text):
            cache.fetch(
                interpretation.to_structured_query(), engine.config.per_query_limit
            )
    assert cold_statements > 0

    per_query: list[list[str]] = []
    # (a) Truncated variants: the same ranked interpretations under a lower
    # per-interpretation LIMIT — every entry subsumes its prefix.
    reference = QueryEngine(
        db, config=EngineConfig(cache_results=False, batch_execution=False)
    )
    subsumption_hits = 0
    for query_text in QUERIES:
        ranked = engine.rank(query_text)
        truncated = TopKExecutor(db, per_query_limit=3, cache=cache)
        uncached = TopKExecutor(db, per_query_limit=3, cache=None)
        rows = truncated.execute(ranked, k=5)
        assert truncated.statistics.sql_statements == 0, (
            f"{query_text!r}: truncated variant touched the backend"
        )
        # Provably-empty interpretations may re-"execute" (they have no plan
        # to subsume under) but cost zero statements by construction, so the
        # statement count above is the whole claim.
        assert [r.row_uids() for r in rows] == [
            r.row_uids() for r in uncached.execute(ranked, k=5)
        ]
        subsumption_hits += truncated.statistics.cache_subsumption_hits
        per_query.append(
            [
                query_text,
                f"{truncated.statistics.cache_subsumption_hits}",
                f"{truncated.statistics.sql_statements}",
            ]
        )
    assert subsumption_hits > 0, "no truncation was ever answered by subsumption"

    # (b) A filter-narrowed variant: a cached interpretation plus one extra
    # keyword predicate, answered by filtering in Python.  Slot 0 is only
    # narrowable when already filtered (an unfiltered base slot sorts by
    # insertion order, so narrowing it would change the ORDER BY shape).
    narrowed = None
    for query_text in QUERIES:
        for interpretation, _score in engine.rank(query_text):
            query = interpretation.to_structured_query()
            rows = db.execute_path(*query.path_spec())
            if len(rows) < 2:
                continue  # want the variant to actually filter something
            for slot in range(len(query.template.path)):
                if slot == 0 and not query.selections.get(0):
                    continue
                attribute = db.schema.table(
                    query.template.path[slot]
                ).textual_attributes()[0]
                value = dict(rows[0][slot].values).get(attribute.name)
                tokens = db.tokenizer.tokens(str(value)) if value else []
                if not tokens:
                    continue
                selections = dict(query.selections)
                selections[slot] = selections.get(slot, ()) + (
                    (attribute.name, (tokens[0],)),
                )
                narrowed = type(query)(query.template, selections)
                break
            if narrowed is not None:
                break
        if narrowed is not None:
            break
    assert narrowed is not None, "no cached interpretation was narrowable"
    hits_before = cache.semantic_statistics.subsumption_hits
    answered = cache.get(narrowed, None)
    assert answered is not None, "narrowed variant missed the semantic cache"
    assert answered == db.execute_path(*narrowed.path_spec())
    assert cache.semantic_statistics.subsumption_hits == hits_before + 1

    # Control: an exact miss still executes normally.
    missed = reference.run("winter hill", k=5)
    cold_control = engine.run("winter hill", k=5)
    assert cold_control.executor_statistics.sql_statements > 0
    assert [r.row_uids() for r in cold_control.results] == [
        r.row_uids() for r in missed.results
    ]
    db.close()

    print()
    print(
        format_table(
            ["query (limit 3)", "subsumption hits", "stmts"], per_query
        )
    )
    print(
        f"cold pass: {cold_statements} statements; "
        f"warm truncated/narrowed variants: 0 statements"
    )


def test_bench_engine_batched_vs_sequential(tmp_path):
    """Batched UNION execution: assert the statement reduction + parity.

    On in-process SQLite the *wall-clock* win of batching is bounded by the
    tiny per-statement overhead, so the asserted speedup is the statement
    ratio (deterministic, and exactly what batching optimizes); wall clock
    only guards against a pathological compile-time regression.
    """
    path = tmp_path / "imdb.sqlite"
    build_imdb(**BUILD_KWARGS, backend="sqlite", db_path=path).close()
    db, _ = _timed_open(path, persist_index=True)
    sequential = QueryEngine(
        db, config=EngineConfig(cache_results=False, batch_execution=False)
    )
    # The materializing batched strategy is what this benchmark measures;
    # the streaming strategy has its own row-consumption guard below.
    batched = QueryEngine(
        db,
        config=EngineConfig(
            cache_results=False, batch_execution=True, streaming_execution=False
        ),
    )

    rows_of = lambda context: [r.row_uids() for r in context.results]  # noqa: E731
    sequential_statements = batched_statements = 0
    sequential_seconds = batched_seconds = 0.0
    per_query: list[list[str]] = []
    for query_text in QUERIES:
        best_sequential = best_batched = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            sequential_context = sequential.run(query_text, k=5)
            best_sequential = min(best_sequential, time.perf_counter() - start)
            start = time.perf_counter()
            batched_context = batched.run(query_text, k=5)
            best_batched = min(best_batched, time.perf_counter() - start)
        assert rows_of(batched_context) == rows_of(sequential_context)
        seq_stats = sequential_context.executor_statistics
        bat_stats = batched_context.executor_statistics
        if seq_stats.sql_statements > 1:
            # The headline win: k interpretations, one statement.
            assert bat_stats.sql_statements == 1, (
                f"{query_text!r}: expected one batched statement, got "
                f"{bat_stats.sql_statements}"
            )
        sequential_statements += seq_stats.sql_statements
        batched_statements += bat_stats.sql_statements
        sequential_seconds += best_sequential
        batched_seconds += best_batched
        per_query.append(
            [
                query_text,
                f"{seq_stats.sql_statements}",
                f"{best_sequential * 1000:.2f}",
                f"{bat_stats.sql_statements}",
                f"{best_batched * 1000:.2f}",
            ]
        )
    db.close()

    assert batched_statements < sequential_statements, (
        f"batched execution must issue fewer statements "
        f"({batched_statements} vs {sequential_statements})"
    )
    # Loose wall-clock guard: batching may execute a few extra
    # interpretations past the TA bound (they warm the cache), but must never
    # cost a multiple of sequential execution.
    assert batched_seconds < sequential_seconds * 3, (
        f"batched execution ({batched_seconds * 1000:.1f} ms) regressed far "
        f"past sequential ({sequential_seconds * 1000:.1f} ms)"
    )

    print()
    print(
        format_table(
            ["query", "seq stmts", "seq ms", "batch stmts", "batch ms"],
            per_query,
        )
    )
    print(
        f"statement reduction: {sequential_statements} -> {batched_statements} "
        f"({sequential_statements / batched_statements:.1f}x)"
    )


def test_bench_engine_streaming_row_consumption(tmp_path):
    """Streaming execution: the TA bound stops *consuming* the backend.

    The acceptance guard of the streaming refactor: on a single-answer
    (k=1) query, the streaming strategy must pull strictly fewer rows out of
    the backend than the materializing strategy materializes — the rows of
    interpretations past the stopping point are simply never fetched — while
    returning byte-identical results.  Also asserts the adaptive first batch
    shrinks once selectivity has been observed.
    """
    path = tmp_path / "imdb.sqlite"
    build_imdb(**BUILD_KWARGS, backend="sqlite", db_path=path).close()
    db, _ = _timed_open(path, persist_index=True)
    materializing = QueryEngine(
        db,
        config=EngineConfig(
            cache_results=False, batch_execution=True, streaming_execution=False
        ),
    )
    streaming = QueryEngine(
        db, config=EngineConfig(cache_results=False, batch_execution=True)
    )

    rows_of = lambda context: [r.row_uids() for r in context.results]  # noqa: E731
    per_query: list[list[str]] = []
    wins = 0
    for query_text in QUERIES:
        materialized_context = materializing.run(query_text, k=1)
        streamed_context = streaming.run(query_text, k=1)
        assert rows_of(streamed_context) == rows_of(materialized_context)
        mat = materialized_context.executor_statistics
        stream = streamed_context.executor_statistics
        assert stream.rows_streamed <= mat.rows_materialized
        if mat.rows_materialized > 0:
            # The headline claim: k=1 consumes strictly fewer backend rows.
            assert stream.rows_streamed < mat.rows_materialized, (
                f"{query_text!r}: streaming consumed {stream.rows_streamed} "
                f"rows, materializing produced {mat.rows_materialized}"
            )
            wins += 1
        per_query.append(
            [
                query_text,
                f"{mat.rows_materialized}",
                f"{stream.rows_streamed}",
                f"{stream.first_batch_size}",
            ]
        )
    assert wins > 0, "no query produced rows; the guard asserted nothing"
    # With selectivity observed, a later k=1 query's first batch must shrink
    # below the legacy max(2, min(batch, k)) == 2 floor.
    final = streaming.run(QUERIES[0], k=1)
    assert final.executor_statistics.first_batch_size == 1
    assert streaming.observed_selectivity is not None
    db.close()

    print()
    print(
        format_table(
            ["query (k=1)", "materialized rows", "streamed rows", "first batch"],
            per_query,
        )
    )


def test_bench_engine_cost_based_row_reduction(tmp_path):
    """Cost-based planning: never fetch more rows than the default planner.

    The win-rate guard of the cost model, on a deliberately skewed store
    (many movies, few actors — raw row counts mislead exactly where the
    selection-key statistics do not).  Per query the cost-based engine's
    backend row consumption — streamed union rows plus per-shard gather
    rows — must never exceed the default planner's, and over the workload
    it must be strictly lower (the estimator-sized first batch stops the
    shard merge from looking ahead past the top-k bound), with
    byte-identical result rows and the estimated-vs-actual cardinalities
    visible in ``--explain``.
    """
    path = tmp_path / "imdb.sqlite"
    build_imdb(
        seed=7, n_movies=260, n_actors=40,
        backend="sqlite-sharded", db_path=path, shards=2,
    ).close()
    from repro.db.backends.sharded import ShardedSQLiteBackend

    db = ShardedSQLiteBackend(imdb_schema(), path=path, shards=2)
    db.build_indexes()

    workload = QUERIES + ["hanks", "2001"]

    def consume(cost_based: bool):
        ResultCache.clear_process_cache()
        db.cost_planning = True  # for_dataset-independent reset between arms
        engine = QueryEngine(
            db,
            config=EngineConfig(
                cache_results=False, cost_based_planning=cost_based
            ),
        )
        consumed: dict[str, int] = {}
        rows: dict[str, list] = {}
        for query_text in workload:
            context = engine.run(query_text, k=5, explain=True)
            stats = context.executor_statistics
            consumed[query_text] = stats.rows_streamed + sum(
                stats.shard_rows.values()
            )
            rows[query_text] = [r.row_uids() for r in context.results]
        return consumed, rows, context

    cost_consumed, cost_rows, cost_context = consume(True)
    default_consumed, default_rows, _ = consume(False)

    per_query: list[list[str]] = []
    for query_text in workload:
        assert cost_rows[query_text] == default_rows[query_text], (
            f"{query_text!r}: cost-based plan changed the result rows"
        )
        assert cost_consumed[query_text] <= default_consumed[query_text], (
            f"{query_text!r}: cost-based plan fetched "
            f"{cost_consumed[query_text]} rows, default fetched "
            f"{default_consumed[query_text]}"
        )
        per_query.append(
            [
                query_text,
                f"{default_consumed[query_text]}",
                f"{cost_consumed[query_text]}",
            ]
        )
    total_cost = sum(cost_consumed.values())
    total_default = sum(default_consumed.values())
    assert total_cost < total_default, (
        f"cost-based planning fetched {total_cost} rows over the workload, "
        f"no better than the default planner's {total_default}"
    )
    # The feedback loop must be visible: the last cost-based run's explain
    # carries per-interpretation estimated-vs-actual cardinalities.
    explain = "\n".join(cost_context.explain_lines())
    assert "estimated vs actual rows:" in explain
    db.close()

    print()
    print(
        format_table(
            ["query", "default rows fetched", "cost-based rows fetched"],
            per_query,
        )
    )
    print(f"workload row consumption: {total_default} -> {total_cost}")


def test_bench_engine_sharded_statement_ratio(tmp_path):
    """Sharded scatter-gather: row parity + the statement ratio under shards.

    The batched statement reduction must survive sharding: a batch costs one
    scatter statement *per shard* instead of one per interpretation, so with
    S shards the asserted bound is ``statements == S * batches`` — still
    strictly below one-per-interpretation whenever a batch covers more
    interpretations than there are shards (the k-interpretation common case).
    """
    shards = 2
    path = tmp_path / "imdb.sqlite"
    build_imdb(
        **BUILD_KWARGS, backend="sqlite-sharded", db_path=path, shards=shards
    ).close()
    from repro.db.backends.sharded import ShardedSQLiteBackend

    db = ShardedSQLiteBackend(imdb_schema(), path=path, shards=shards)
    db.build_indexes()
    reference = QueryEngine(
        build_imdb(**BUILD_KWARGS),
        config=EngineConfig(cache_results=False, batch_execution=False),
    )
    sharded = QueryEngine(
        db,
        config=EngineConfig(
            cache_results=False, batch_execution=True, streaming_execution=False
        ),
    )

    rows_of = lambda context: [r.row_uids() for r in context.results]  # noqa: E731
    executed_total = sharded_statements = 0
    per_query: list[list[str]] = []
    for query_text in QUERIES:
        reference_context = reference.run(query_text, k=5)
        sharded_context = sharded.run(query_text, k=5)
        assert rows_of(sharded_context) == rows_of(reference_context)
        stats = sharded_context.executor_statistics
        assert stats.sql_statements == shards * stats.batches, (
            f"{query_text!r}: expected {shards} statements per batch, got "
            f"{stats.sql_statements} over {stats.batches} batch(es)"
        )
        assert sum(stats.shard_rows.values()) == stats.rows_materialized
        if stats.interpretations_executed > shards:
            # The reduction claim: fewer statements than interpretations
            # whenever the batch is wider than the shard fan-out.
            assert stats.sql_statements < stats.interpretations_executed, (
                f"{query_text!r}: sharded batching lost the statement reduction"
            )
        executed_total += stats.interpretations_executed
        sharded_statements += stats.sql_statements
        per_query.append(
            [
                query_text,
                f"{stats.interpretations_executed}",
                f"{stats.sql_statements}",
                ", ".join(
                    f"s{shard}:{rows}"
                    for shard, rows in sorted(stats.shard_rows.items())
                ),
            ]
        )
    db.close()

    assert sharded_statements < executed_total, (
        f"sharded batching must beat one-statement-per-interpretation "
        f"({sharded_statements} statements for {executed_total} executions)"
    )
    print()
    print(
        format_table(
            ["query", "interps executed", f"stmts ({shards} shards)", "rows/shard"],
            per_query,
        )
    )
    print(
        f"statement reduction under sharding: {executed_total} executions -> "
        f"{sharded_statements} statements "
        f"({executed_total / sharded_statements:.1f}x)"
    )
