"""Fig. 3.5 — interaction cost under three probability estimates.

Shape to hold: ATF-based estimates reduce interaction cost vs the uniform
baseline (the thesis reports ~50% reduction); the query-log configuration is
at least as good as Tequal.
"""

from repro.experiments import ch3


def _mean(values):
    return sum(values) / len(values) if values else 0.0


def test_fig_3_5_imdb(benchmark, ch3_imdb):
    costs = benchmark.pedantic(
        lambda: ch3.fig_3_5(setup=ch3_imdb), rounds=1, iterations=1
    )
    assert _mean(costs["atf_tequal"]) <= _mean(costs["baseline"]) + 0.5
    assert _mean(costs["atf_tlog"]) <= _mean(costs["atf_tequal"]) + 0.5
    print()
    print(
        ch3.format_table(
            ["estimate", "mean interaction cost"],
            [[name, _mean(values)] for name, values in costs.items()],
        )
    )


def test_fig_3_5_lyrics(benchmark, ch3_lyrics):
    costs = benchmark.pedantic(
        lambda: ch3.fig_3_5(setup=ch3_lyrics), rounds=1, iterations=1
    )
    assert _mean(costs["atf_tlog"]) <= _mean(costs["baseline"]) + 0.5
    print()
    print(
        ch3.format_table(
            ["estimate", "mean interaction cost"],
            [[name, _mean(values)] for name, values in costs.items()],
        )
    )
