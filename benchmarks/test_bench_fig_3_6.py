"""Fig. 3.6 — interaction cost: SQAK ranking vs IQP ranking vs construction.

Shape to hold: construction has far lower maximum and variance than either
ranking interface; IQP's ranking is competitive with SQAK's.
"""

import statistics

from repro.experiments import ch3
from repro.experiments.reporting import format_table, summary_stats


def _check_and_print(data, label):
    assert max(data["construction_iqp"]) <= max(
        max(data["rank_iqp"]), max(data["rank_sqak"])
    )
    if statistics.pvariance(data["rank_iqp"]) > 0:
        assert statistics.pvariance(data["construction_iqp"]) <= statistics.pvariance(
            data["rank_iqp"]
        )
    print()
    print(f"Fig. 3.6 ({label})")
    rows = [[name, *summary_stats(values).row()] for name, values in data.items()]
    print(format_table(["interface", "min", "q1", "median", "q3", "max", "mean"], rows))


def test_fig_3_6_imdb(benchmark, ch3_imdb):
    data = benchmark.pedantic(lambda: ch3.fig_3_6(setup=ch3_imdb), rounds=1, iterations=1)
    _check_and_print(data, "imdb")


def test_fig_3_6_lyrics(benchmark, ch3_lyrics):
    data = benchmark.pedantic(
        lambda: ch3.fig_3_6(setup=ch3_lyrics), rounds=1, iterations=1
    )
    _check_and_print(data, "lyrics")
