"""Fig. 3.7 + Table 3.1 — usability study: task time by complexity category.

Shape to hold: ranking wins in the lowest complexity category; construction
time stays near-flat while ranking time grows with the category, so the
construction interface wins in the highest observed category.
"""

from repro.experiments import ch3
from repro.experiments.reporting import format_table


def test_fig_3_7(benchmark, ch3_imdb):
    rows = benchmark.pedantic(lambda: ch3.fig_3_7(setup=ch3_imdb), rounds=1, iterations=1)
    assert rows
    first_cat, first_rank, first_cons = rows[0]
    if first_cat == 0:
        assert first_rank <= first_cons  # ranking wins the easy tasks
    if len(rows) >= 2:
        last_cat, last_rank, last_cons = rows[-1]
        # Ranking time grows with category; construction stays flatter.
        assert last_rank >= first_rank
    print()
    print(
        format_table(
            ["category", "ranking median (s)", "construction median (s)"],
            [list(r) for r in rows],
        )
    )
    tasks = sorted(ch3.study_tasks(setup=ch3_imdb), key=lambda t: -t.intended_rank)[:5]
    print()
    print("Table 3.1: example tasks")
    print(
        format_table(
            ["query", "C1 rank", "C2 options", "|I|"],
            [[t.query, t.intended_rank, t.construction_options, t.space_size] for t in tasks],
        )
    )
