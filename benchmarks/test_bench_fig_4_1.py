"""Fig. 4.1 — probability ratio PR_i per rank (+ Table 4.1 example).

Shape to hold: interpretation probabilities fall sharply with rank — queries
at rank ~10 carry only a small fraction of the mass above them, justifying
the top-25 assessment pool.
"""

from repro.experiments import ch4
from repro.experiments.reporting import format_table


def test_fig_4_1_imdb(benchmark, ch4_imdb):
    max_pr, avg_pr = benchmark.pedantic(
        lambda: ch4.fig_4_1(ch4_imdb), rounds=1, iterations=1
    )
    early = [v for v in avg_pr[:3] if v > 0]
    late = [v for v in avg_pr[8:15] if v > 0]
    if early and late:
        assert sum(early) / len(early) > sum(late) / len(late)
    print()
    rows = [[i + 2, m, a] for i, (m, a) in enumerate(zip(max_pr[:12], avg_pr[:12]))]
    print(format_table(["rank", "max PR", "avg PR"], rows))
    print()
    print(ch4.table_4_1(ch4_imdb))


def test_fig_4_1_lyrics(benchmark, ch4_lyrics):
    max_pr, avg_pr = benchmark.pedantic(
        lambda: ch4.fig_4_1(ch4_lyrics), rounds=1, iterations=1
    )
    assert len(max_pr) == len(avg_pr)
    for m, a in zip(max_pr, avg_pr):
        assert m >= a - 1e-12
