"""Fig. 4.2 — alpha-nDCG-W: diversification vs ranking, alpha sweep.

Shapes to hold: at alpha=0 (pure relevance) ranking dominates; at alpha=0.99
(novelty crucial) diversification beats ranking on multi-concept queries.
"""

from repro.experiments import ch4
from repro.experiments.reporting import format_table


def _run(setup, label):
    data = ch4.fig_4_2(setup, alphas=(0.0, 0.5, 0.99), ks=(1, 2, 3, 4, 5, 6))
    # alpha = 0: ranking >= diversification everywhere (small tolerance).
    for kind in ("sc", "mc"):
        if (0.0, "rank", kind) in data:
            for r, d in zip(data[(0.0, "rank", kind)], data[(0.0, "div", kind)]):
                assert r >= d - 0.05
    # alpha = 0.99: diversification wins on mc queries in aggregate.
    if (0.99, "div", "mc") in data:
        assert sum(data[(0.99, "div", "mc")]) >= sum(data[(0.99, "rank", "mc")]) - 0.05
    print()
    print(f"Fig. 4.2 ({label})")
    rows = [
        [alpha, system, kind, *[round(v, 3) for v in series]]
        for (alpha, system, kind), series in sorted(data.items())
    ]
    print(
        format_table(
            ["alpha", "system", "kind", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6"], rows
        )
    )
    return data


def test_fig_4_2_imdb(benchmark, ch4_imdb):
    benchmark.pedantic(lambda: _run(ch4_imdb, "imdb"), rounds=1, iterations=1)


def test_fig_4_2_lyrics(benchmark, ch4_lyrics):
    benchmark.pedantic(lambda: _run(ch4_lyrics, "lyrics"), rounds=1, iterations=1)
