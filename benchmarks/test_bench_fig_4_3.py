"""Fig. 4.3 — WS-recall: diversification vs ranking.

Shape to hold: WS-recall is monotone in k and diversification's aggregate
recall is at least ranking's on multi-concept queries (diverse
interpretations cover more subtopics earlier).
"""

from repro.experiments import ch4
from repro.experiments.reporting import format_table


def _run(setup, label):
    data = ch4.fig_4_3(setup, ks=(1, 2, 3, 4, 5, 6, 7, 8))
    for series in data.values():
        assert series == sorted(series)
    if ("div", "mc") in data:
        assert sum(data[("div", "mc")]) >= sum(data[("rank", "mc")]) - 0.25
    print()
    print(f"Fig. 4.3 ({label})")
    rows = [
        [system, kind, *[round(v, 3) for v in series]]
        for (system, kind), series in sorted(data.items())
    ]
    print(format_table(["system", "kind", *[f"k={k}" for k in range(1, 9)]], rows))


def test_fig_4_3_imdb(benchmark, ch4_imdb):
    benchmark.pedantic(lambda: _run(ch4_imdb, "imdb"), rounds=1, iterations=1)


def test_fig_4_3_lyrics(benchmark, ch4_lyrics):
    benchmark.pedantic(lambda: _run(ch4_lyrics, "lyrics"), rounds=1, iterations=1)
