"""Fig. 4.4 — relevance vs novelty as the lambda tradeoff varies.

Shape to hold: increasing lambda (toward pure relevance) raises the mean
relevance of the selected interpretations and lowers their novelty.
"""

from repro.experiments import ch4
from repro.experiments.reporting import format_table


def test_fig_4_4(benchmark, ch4_imdb):
    rows = benchmark.pedantic(
        lambda: ch4.fig_4_4(ch4_imdb, tradeoffs=(0.0, 0.25, 0.5, 0.75, 1.0)),
        rounds=1,
        iterations=1,
    )
    assert len(rows) >= 2
    first = rows[0]
    last = rows[-1]
    assert last[1] >= first[1] - 1e-9  # relevance grows with lambda
    assert first[2] >= last[2] - 1e-9  # novelty falls with lambda
    print()
    print(format_table(["lambda", "mean relevance", "mean novelty"], [list(r) for r in rows]))
