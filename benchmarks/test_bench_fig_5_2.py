"""Fig. 5.2 + Tables 5.1/5.3 — QCO efficiency & interaction cost vs schema size.

Shapes to hold: ontology-based QCOs are at least as efficient as plain
per-attribute QCOs and their cost advantage appears as the schema grows;
coarser ontologies (fewer concepts) cost fewer interactions than no
ontology at all.
"""

from repro.experiments import ch5
from repro.experiments.reporting import format_table


def test_fig_5_2(benchmark):
    rows = benchmark.pedantic(
        lambda: ch5.fig_5_2(domain_counts=(2, 5, 10, 20), n_queries=6),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["onto_cost"] <= row["plain_cost"] + 0.75
        assert row["onto_efficiency"] >= row["plain_efficiency"] - 0.05
    # On the biggest schema the ontology advantage must be visible.
    big = rows[-1]
    assert big["onto_cost"] <= big["plain_cost"]
    print()
    print(
        format_table(
            ["domains", "tables", "plain cost", "onto cost", "plain eff", "onto eff"],
            [
                [
                    r["domains"],
                    r["tables"],
                    r["plain_cost"],
                    r["onto_cost"],
                    r["plain_efficiency"],
                    r["onto_efficiency"],
                ]
                for r in rows
            ],
        )
    )


def test_table_5_3(benchmark):
    rows = benchmark.pedantic(
        lambda: ch5.table_5_3(n_domains=10, n_queries=6), rounds=1, iterations=1
    )
    by_label = {r["ontology"]: r["mean_cost"] for r in rows}
    assert by_label["types (level 1)"] <= by_label["no ontology (attributes)"] + 0.5
    print()
    print(
        format_table(
            ["ontology", "# concepts", "mean cost"],
            [[r["ontology"], r["concepts"], r["mean_cost"]] for r in rows],
        )
    )
    print()
    print(ch5.table_5_1())
