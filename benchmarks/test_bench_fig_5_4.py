"""Fig. 5.4 + Table 5.2 — interaction cost over synthetic Freebase by query
complexity.

Shape to hold: ontology QCOs cut the interaction cost for both 2- and
3-keyword queries, with the worst case improving the most.
"""

from repro.experiments import ch5
from repro.experiments.reporting import format_table


def test_fig_5_4(benchmark):
    rows = benchmark.pedantic(
        lambda: ch5.fig_5_4(n_domains=15, n_queries=6), rounds=1, iterations=1
    )
    assert rows
    for row in rows:
        assert row["onto_cost"] <= row["plain_cost"] + 0.5
        assert row["onto_max"] <= row["plain_max"]
    print()
    print(
        format_table(
            ["# keywords", "plain mean", "onto mean", "plain max", "onto max"],
            [
                [r["keywords"], r["plain_cost"], r["onto_cost"], r["plain_max"], r["onto_max"]]
                for r in rows
            ],
        )
    )
    table_rows = ch5.table_5_2(n_queries=6)
    print()
    print("Table 5.2: complexity of keyword queries")
    print(
        format_table(
            ["# keywords", "# queries", "mean |I|", "max |I|"],
            [
                [r["keywords"], r["queries"], r["mean_space"], r["max_space"]]
                for r in table_rows
            ],
        )
    )
