"""Fig. 5.5 — response time of query construction over synthetic Freebase.

Shape to hold: per-step option computation and best-first top-k
materialization stay interactive (milliseconds) while work grows moderately
with the schema size.
"""

from repro.experiments import ch5
from repro.experiments.reporting import format_table


def test_fig_5_5(benchmark):
    rows = benchmark.pedantic(
        lambda: ch5.fig_5_5(domain_counts=(2, 5, 10, 20), n_queries=4, top_k=8),
        rounds=1,
        iterations=1,
    )
    assert rows[-1]["topk_pops"] >= rows[0]["topk_pops"]
    for row in rows:
        assert row["ms_per_step"] < 1000.0  # interactive
    print()
    print(
        format_table(
            ["domains", "tables", "ms/step", "top-k ms", "top-k pops"],
            [
                [r["domains"], r["tables"], r["ms_per_step"], r["topk_ms"], r["topk_pops"]]
                for r in rows
            ],
        )
    )
