"""Fig. 6.2 + Table 6.3 — shared instances across Freebase tables and the
combined YAGO+F summary.

Shape to hold: most shared instances occur in a single table, with a falling
tail of instances spanning several tables.
"""

from repro.experiments import ch6
from repro.experiments.reporting import format_table


def test_fig_6_2(benchmark, ch6_setup):
    rows = benchmark.pedantic(lambda: ch6.fig_6_2(ch6_setup), rounds=1, iterations=1)
    assert rows
    histogram = dict(rows)
    assert histogram.get(1, 0) >= max(histogram.values()) * 0.5
    print()
    print("Fig. 6.2: distribution of shared instances over tables")
    print(format_table(["# tables", "# instances"], [list(r) for r in rows]))


def test_table_6_3(benchmark, ch6_setup):
    summary = benchmark.pedantic(lambda: ch6.table_6_3(ch6_setup), rounds=1, iterations=1)
    assert summary["attached_tables"] > 0
    assert summary["classes_with_tables"] <= summary["yago_classes"]
    print()
    print("Table 6.3: categories and instances in YAGO+F")
    print(format_table(["statistic", "value"], [[k, v] for k, v in summary.items()]))
