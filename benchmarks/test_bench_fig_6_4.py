"""Fig. 6.4 — matching quality vs instance-overlap threshold.

Shape to hold: recall falls monotonically as the threshold rises while
precision stays high in the useful mid-range — the precision/recall tradeoff
of instance-based matching.
"""

from repro.experiments import ch6
from repro.experiments.reporting import format_table


def test_fig_6_4(benchmark, ch6_setup):
    rows = benchmark.pedantic(
        lambda: ch6.fig_6_4(ch6_setup, thresholds=(0.1, 0.3, 0.5, 0.7, 0.9)),
        rounds=1,
        iterations=1,
    )
    recalls = [r for _t, _p, r in rows]
    assert recalls == sorted(recalls, reverse=True)
    mid = [p for t, p, _r in rows if 0.25 <= t <= 0.75]
    assert all(p >= 0.8 for p in mid)
    print()
    print("Fig. 6.4: matching quality vs overlap threshold")
    print(format_table(["threshold", "precision", "recall"], [list(r) for r in rows]))
