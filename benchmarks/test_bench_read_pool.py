"""Read-pool throughput guard: pooled readers must not lose to, and on real
hardware must beat, the single locked connection.

The acceptance bar of the read-connection pool (ISSUE 10): on a file-backed
store with >= 4 concurrent server clients, closed-loop throughput with the
pool enabled strictly exceeds the pool-disabled run (``read_pool_size=1``,
the exact pre-pool single-``_LockedConnection`` path).  The win comes from
SQLite releasing the GIL inside ``sqlite3_step``: pooled readers let that
C-level work overlap across cores, while the single locked connection
serializes every read behind one RLock.

That mechanism needs cores.  On a single-CPU host there is no hardware
parallelism to exploit — N readers cannot outrun one connection when every
byte of work shares one core — so there the guard enforces the *other* side
of the contract: the pool's lease bookkeeping must stay cheap (throughput
within a bounded factor of the single-connection arm), and every concurrent
response must still verify against sequential execution.  On >= 2 cores
(the CI runners included) the strict throughput assertion applies.

Both arms run on ONE shared store (built once, reopened), with the result
cache off so every request actually reads the backend, and every response is
verified row-for-row by ``benchmark_serve`` itself — the guard cannot pass
on wrong rows.  Each arm takes its best-of-N to shed scheduler noise.
"""

from __future__ import annotations

import os

from repro.engine import EngineConfig
from repro.server import benchmark_serve

CLIENTS = 8
QUERIES_PER_CLIENT = 12
ATTEMPTS = 3
#: Max tolerated pooled-arm slowdown on single-core hosts (lease overhead
#: plus per-reader page/statement caches warming); anything past this is a
#: pool implementation regression, not a hardware limitation.
SINGLE_CORE_OVERHEAD_FACTOR = 0.60


def _best_run(db_path, read_pool_size: int):
    best = None
    for _attempt in range(ATTEMPTS):
        report = benchmark_serve(
            "imdb",
            backend="sqlite",
            db_path=db_path,
            clients=CLIENTS,
            queries_per_client=QUERIES_PER_CLIENT,
            k=5,
            seed=13,
            engine_config=EngineConfig(
                cache_results=False, read_pool_size=read_pool_size
            ),
        )
        assert report.ok, (
            f"read_pool_size={read_pool_size}: "
            f"{report.mismatches} mismatch(es) vs sequential execution"
        )
        if best is None or report.seconds < best.seconds:
            best = report
    return best


def test_pooled_readers_vs_single_connection(tmp_path):
    db_path = tmp_path / "read-pool-bench.sqlite"
    pooled = _best_run(db_path, read_pool_size=CLIENTS)
    serial = _best_run(db_path, read_pool_size=1)
    cores = os.cpu_count() or 1
    print(
        f"\n[{cores} core(s)] read pool {CLIENTS}: "
        f"{pooled.throughput_qps:.1f} q/s ({pooled.seconds:.3f} s)   "
        f"read pool 1: {serial.throughput_qps:.1f} q/s ({serial.seconds:.3f} s)   "
        f"ratio x{pooled.throughput_qps / serial.throughput_qps:.2f}"
    )
    if cores >= 2:
        assert pooled.throughput_qps > serial.throughput_qps, (
            f"pool gained nothing on {cores} cores: "
            f"{pooled.throughput_qps:.1f} q/s pooled vs "
            f"{serial.throughput_qps:.1f} q/s on the single connection"
        )
    else:
        assert (
            pooled.throughput_qps
            >= SINGLE_CORE_OVERHEAD_FACTOR * serial.throughput_qps
        ), (
            "pool overhead exceeds the single-core budget: "
            f"{pooled.throughput_qps:.1f} q/s pooled vs "
            f"{serial.throughput_qps:.1f} q/s serial "
            f"(floor x{SINGLE_CORE_OVERHEAD_FACTOR})"
        )
