"""Table 3.2 — greedy plan generation vs database size (simulation §3.8.5).

Shapes to hold: the interpretation space grows polynomially with the number
of tables while the number of options a user evaluates grows far slower, and
per-step time stays in the millisecond range.
"""

from repro.experiments import ch3
from repro.experiments.reporting import format_table


def test_table_3_2(benchmark):
    rows = benchmark.pedantic(
        lambda: ch3.table_3_2(table_counts=(5, 10, 20, 40, 80), repeats=5),
        rounds=1,
        iterations=1,
    )
    assert rows[-1]["queries"] > rows[0]["queries"] * 20
    query_growth = rows[-1]["queries"] / rows[0]["queries"]
    step_growth = rows[-1]["steps@20"] / max(rows[0]["steps@20"], 1)
    assert step_growth < query_growth
    print()
    keys = [k for k in rows[0] if k != "tables"]
    print(
        format_table(
            ["tables", *keys], [[r["tables"], *(r[k] for k in keys)] for r in rows]
        )
    )
