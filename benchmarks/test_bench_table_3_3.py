"""Table 3.3 — greedy plan generation vs keyword-query length (§3.8.5).

Shapes to hold: the space grows exponentially with the number of keywords
while the evaluated options grow roughly linearly.
"""

from repro.experiments import ch3
from repro.experiments.reporting import format_table


def test_table_3_3(benchmark):
    rows = benchmark.pedantic(
        lambda: ch3.table_3_3(keyword_counts=(2, 4, 6, 8, 10), repeats=5),
        rounds=1,
        iterations=1,
    )
    assert rows[-1]["queries"] > rows[0]["queries"] * 50
    # Steps grow sub-linearly relative to the space explosion.
    step_ratio = rows[-1]["steps@20"] / max(rows[0]["steps@20"], 1)
    space_ratio = rows[-1]["queries"] / rows[0]["queries"]
    assert step_ratio < space_ratio / 10
    print()
    keys = [k for k in rows[0] if k != "keywords"]
    print(
        format_table(
            ["keywords", *keys], [[r["keywords"], *(r[k] for k in keys)] for r in rows]
        )
    )
