"""Table 3.4 — plan quality: brute force vs greedy (§3.8.6).

Shape to hold: greedy expected cost is only slightly above the brute-force
optimum (the thesis reports differences below ~2%; we allow 15% slack on
random universes).
"""

from repro.experiments import ch3
from repro.experiments.reporting import format_table


def test_table_3_4(benchmark):
    rows = benchmark.pedantic(
        lambda: ch3.table_3_4(
            sizes=((8, 4), (12, 6), (16, 8), (20, 10), (24, 12)), repeats=5
        ),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["greedy_cost"] >= row["brute_force_cost"] - 1e-9
        assert row["greedy_cost"] <= row["brute_force_cost"] * 1.15
    print()
    print(
        format_table(
            ["# queries", "# options", "brute force", "greedy"],
            [
                [r["queries"], r["options"], r["brute_force_cost"], r["greedy_cost"]]
                for r in rows
            ],
        )
    )
