"""Tables 6.1/6.2 — distribution of categories and instances in YAGO.

Shapes to hold: the category-size distribution is heavy-tailed (most leaf
categories small, few huge) and instances concentrate at the deepest level.
"""

from repro.experiments import ch6
from repro.experiments.reporting import format_table


def test_table_6_1(benchmark, ch6_setup):
    rows = benchmark.pedantic(lambda: ch6.table_6_1(ch6_setup), rounds=1, iterations=1)
    counts = dict(rows)
    small = sum(v for k, v in counts.items() if k in ("<= 1", "<= 2", "<= 5", "<= 10"))
    huge = counts.get("> 1000", 0)
    assert small > huge
    print()
    print("Table 6.1: distribution of categories in YAGO")
    print(format_table(["# instances", "# categories"], [list(r) for r in rows]))


def test_table_6_2(benchmark, ch6_setup):
    rows = benchmark.pedantic(lambda: ch6.table_6_2(ch6_setup), rounds=1, iterations=1)
    assert rows[-1][2] > 0  # instances at the leaves
    assert rows[0][2] == 0  # none at the root
    print()
    print("Table 6.2: distribution of instances in YAGO")
    print(format_table(["level", "# classes", "# direct instances"], [list(r) for r in rows]))
