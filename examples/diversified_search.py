"""DivQ: diversified keyword search over the synthetic Lyrics database.

Reproduces the Chapter 4 scenario: an ambiguous keyword query has many
overlapping interpretations; relevance ranking front-loads near-duplicates
while DivQ re-ranks the interpretations — before materializing results — to
balance relevance and novelty, and the adapted metrics (alpha-nDCG-W,
WS-recall) quantify the improvement.

Run:  python examples/diversified_search.py
"""

from repro.core.generator import InterpretationGenerator
from repro.core.probability import DivQModel, TemplateCatalog, rank_interpretations
from repro.datasets.lyrics import build_lyrics
from repro.datasets.workload import lyrics_workload
from repro.divq.analysis import query_ambiguity_entropy
from repro.divq.diversify import diversify
from repro.divq.metrics import alpha_ndcg_w, subtopic_relevance, ws_recall


def main() -> None:
    print("Building synthetic Lyrics (5 tables) ...")
    db = build_lyrics()
    generator = InterpretationGenerator(db, max_template_joins=4)
    model = DivQModel(
        db.require_index(),
        TemplateCatalog(generator.templates),
        database=db,
        check_nonempty=True,
    )

    # Pick the most ambiguous workload query (entropy selection, §4.6.1).
    best = None
    for item in lyrics_workload(db, n_queries=25):
        ranked = [
            (i, p)
            for i, p in rank_interpretations(generator.interpretations(item.query), model)
            if p > 0
        ][:15]
        if len(ranked) < 6:
            continue
        h = query_ambiguity_entropy([p for _i, p in ranked])
        if best is None or h > best[0]:
            best = (h, item, ranked)
    assert best is not None
    entropy, item, ranked = best
    print(f"\nKeyword query: {item.query}  (top-10 entropy {entropy:.2f} bits)\n")

    print("Top-5 by relevance ranking:")
    for i, (interp, p) in enumerate(ranked[:5], start=1):
        print(f"  {i}. P={p:.3f}  {interp.to_structured_query().algebra()}")

    result = diversify(ranked, k=5, tradeoff=0.1)
    print("\nTop-5 by DivQ diversification (lambda=0.1):")
    for i, interp in enumerate(result.selected, start=1):
        print(f"  {i}. {interp.to_structured_query().algebra()}")

    # Compare the orderings with the Chapter 4 metrics: use normalized
    # probability as graded relevance and result keys as subtopics.
    keys = {id(i): frozenset(i.result_keys(db, limit=100)) for i, _p in ranked}
    rel = {id(i): p for i, p in ranked}
    rank_entries = [(rel[id(i)], keys[id(i)]) for i, _p in ranked]
    div_entries = [(rel[id(i)], keys[id(i)]) for i in result.selected]
    universe = subtopic_relevance(rank_entries)

    print("\nMetric                         ranking  diversified")
    for alpha in (0.0, 0.5, 0.99):
        r = alpha_ndcg_w(rank_entries, alpha, 5, ideal_entries=rank_entries)
        d = alpha_ndcg_w(div_entries, alpha, 5, ideal_entries=rank_entries)
        print(f"alpha-nDCG-W@5 (alpha={alpha:4.2f})    {r:6.3f}   {d:6.3f}")
    r = ws_recall(rank_entries, 5, universe)
    d = ws_recall(div_entries, 5, universe)
    print(f"WS-recall@5                    {r:6.3f}   {d:6.3f}")


if __name__ == "__main__":
    main()
