"""FreeQ: interactive query construction over a Freebase-scale schema.

Reproduces the Chapter 5 scenario: on a flat schema with dozens of domains a
keyword matches attributes everywhere, so per-attribute questions are
hopeless.  FreeQ asks concept-level questions from the ontology layer
("is 'stone' a Person?") and explores the huge interpretation space
best-first instead of materializing it.

Run:  python examples/freebase_scale_freeq.py
"""

from repro.core.generator import GeneratorConfig, InterpretationGenerator
from repro.core.probability import ATFModel, TemplateCatalog
from repro.datasets.freebase import build_freebase, freebase_workload
from repro.freeq.system import FreeQ
from repro.freeq.traversal import BestFirstExplorer
from repro.iqp.session import ConstructionSession
from repro.user.oracle import SimulatedUser


def main() -> None:
    print("Building synthetic Freebase (20 domains x 7 tables) ...")
    instance = build_freebase(n_domains=20, rows_per_entity_table=25)
    db = instance.database
    print(f"  {len(db.schema)} tables, {db.total_tuples()} tuples")
    print(f"  ontology: {instance.ontology.summary()}")

    generator = InterpretationGenerator(
        db,
        config=GeneratorConfig(max_atoms_per_keyword=96, max_interpretations=50_000),
        max_template_joins=4,
    )
    model = ATFModel(db.require_index(), TemplateCatalog(generator.templates))
    freeq = FreeQ(generator, model, instance.ontology, stop_size=1)

    workload = freebase_workload(instance, n_queries=6)
    print("\nquery                     plain QCOs   ontology QCOs")
    total_plain = total_onto = 0
    example_transcript = None
    for item in workload:
        u1, u2 = SimulatedUser(item.intended), SimulatedUser(item.intended)
        plain = ConstructionSession(item.query, generator, model, stop_size=1).run(u1)
        onto = freeq.construct(item.query, u2)
        total_plain += plain.options_evaluated
        total_onto += onto.options_evaluated
        print(
            f"{str(item.query):24s}  {plain.options_evaluated:10d}   {onto.options_evaluated:13d}"
        )
        if example_transcript is None and any("is a" in d for d, _ok in onto.transcript):
            example_transcript = (item.query, onto.transcript)
    print(f"{'TOTAL':24s}  {total_plain:10d}   {total_onto:13d}")

    if example_transcript is not None:
        query, transcript = example_transcript
        print(f"\nExample ontology-QCO dialogue for {str(query)!r}:")
        for step, (description, accepted) in enumerate(transcript, start=1):
            print(f"  {step}. {description}?  -> {'yes' if accepted else 'no'}")

    item = workload[0]
    explorer = BestFirstExplorer(item.query, generator, model)
    top = explorer.top_interpretations(5)
    print(
        f"\nBest-first top-5 for {str(item.query)!r} "
        f"(materialized {explorer.pops} partials, not the whole space):"
    )
    for i, (interp, weight) in enumerate(top, start=1):
        print(f"  {i}. w={weight:.2e}  {interp.to_structured_query().algebra()}")


if __name__ == "__main__":
    main()
