"""IQP: incremental query construction on the synthetic IMDB database.

Reproduces the Chapter 3 scenario: an ambiguous keyword query is refined
step by step — the system asks information-gain-maximizing questions
("is 'hanks' an actor's name?"), the (simulated) user accepts or rejects,
and the intended structured query emerges after a handful of interactions
even when ranking buried it.

Run:  python examples/movie_search_iqp.py
"""

from repro.core.generator import InterpretationGenerator
from repro.core.probability import ATFModel, TemplateCatalog
from repro.datasets.imdb import build_imdb
from repro.datasets.workload import imdb_workload
from repro.iqp.ranking import Ranker
from repro.iqp.session import ConstructionSession
from repro.user.oracle import SimulatedUser


def main() -> None:
    print("Building synthetic IMDB (7 tables) ...")
    db = build_imdb()
    generator = InterpretationGenerator(db, max_template_joins=4)
    model = ATFModel(db.require_index(), TemplateCatalog(generator.templates))
    ranker = Ranker(generator, model)

    workload = imdb_workload(db, n_queries=25)
    # Pick the query whose intended interpretation ranks worst: the case
    # incremental construction exists for.
    hardest = None
    for item in workload:
        rank = ranker.rank_of(item.query, item.intended)
        if rank is not None and (hardest is None or rank > hardest[1]):
            hardest = (item, rank)
    assert hardest is not None
    item, rank = hardest
    space_size = generator.space_size(item.query)

    print(f"\nKeyword query : {item.query}")
    print(f"Intended      : {item.intended.bindings}")
    print(f"Interpretation space: {space_size} structured queries")
    print(f"Rank of the intended interpretation: {rank} -> the user would")
    print(f"scan {rank} entries with a pure ranking interface.\n")

    user = SimulatedUser(item.intended)
    session = ConstructionSession(item.query, generator, model, stop_size=3)
    result = session.run(user)

    print("Construction dialogue:")
    for step, (description, accepted) in enumerate(result.transcript, start=1):
        answer = "yes" if accepted else "no"
        print(f"  {step}. {description}?  -> {answer}")
    print(f"\nOptions evaluated : {result.options_evaluated} (vs rank {rank})")
    print(f"Succeeded         : {result.success}")
    if result.final_candidates:
        print("Final shortlist:")
        for i, interp in enumerate(result.final_candidates[:3], start=1):
            marker = "  <-- intended" if user.picks(interp) else ""
            print(f"  {i}. {interp.to_structured_query().algebra()}{marker}")


if __name__ == "__main__":
    main()
