"""YAGO+F: matching a large class ontology onto database tables.

Reproduces the Chapter 6 pipeline: a synthetic YAGO-like ontology (deep
subclass tree, heavy-tailed leaf categories) is matched against database
tables by instance overlap; the resulting YAGO+F hierarchy arranges the
tables under semantic categories, and the overlap threshold trades
precision against recall.

Run:  python examples/ontology_matching.py
"""

from repro.datasets.yago_synth import build_yago_and_tables
from repro.yagof.analysis import (
    category_size_distribution,
    shared_instance_distribution,
    yagof_summary,
)
from repro.yagof.matching import MatchConfig, match_tables, threshold_sweep


def main() -> None:
    print("Building synthetic YAGO ontology + aligned tables ...")
    data = build_yago_and_tables(n_tables=60)
    ontology = data.ontology
    print(f"  {len(ontology)} classes, {len(ontology.all_instances())} instances,")
    print(f"  {len(data.tables)} database tables with known ground-truth classes\n")

    print("Category size distribution (Table 6.1 shape — heavy tail):")
    for label, count in category_size_distribution(ontology):
        print(f"  {label:>8} instances: {count:4d} categories")

    print("\nShared-instance distribution over tables (Fig. 6.2 shape):")
    for n_tables, n_instances in shared_instance_distribution(
        data.tables, shared_instances=ontology.all_instances()
    ):
        print(f"  in {n_tables} table(s): {n_instances} instances")

    matching = match_tables(ontology, data.tables, MatchConfig(threshold=0.5))
    precision, recall = matching.precision_recall(data.ground_truth, ontology)
    print(
        f"\nMatching at threshold 0.5: {len(matching.assignments)} tables attached, "
        f"precision {precision:.2f}, recall {recall:.2f}"
    )
    some = list(matching.assignments.items())[:5]
    for table, (class_name, score, shared) in some:
        print(f"  {table:30s} -> {class_name:40s} (coverage {score:.2f}, {len(shared)} shared)")

    hierarchy = matching.to_hierarchy(ontology)
    print(f"\nYAGO+F summary (Table 6.3): {yagof_summary(hierarchy)}")

    print("\nPrecision/recall vs threshold (Fig. 6.4 shape):")
    for threshold, p, r in threshold_sweep(
        ontology, data.tables, data.ground_truth, [0.1, 0.3, 0.5, 0.7, 0.9]
    ):
        print(f"  threshold {threshold:.1f}: precision {p:.2f}  recall {r:.2f}")


if __name__ == "__main__":
    main()
