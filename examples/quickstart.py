"""Quickstart: keyword search over a relational database in ~60 lines.

Builds a small movie database, indexes it, translates an ambiguous keyword
query into ranked structured interpretations, and executes the best one —
the core loop shared by every system in this library.

Run:  python examples/quickstart.py
"""

from repro.core.generator import InterpretationGenerator
from repro.core.keywords import KeywordQuery
from repro.core.probability import ATFModel, TemplateCatalog, rank_interpretations
from repro.db.database import Database
from repro.db.schema import Attribute, Schema, Table


def build_database() -> Database:
    schema = Schema()
    schema.add_table(Table("actor", [Attribute("name"), Attribute("id", textual=False)]))
    schema.add_table(
        Table("movie", [Attribute("title"), Attribute("year"), Attribute("id", textual=False)])
    )
    schema.add_table(Table("acts", [Attribute("role"), Attribute("id", textual=False)]))
    schema.link("acts", "actor")
    schema.link("acts", "movie")

    db = Database(schema)
    db.insert("actor", {"id": 1, "name": "tom hanks"})
    db.insert("actor", {"id": 2, "name": "colin hanks"})
    db.insert("actor", {"id": 3, "name": "jack london"})
    db.insert("movie", {"id": 1, "title": "the terminal", "year": "2004"})
    db.insert("movie", {"id": 2, "title": "hanks island", "year": "2001"})
    db.insert("movie", {"id": 3, "title": "london calling", "year": "2001"})
    db.insert("acts", {"id": 1, "actor_id": 1, "movie_id": 1, "role": "captain"})
    db.insert("acts", {"id": 2, "actor_id": 1, "movie_id": 2, "role": "pilot"})
    db.insert("acts", {"id": 3, "actor_id": 2, "movie_id": 2, "role": "doctor"})
    db.insert("acts", {"id": 4, "actor_id": 3, "movie_id": 3, "role": "writer"})
    db.build_indexes()
    return db


def main() -> None:
    db = build_database()
    generator = InterpretationGenerator(db, max_template_joins=2)
    model = ATFModel(db.require_index(), TemplateCatalog(generator.templates))

    query = KeywordQuery.parse("hanks 2001")
    print(f"Keyword query: {query}\n")

    space = generator.interpretations(query)
    ranked = rank_interpretations(space, model)
    print(f"The query has {len(ranked)} structured interpretations; top 5:\n")
    for i, (interp, probability) in enumerate(ranked[:5], start=1):
        print(f"  {i}. P={probability:.3f}  {interp.to_structured_query().algebra()}")

    best, _p = ranked[0]
    sq = best.to_structured_query()
    print("\nBest interpretation as SQL:\n")
    print("  " + sq.to_sql().replace("\n", "\n  "))
    print("\nResults (joining networks of tuples):\n")
    for row in sq.execute(db):
        rendered = " -- ".join(f"{t.table}:{t.key}" for t in row)
        actor = row[0].get("name")
        movie = row[-1].get("title")
        print(f"  {rendered}   ({actor} in {movie!r})")


if __name__ == "__main__":
    main()
