"""A complete keyword-search engine in one script.

Chains the library's full pipeline the way a deployed system would:

  typo-tolerant auto-completion -> query cleaning -> segmentation ->
  interpretation ranking -> top-k execution with early stopping ->
  snippets and result clustering.

Run:  python examples/search_engine.py
"""

from repro.core.autocomplete import AutoCompleter
from repro.core.cleaning import QueryCleaner
from repro.core.generator import InterpretationGenerator
from repro.core.keywords import KeywordQuery
from repro.core.probability import ATFModel, TemplateCatalog, rank_interpretations
from repro.core.segmentation import QuerySegmenter
from repro.core.snippets import cluster_results, make_snippet
from repro.core.topk import TopKExecutor
from repro.datasets.imdb import build_imdb


def main() -> None:
    print("Building and indexing the synthetic IMDB database ...")
    db = build_imdb()
    index = db.require_index()
    generator = InterpretationGenerator(db, max_template_joins=4)
    model = ATFModel(index, TemplateCatalog(generator.templates))

    # 1. The user starts typing; auto-completion guides them to real terms.
    completer = AutoCompleter(index)
    prefix = "han"
    completions = completer.complete(prefix)
    print(f"\nauto-complete {prefix!r}: {[c.term for c in completions[:4]]}")

    # 2. They submit a query with a typo; cleaning repairs it.
    raw = "hankz terminal"
    cleaner = QueryCleaner(index)
    query, corrections = cleaner.clean(KeywordQuery.parse(raw))
    for c in corrections:
        print(f"did you mean: {c.keyword.term!r} -> {c.replacement!r} (d={c.distance})")
    print(f"query: {query}")

    # 3. Segmentation shows which keywords form one concept.
    segmentation = QuerySegmenter(index).segment(query)
    print("segments:", [" ".join(s.terms) for s in segmentation])

    # 4. Disambiguation: rank the structured interpretations.
    ranked = rank_interpretations(generator.interpretations(query), model)
    print(f"\n{len(ranked)} interpretations; top 3:")
    for i, (interp, p) in enumerate(ranked[:3], start=1):
        print(f"  {i}. P={p:.3f}  {interp.to_structured_query().algebra()}")

    # 5. Top-k execution with TA-style early stopping.
    executor = TopKExecutor(db)
    results = executor.execute(ranked, k=8)
    stats = executor.statistics
    print(
        f"\ntop-8 results ({stats.interpretations_executed}/{len(ranked)} "
        f"interpretations executed, early stop: {stats.stopped_early}):"
    )

    # 6. Presentation: snippets with highlighted keywords ...
    for r in results[:5]:
        print(f"  [{r.score:.3f}] {make_snippet(query, r.row).text}")

    # ... and clustering by match signature (automatic disambiguation).
    clusters = cluster_results(query, [r.row for r in results])
    print("\nresult clusters:")
    for cluster in clusters:
        print(f"  {len(cluster)} result(s) matching via {cluster.label()}")


if __name__ == "__main__":
    main()
