#!/usr/bin/env python
"""Docs lint: fail if the docs reference nonexistent CLI flags, modules or files.

Checks, over README.md and docs/*.md:

1. Every ``python -m repro.cli ...`` command in a fenced code block parses
   against the real argparse parser (subcommand, flags, choices, arity).
2. Every dotted ``repro.*`` name in code blocks or inline code resolves to an
   importable module, or a module attribute thereof.
3. Every repo-relative path mentioned (``src/...``, ``tests/...``,
   ``benchmarks/...``, ``docs/...``, ``examples/...``, ``scripts/...``)
   exists.

And two coverage checks in the opposite direction — code the docs must
not *omit*:

4. Every long option of every ``repro`` subcommand appears in
   ``docs/cli.md`` (an undocumented flag fails the lint).
5. Every HTTP route in ``repro.net.http.ROUTES`` appears in
   ``docs/http_api.md``, method and path both.

Run as ``PYTHONPATH=src python scripts/lint_docs.py`` (CI runs it on every
push, so the docs cannot drift from the code).
"""

from __future__ import annotations

import contextlib
import importlib
import io
import re
import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

FENCED_RE = re.compile(r"```[a-z]*\n(.*?)```", re.DOTALL)
INLINE_CODE_RE = re.compile(r"`([^`\n]+)`")
MODULE_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
PATH_RE = re.compile(r"\b(?:src|tests|benchmarks|docs|examples|scripts)/[\w./-]*\w")


def iter_code(text: str):
    """All code content: fenced blocks and inline spans."""
    for match in FENCED_RE.finditer(text):
        yield match.group(1)
    without_fences = FENCED_RE.sub("", text)
    for match in INLINE_CODE_RE.finditer(without_fences):
        yield match.group(1)


def check_cli_commands(text: str, source: str, errors: list[str]) -> None:
    from repro.cli import build_parser

    for block in FENCED_RE.finditer(text):
        for line in block.group(1).splitlines():
            line = line.strip()
            if not line.startswith("python -m repro.cli"):
                continue
            if "<" in line:  # usage placeholders like <subcommand>
                continue
            argv = shlex.split(line)[3:]  # drop "python -m repro.cli"
            if not argv:
                errors.append(f"{source}: bare repro.cli invocation: {line}")
                continue
            parser = build_parser()
            try:
                with contextlib.redirect_stderr(io.StringIO()) as stderr:
                    parser.parse_args(argv)
            except SystemExit:
                detail = stderr.getvalue().strip().splitlines()
                errors.append(
                    f"{source}: invalid CLI command: {line}"
                    + (f" ({detail[-1]})" if detail else "")
                )


def check_module_references(text: str, source: str, errors: list[str]) -> None:
    for code in iter_code(text):
        for dotted in set(MODULE_RE.findall(code)):
            if not _resolves(dotted):
                errors.append(f"{source}: unresolvable reference: {dotted}")


def _resolves(dotted: str) -> bool:
    """True if ``dotted`` is an importable module or an attribute of one."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        obj = module
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_paths(text: str, source: str, errors: list[str]) -> None:
    for code in iter_code(text):
        for path in set(PATH_RE.findall(code)):
            if not (REPO_ROOT / path).exists():
                errors.append(f"{source}: missing file or directory: {path}")


def iter_cli_option_strings():
    """Every ``(subcommand, long option)`` the real parser accepts.

    Subparser aliases are deduplicated by parser identity; ``--help`` is
    skipped (argparse adds it everywhere, the docs need not).
    """
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    seen: set[int] = set()
    for name, sub in subparsers.choices.items():
        if id(sub) in seen:
            continue
        seen.add(id(sub))
        for action in sub._actions:
            for option in action.option_strings:
                if option.startswith("--") and option != "--help":
                    yield name, option


def check_cli_flag_coverage(cli_doc_text: str, errors: list[str]) -> None:
    """Every CLI long option must appear somewhere in docs/cli.md."""
    for subcommand, option in iter_cli_option_strings():
        if option not in cli_doc_text:
            errors.append(
                f"docs/cli.md: undocumented flag: {subcommand} {option}"
            )


def check_http_route_coverage(http_doc_text: str, errors: list[str]) -> None:
    """Every served route must appear in docs/http_api.md, method and path."""
    from repro.net.http import ROUTES

    for method, path in ROUTES:
        if method not in http_doc_text or path not in http_doc_text:
            errors.append(
                f"docs/http_api.md: undocumented route: {method} {path}"
            )


def main() -> int:
    errors: list[str] = []
    texts: dict[str, str] = {}
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        source = doc.relative_to(REPO_ROOT).as_posix()
        texts[source] = text
        check_cli_commands(text, source, errors)
        check_module_references(text, source, errors)
        check_paths(text, source, errors)
    check_cli_flag_coverage(texts.get("docs/cli.md", ""), errors)
    check_http_route_coverage(texts.get("docs/http_api.md", ""), errors)
    if errors:
        print(f"docs lint: {len(errors)} error(s)", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"docs lint: OK ({len(DOC_FILES)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
