"""repro — reproduction of *Usability and Expressiveness in Database Keyword
Search: Bridging the Gap* (Demidova; VLDB 2009 PhD workshop / PhD thesis 2013).

Subpackages
-----------
``repro.db``
    In-memory relational engine: schemas, tuples, inverted index, join
    execution, data graph.
``repro.core``
    Keyword-query disambiguation framework: structured queries, templates,
    interpretations, query hierarchy, probabilistic models, candidate
    networks.
``repro.iqp``
    Incremental query construction (Chapter 3): construction plans,
    brute-force and greedy algorithms, ranking, interactive sessions.
``repro.divq``
    Diversification of query interpretations (Chapter 4) and the alpha-nDCG-W /
    WS-recall metrics.
``repro.freeq``
    Scaling construction to very large schemas with ontology-based query
    construction options (Chapter 5).
``repro.yagof``
    Instance-based ontology-to-database matching (Chapter 6).
``repro.baselines``
    SQAK, DISCOVER and BANKS-style comparison systems.
``repro.datasets``
    Deterministic synthetic IMDB/Lyrics/Freebase/YAGO generators and keyword
    workloads with ground truth.
``repro.user``
    Simulated users (ground-truth oracle, study timing model).
``repro.experiments``
    One harness per table/figure of the evaluation chapters.
"""

__version__ = "1.0.0"

from repro.core.keywords import KeywordQuery
from repro.db.database import Database
from repro.db.schema import Attribute, ForeignKey, Schema, Table

__all__ = [
    "Attribute",
    "Database",
    "ForeignKey",
    "KeywordQuery",
    "Schema",
    "Table",
    "__version__",
]
