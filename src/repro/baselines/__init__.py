"""Comparison systems (Sections 2.2.2–2.2.4, 3.8.3).

* :mod:`repro.baselines.sqak` — SQAK-style query-interpretation ranking:
  Steiner-tree size minimization with Lucene-normalized TF-IDF node scores.
* :mod:`repro.baselines.discover` — DISCOVER/DBXplorer-style ranking by the
  number of joins.
* :mod:`repro.baselines.banks` — BANKS-style data-graph search: backward
  expansion from keyword nodes producing minimal joining tuple trees.
"""

from repro.baselines.banks import BanksSearch, TupleTree
from repro.baselines.discover import DiscoverRanker
from repro.baselines.sqak import SqakRanker

__all__ = ["BanksSearch", "DiscoverRanker", "SqakRanker", "TupleTree"]
