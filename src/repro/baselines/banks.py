"""BANKS-style data-based keyword search (Section 2.2.2).

BANKS answers keyword queries directly on the tuple-level data graph:
backward expanding search grows shortest-path trees from every tuple
containing a keyword (Dijkstra per keyword group); any node reached by all
groups is a candidate root of a joining tuple tree (JTT), scored by the total
path weight — an approximation of the (NP-complete) minimum group Steiner
tree.  Results materialize directly, without candidate networks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.keywords import KeywordQuery
from repro.db.datagraph import DataGraph, TupleId


@dataclass(frozen=True)
class TupleTree:
    """A joining network of tuples rooted at ``root`` covering all keywords."""

    root: TupleId
    nodes: frozenset[TupleId]
    cost: float

    @property
    def size(self) -> int:
        return len(self.nodes)


@dataclass
class BanksSearch:
    """Backward expanding search over a :class:`DataGraph`."""

    datagraph: DataGraph
    #: Cap on Dijkstra expansion per keyword group (scalability guard).
    max_visited_per_group: int = 50_000

    def keyword_groups(self, query: KeywordQuery) -> list[set[TupleId]]:
        """Tuple-node sets per distinct keyword term (empty terms dropped)."""
        groups: list[set[TupleId]] = []
        for term in dict.fromkeys(k.term for k in query.keywords):
            nodes = self.datagraph.keyword_nodes(term)
            if nodes:
                groups.append(nodes)
        return groups

    def _dijkstra(self, sources: set[TupleId]) -> dict[TupleId, tuple[float, TupleId]]:
        """Multi-source shortest paths: node -> (distance, tree predecessor)."""
        dist: dict[TupleId, tuple[float, TupleId]] = {}
        heap: list[tuple[float, TupleId, TupleId]] = []
        for s in sources:
            heapq.heappush(heap, (0.0, s, s))
        visited = 0
        graph = self.datagraph.graph
        while heap and visited < self.max_visited_per_group:
            d, node, pred = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = (d, pred)
            visited += 1
            for neighbor in graph.neighbors(node):
                if neighbor not in dist:
                    weight = graph[node][neighbor].get("weight", 1.0)
                    heapq.heappush(heap, (d + weight, neighbor, node))
        return dist

    def _collect_path(
        self, node: TupleId, dist: dict[TupleId, tuple[float, TupleId]]
    ) -> set[TupleId]:
        """Nodes on the shortest path from ``node`` back to its source."""
        path = {node}
        current = node
        while True:
            _d, pred = dist[current]
            if pred == current:
                break
            path.add(pred)
            current = pred
        return path

    def search(self, query: KeywordQuery, k: int = 10) -> list[TupleTree]:
        """Top-``k`` minimal joining tuple trees for ``query``.

        Completeness (AND semantics): a tree must connect at least one tuple
        from every keyword group.  Returns the cheapest ``k`` trees by total
        root-to-keyword path cost, deduplicated by node set.
        """
        groups = self.keyword_groups(query)
        if not groups:
            return []
        distances = [self._dijkstra(g) for g in groups]
        candidate_roots = set(distances[0])
        for dist in distances[1:]:
            candidate_roots &= set(dist)
        scored: list[tuple[float, TupleId]] = []
        for root in candidate_roots:
            cost = sum(dist[root][0] for dist in distances)
            scored.append((cost, root))
        scored.sort(key=lambda pair: (pair[0], repr(pair[1])))
        trees: list[TupleTree] = []
        seen_nodesets: set[frozenset[TupleId]] = set()
        for cost, root in scored:
            nodes: set[TupleId] = set()
            for dist in distances:
                nodes |= self._collect_path(root, dist)
            frozen = frozenset(nodes)
            if frozen in seen_nodesets:
                continue
            seen_nodesets.add(frozen)
            trees.append(TupleTree(root=root, nodes=frozen, cost=cost))
            if len(trees) >= k:
                break
        return trees
