"""DISCOVER/DBXplorer-style ranking: number of joins (Section 2.2.4).

The earliest schema-based systems ranked candidate networks purely by size —
shorter joining sequences imply closer association of the keywords.  This is
the simplest baseline ranking in the reproduction's comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generator import InterpretationGenerator
from repro.core.keywords import KeywordQuery
from repro.iqp.ranking import RankedInterpretation
from repro.user.oracle import IntendedInterpretation


@dataclass
class DiscoverRanker:
    """Ranks interpretations by ascending join count (1/size scoring)."""

    generator: InterpretationGenerator

    def rank(self, query: KeywordQuery) -> list[RankedInterpretation]:
        space = self.generator.interpretations(query)
        scored = sorted(
            ((i.template.size, i) for i in space),
            key=lambda pair: (pair[0], pair[1].describe()),
        )
        total = sum(1.0 / (1.0 + size) for size, _ in scored) or 1.0
        return [
            RankedInterpretation(
                rank=position + 1,
                interpretation=interp,
                probability=(1.0 / (1.0 + size)) / total,
            )
            for position, (size, interp) in enumerate(scored)
        ]

    def rank_of(
        self, query: KeywordQuery, intended: IntendedInterpretation
    ) -> int | None:
        for entry in self.rank(query):
            if intended.matches(entry.interpretation):
                return entry.rank
        return None
