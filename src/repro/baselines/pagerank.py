"""PageRank-style importance on the data graph (Section 2.2.4).

BANKS-lineage systems weight tuples by their connectivity: well-connected
tuples (a prolific actor, an often-referenced movie) are globally important,
in the spirit of PageRank/ObjectRank applied to databases.  This module
computes tuple importance over the :class:`~repro.db.datagraph.DataGraph`
and exposes an importance-aware scorer for joining tuple trees, used as an
additional ranking factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from repro.db.datagraph import DataGraph, TupleId
from repro.db.table import Tuple

JTT = Sequence[Tuple]


@dataclass
class TupleImportance:
    """PageRank scores over all tuples of a database."""

    scores: dict[TupleId, float] = field(default_factory=dict)

    @classmethod
    def compute(
        cls, datagraph: DataGraph, damping: float = 0.85, max_iter: int = 100
    ) -> "TupleImportance":
        if datagraph.node_count() == 0:
            return cls()
        scores = nx.pagerank(datagraph.graph, alpha=damping, max_iter=max_iter)
        return cls(scores=dict(scores))

    def of(self, uid: TupleId) -> float:
        return self.scores.get(uid, 0.0)

    def top(self, n: int) -> list[tuple[TupleId, float]]:
        ordered = sorted(self.scores.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ordered[:n]


@dataclass
class ImportanceScorer:
    """Ranks JTTs by aggregate tuple importance (BANKS-style node weights)."""

    importance: TupleImportance

    def score(self, result: JTT) -> float:
        if not result:
            return 0.0
        return sum(self.importance.of(t.uid) for t in result) / len(result)

    def rank(self, results: Sequence[JTT]) -> list[tuple[float, JTT]]:
        scored = [(self.score(r), r) for r in results]
        scored.sort(key=lambda pair: (-pair[0], [t.uid for t in pair[1]]))
        return scored
