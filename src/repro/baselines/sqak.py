"""SQAK-style query ranking (the comparison system of Section 3.8.3).

SQAK regards a query interpretation as a graph whose score aggregates node
and edge scores: nodes/edges without keywords carry unit scores, and a node
containing keywords is scored by the TF-IDF of the keywords, normalized in
the style of Lucene's practical scoring function; several keywords in one
node combine like a Lucene boolean AND (summed term scores).  Interpretation
ranking follows Steiner-tree minimization: the *lower* the total weight, the
better — which prefers short join paths, while TF-IDF prefers distinctive
(rare) keyword matches over typical ones.

The thesis observes both traits cost SQAK accuracy on its workloads: ATF
prefers *typical* interpretations ("garcia" as an actor name) where TF-IDF
picks *distinctive* ones ("garcia" as a movie title), and Steiner
minimization truncates the long 5-table Lyrics chain (Section 3.8.3).  This
implementation reproduces exactly those traits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.generator import InterpretationGenerator
from repro.core.interpretation import Interpretation, TableAtom, ValueAtom
from repro.core.keywords import KeywordQuery
from repro.db.index import InvertedIndex
from repro.iqp.ranking import RankedInterpretation
from repro.user.oracle import IntendedInterpretation


@dataclass
class SqakRanker:
    """Ranks interpretation spaces with the SQAK scoring function."""

    generator: InterpretationGenerator
    index: InvertedIndex

    def node_score(self, interpretation: Interpretation, slot: int) -> float:
        """Cost of one template slot (lower = better).

        A slot without keywords costs 1 (free node).  A slot with keywords
        costs ``1 / (1 + sum of normalized TF-IDF scores)`` — high TF-IDF
        means a cheap, attractive node, mirroring SQAK's preference for
        distinctive matches.
        """
        table = interpretation.template.path[slot]
        tfidf_total = 0.0
        any_keyword = False
        for atom, atom_slot in interpretation.assignment:
            if atom_slot != slot:
                continue
            any_keyword = True
            if isinstance(atom, ValueAtom):
                tf = self.index.tf(atom.keyword.term, atom.table, atom.attribute)
                idf = self.index.idf(atom.keyword.term, atom.table)
                # Lucene-style: sqrt(tf) * idf^2, queryNorm folded away.
                tfidf_total += math.sqrt(tf) * idf * idf
            elif isinstance(atom, TableAtom):
                # Schema-term match: treated as maximally frequent term
                # (schema-based document frequency, Section 2.2.4).
                tfidf_total += 1.0
        if not any_keyword:
            return 1.0
        return 1.0 / (1.0 + tfidf_total)

    def score(self, interpretation: Interpretation) -> float:
        """Total Steiner-tree weight: node costs plus unit edge costs."""
        node_cost = sum(
            self.node_score(interpretation, slot)
            for slot in range(len(interpretation.template.path))
        )
        edge_cost = float(interpretation.template.size)
        return node_cost + edge_cost

    def rank(self, query: KeywordQuery) -> list[RankedInterpretation]:
        space = self.generator.interpretations(query)
        scored = sorted(
            ((self.score(i), i) for i in space),
            key=lambda pair: (pair[0], pair[1].describe()),
        )
        total = sum(1.0 / (1.0 + s) for s, _ in scored) or 1.0
        return [
            RankedInterpretation(
                rank=position + 1,
                interpretation=interp,
                probability=(1.0 / (1.0 + score)) / total,
            )
            for position, (score, interp) in enumerate(scored)
        ]

    def rank_of(
        self, query: KeywordQuery, intended: IntendedInterpretation
    ) -> int | None:
        for entry in self.rank(query):
            if intended.matches(entry.interpretation):
                return entry.rank
        return None
