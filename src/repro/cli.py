"""Command-line interface.

Exposes the library's main flows on the bundled synthetic datasets:

    python -m repro.cli search    --dataset imdb "hanks 2001"
    python -m repro.cli search    --dataset imdb --explain "hanks 2001"
    python -m repro.cli search    --dataset imdb --backend sqlite --db-path imdb.sqlite "hanks 2001"
    python -m repro.cli construct --dataset imdb "hanks 2001" --answers y n y
    python -m repro.cli diversify --dataset lyrics "london" --k 5
    python -m repro.cli serve     --dataset imdb --workers 8
    python -m repro.cli serve     --dataset imdb --tcp --port 7341
    python -m repro.cli bench-serve --dataset imdb --clients 8 --queries 25
    python -m repro.cli bench-load --spawn --mode closed --connections 8 --requests 200
    python -m repro.cli report    --chapter 3

Every query flow routes through one :class:`repro.engine.QueryEngine`
(segment → generate → rank → execute); ``query`` is an alias of ``search``.
``--explain`` prints the rendered SQL of the top interpretations, per-stage
timings and the result-cache hit/miss counters from the engine context.
``construct`` runs the IQP dialogue: with ``--answers`` the given y/n
sequence answers the options (cycling); without it the session is driven
interactively from stdin.  ``serve --tcp`` swaps the stdin line protocol
for a real asyncio TCP listener speaking newline-delimited JSON (see
:mod:`repro.net`), with connection limits, bounded-queue overload
rejection, per-request timeouts and SIGTERM graceful drain;
``--tcp-workers N`` forks N serving processes over one listening socket.
``bench-load`` drives such a server with open- or closed-loop asyncio
clients and persists latency percentiles plus server CPU/RSS samples as a
schema-versioned ``BENCH_serve_*.json`` record.
``--backend``/``--db-path``/``--shards`` select
the storage engine (see ``docs/cli.md``); a persistent SQLite file is reused
on subsequent runs — including its persisted index postings and cached
interpretation results — instead of re-generating the dataset.
``--backend sqlite-sharded`` hash-partitions the store across ``--shards``
attached database files and executes scatter-gather; ``--cache-size`` bounds
the process-level result-cache LRU.  ``--semantic-cache`` layers the
subsumption-aware semantic cache over it (near-miss variants of cached
queries answer by filtering/truncating cached rows instead of executing) and
``--warm-workload N`` replays the N hottest recorded-workload queries through
the engine on open; ``--explain`` then also shows exact-vs-subsumption hit
splits, rows filtered/truncated per subsumption answer, and the warmer's
replay count.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.core.hierarchy import QueryHierarchy
from repro.core.keywords import KeywordQuery
from repro.core.snippets import make_snippet
from repro.db.backends import available_backends
from repro.db.errors import DatabaseError
from repro.divq.diversify import diversify
from repro.engine import EngineConfig, QueryEngine
from repro.iqp.infogain import information_gain


def _engine_config(args: argparse.Namespace) -> EngineConfig | None:
    """Engine knobs from the shared storage/engine flags (None = defaults)."""
    overrides: dict[str, object] = {}
    if getattr(args, "cache_size", None) is not None:
        overrides["result_cache_size"] = args.cache_size
    if getattr(args, "semantic_cache", False):
        overrides["semantic_cache"] = True
    if getattr(args, "warm_workload", 0):
        overrides["warm_workload"] = int(args.warm_workload)
    if not getattr(args, "cost_planning", True):
        overrides["cost_based_planning"] = False
    if getattr(args, "read_pool_size", None) is not None:
        overrides["read_pool_size"] = args.read_pool_size
    if not overrides:
        return None
    return EngineConfig(**overrides)  # type: ignore[arg-type]


def _engine(args: argparse.Namespace) -> QueryEngine:
    """The one pipeline entry point every query subcommand uses."""
    config = _engine_config(args)
    try:
        return QueryEngine.for_dataset(
            args.dataset,
            backend=args.backend,
            db_path=args.db_path,
            shards=args.shards,
            **({} if config is None else {"config": config}),
        )
    except ValueError as exc:  # unknown dataset / --db-path / --shards misuse
        raise SystemExit(f"error: {exc}") from None
    except DatabaseError as exc:  # unreadable/mismatched --db-path file
        raise SystemExit(f"error: {exc}") from None


def cmd_search(args: argparse.Namespace) -> int:
    engine = _engine(args)
    context = engine.run(args.query, k=args.k, explain=args.explain)
    if not context.ranked:
        print("no interpretations found")
        return 1
    ranked = context.ranked
    print(f"{len(ranked)} interpretations; top {min(args.k, len(ranked))}:")
    for i, (interp, p) in enumerate(ranked[: args.k], start=1):
        print(f"  {i}. P={p:.3f}  {interp.to_structured_query().algebra()}")
    executed = context.executor_statistics.interpretations_executed
    print(f"\ntop-{args.k} results ({executed} interpretations executed):")
    for r in context.results:
        print(f"  [{r.score:.3f}] {make_snippet(context.query, r.row).text}")
    if args.explain:
        print()
        print("\n".join(context.explain_lines()))
    return 0


@dataclass
class _ScriptedUser:
    """Answers construction options from a y/n script (cycling)."""

    answers: list[str]
    position: int = 0
    evaluations: int = 0
    log: list[tuple[str, bool]] = field(default_factory=list)

    def decide(self, description: str) -> bool:
        answer = self.answers[self.position % len(self.answers)]
        self.position += 1
        self.evaluations += 1
        accepted = answer.lower().startswith("y")
        self.log.append((description, accepted))
        return accepted


def cmd_construct(args: argparse.Namespace) -> int:
    engine = _engine(args)
    query = KeywordQuery.parse(args.query)
    hierarchy = QueryHierarchy(query, engine.generator, engine.model)
    scripted = _ScriptedUser(args.answers) if args.answers else None
    steps = 0
    while steps < args.max_steps:
        steps += 1
        while hierarchy.can_expand() and len(hierarchy) < 20:
            hierarchy.expand_once()
        if hierarchy.at_complete_level() and len(hierarchy) <= args.stop_size:
            break
        weights = [n.weight for n in hierarchy.frontier]
        best, best_gain = None, 0.0
        for option in hierarchy.frontier_atoms():
            pattern = [option.matches(n.atoms) for n in hierarchy.frontier]
            if all(pattern) or not any(pattern):
                continue
            gain = information_gain(weights, pattern)
            if gain > best_gain:
                best, best_gain = option, gain
        if best is None:
            if hierarchy.can_expand():
                hierarchy.expand_once()
                continue
            break
        prompt = f"{best.describe()}? [y/n] "
        if scripted is not None:
            accepted = scripted.decide(best.describe())
            print(prompt + ("y" if accepted else "n"))
        else:  # pragma: no cover - interactive path
            reply = input(prompt).strip().lower()
            accepted = reply.startswith("y")
        if accepted:
            hierarchy.accept(best)
        else:
            hierarchy.reject(best)
        if not hierarchy.frontier:
            print("no interpretation consistent with the answers")
            return 1
    hierarchy.expand_to_complete()
    candidates = hierarchy.complete_interpretations()
    print(f"\n{len(candidates)} candidate interpretation(s):")
    for i, interp in enumerate(candidates[:5], start=1):
        print(f"  {i}. {interp.to_structured_query().algebra()}")
    return 0


def cmd_diversify(args: argparse.Namespace) -> int:
    engine = _engine(args)
    ranked = engine.rank(args.query)[:25]
    if not ranked:
        print("no interpretations found")
        return 1
    result = diversify(ranked, k=args.k, tradeoff=args.tradeoff)
    print(f"top-{args.k} diversified interpretations (lambda={args.tradeoff}):")
    for i, interp in enumerate(result.selected, start=1):
        print(f"  {i}. {interp.to_structured_query().algebra()}")
    return 0


def _print_served_response(text, response) -> None:
    """One served line-protocol answer (shared by threaded and async serve)."""
    statistics = response.context.executor_statistics
    print(
        f"[{text}] {len(response.results)} result(s) in "
        f"{response.seconds * 1000:.1f} ms "
        f"({statistics.sql_statements} statement(s), "
        f"{statistics.cache_hits} cache hit(s))",
        flush=True,
    )
    for result in response.results:
        snippet = make_snippet(response.context.query, result.row)
        print(f"  [{result.score:.3f}] {snippet.text}", flush=True)


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve keyword queries read from stdin, one per line, concurrently.

    Lines are submitted to the server pool as they arrive; a drainer thread
    prints each answer in input order the moment it completes, so an
    interactive client gets its reply without closing stdin — a minimal line
    protocol that makes the concurrent serving path scriptable
    (`echo "hanks 2001" | repro serve ...`) and usable as a coprocess.
    With ``--async`` the same protocol runs on an asyncio event loop (see
    :func:`_cmd_serve_async`); with ``--tcp`` it becomes a network service
    (see :func:`_cmd_serve_tcp`).
    """
    import queue
    import threading

    from repro.server import QueryServer

    if args.tcp or args.http:
        return _cmd_serve_tcp(args)
    if args.use_async:
        return _cmd_serve_async(args)

    print_response = _print_served_response

    pending: "queue.SimpleQueue" = queue.SimpleQueue()
    failures = 0
    # Set when stdout goes away (e.g. piped into head): the reader stops
    # submitting — executing queries nobody will see is pure waste.
    muted = threading.Event()

    def drain() -> None:
        nonlocal failures
        while True:
            item = pending.get()
            if item is None:
                return
            text, future = item
            try:
                response = future.result()
            except Exception as exc:  # noqa: BLE001 - keep serving other lines
                failures += 1
                response = None
                error = exc
            if muted.is_set():
                continue
            try:
                if response is not None:
                    print_response(text, response)
                else:
                    print(f"[{text}] error: {error}", flush=True)
            except (BrokenPipeError, ConnectionResetError, ValueError):
                muted.set()

    with QueryServer(
        max_workers=args.workers, engine_config=_engine_config(args)
    ) as server:
        try:
            server.engine_for(
                args.dataset,
                backend=args.backend,
                db_path=args.db_path,
                shards=args.shards,
            )
        except (ValueError, DatabaseError) as exc:
            raise SystemExit(f"error: {exc}") from None
        print(
            f"serving dataset={args.dataset} backend={args.backend} "
            f"workers={args.workers} (one query per line)",
            flush=True,
        )
        drainer = threading.Thread(target=drain, name="repro-serve-print")
        drainer.start()
        try:
            for line in sys.stdin:
                if muted.is_set():
                    break  # output is gone; don't execute unread queries
                text = line.strip()
                if not text:
                    continue
                pending.put(
                    (
                        text,
                        server.submit(
                            args.dataset,
                            text,
                            k=args.k,
                            backend=args.backend,
                            db_path=args.db_path,
                            shards=args.shards,
                        ),
                    )
                )
        finally:
            pending.put(None)
            drainer.join()
    return 0 if not failures else 1


def _cmd_serve_async(args: argparse.Namespace) -> int:
    """The ``serve --async`` front end: one event loop, zero pinned workers.

    Same line protocol and the same (threaded) engine pool underneath, but
    the front end — reading stdin, awaiting responses, printing answers in
    input order — is a single asyncio event loop.  A client that drips its
    queries or reads its answers slowly keeps exactly zero worker threads
    waiting on it; workers only ever run engine pipelines.
    """
    import asyncio

    from repro.server import QueryServer

    async def run() -> int:
        failures = 0
        loop = asyncio.get_running_loop()
        pending: "asyncio.Queue" = asyncio.Queue()
        # Set when stdout goes away (e.g. piped into head): the reader stops
        # submitting, exactly like the threaded front end.
        muted = False

        async def drain() -> None:
            nonlocal failures, muted
            while True:
                item = await pending.get()
                if item is None:
                    return
                text, response_future = item
                try:
                    response = await response_future
                except Exception as exc:  # noqa: BLE001 - keep serving
                    failures += 1
                    response, error = None, exc
                if muted:
                    continue
                try:
                    if response is not None:
                        _print_served_response(text, response)
                    else:
                        print(f"[{text}] error: {error}", flush=True)
                except (BrokenPipeError, ConnectionResetError, ValueError):
                    muted = True

        with QueryServer(
            max_workers=args.workers, engine_config=_engine_config(args)
        ) as server:
            try:
                server.engine_for(
                    args.dataset,
                    backend=args.backend,
                    db_path=args.db_path,
                    shards=args.shards,
                )
            except (ValueError, DatabaseError) as exc:
                raise SystemExit(f"error: {exc}") from None
            print(
                f"serving dataset={args.dataset} backend={args.backend} "
                f"workers={args.workers} frontend=asyncio (one query per line)",
                flush=True,
            )
            drainer = asyncio.ensure_future(drain())
            try:
                while True:
                    # stdin has no portable async reader; one executor thread
                    # feeds the loop line by line.
                    line = await loop.run_in_executor(None, sys.stdin.readline)
                    if not line or muted:
                        break  # input done, or output gone: stop submitting
                    text = line.strip()
                    if not text:
                        continue
                    future = server.submit(
                        args.dataset,
                        text,
                        k=args.k,
                        backend=args.backend,
                        db_path=args.db_path,
                        shards=args.shards,
                    )
                    await pending.put((text, asyncio.wrap_future(future)))
            finally:
                await pending.put(None)
                await drainer
        return 0 if not failures else 1

    return asyncio.run(run())


def _cmd_serve_tcp(args: argparse.Namespace) -> int:
    """The ``serve --tcp`` front end: a real asyncio TCP listener.

    Newline-delimited JSON over TCP (:mod:`repro.net.protocol`), with the
    admission control the stdin coprocess never needed — connection cap,
    bounded in-flight queue with explicit ``overloaded`` rejections,
    per-request timeouts — and a SIGTERM-driven graceful drain.  The
    engine pool underneath is the same :class:`repro.server.QueryServer`;
    ``--tcp-workers N`` binds the socket once and forks N serving
    processes over it.  ``--http`` adds the HTTP/1.1 front end
    (:mod:`repro.net.http`) on ``--http-port``, sharing the same
    admission layer — the TCP listener always serves too.
    """
    from repro.net.listener import TCPServerConfig, run_tcp_server

    config = TCPServerConfig(
        host=args.host,
        port=args.port,
        dataset=args.dataset,
        backend=args.backend,
        db_path=args.db_path,
        shards=args.shards,
        read_pool_size=args.read_pool_size,
        k=args.k,
        engine_workers=args.workers,
        max_connections=args.max_connections,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        http_port=args.http_port if args.http else None,
    )
    try:
        return run_tcp_server(
            config, workers=args.tcp_workers, engine_config=_engine_config(args)
        )
    except (ValueError, DatabaseError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from None


def cmd_bench_load(args: argparse.Namespace) -> int:
    """Drive a live TCP server and persist a ``BENCH_serve_*.json`` record."""
    from repro.net import loadgen

    sweep: list[int] | None = None
    if args.workers_sweep:
        if args.mode != "closed":
            raise SystemExit("error: --workers-sweep requires --mode closed")
        try:
            sweep = [
                int(token)
                for token in args.workers_sweep.split(",")
                if token.strip()
            ]
        except ValueError:
            raise SystemExit(
                f"error: --workers-sweep must be a comma-separated list of "
                f"thread counts, got {args.workers_sweep!r}"
            ) from None
        if not sweep or any(point < 1 for point in sweep):
            raise SystemExit(
                "error: --workers-sweep needs at least one positive thread count"
            )
    spawned = None
    host, port, server_pid = args.host, args.port, args.server_pid
    try:
        if args.spawn:
            extra_args: list[str] = []
            if args.read_pool_size is not None:
                extra_args += ["--read-pool-size", str(args.read_pool_size)]
            try:
                spawned = loadgen.spawn_tcp_server(
                    dataset=args.dataset,
                    backend=args.backend,
                    db_path=args.db_path,
                    shards=args.shards,
                    workers=args.tcp_workers,
                    http=args.http,
                    extra_args=extra_args,
                )
            except (RuntimeError, OSError) as exc:
                raise SystemExit(f"error: {exc}") from None
            host, server_pid = spawned.host, spawned.pid
            port = spawned.http_port if args.http else spawned.port
        elif port is None:
            raise SystemExit(
                "error: --port is required unless --spawn starts the server"
            )
        shared = dict(
            requests=args.requests,
            dataset=args.dataset,
            backend=args.backend,
            k=args.k,
            timeout=args.timeout,
            seed=args.seed,
            transport="http" if args.http else "tcp",
            label=args.label,
            server_pid=server_pid,
            output_dir=args.output_dir,
            read_pool_size=args.read_pool_size,
            workers=args.tcp_workers if args.spawn else None,
        )
        try:
            if sweep is not None:
                results = loadgen.run_workers_sweep(
                    host, port, sweep=sweep, **shared
                )
            else:
                results = [
                    loadgen.run_bench_load(
                        host,
                        port,
                        mode=args.mode,
                        connections=args.connections,
                        rate=args.rate,
                        **shared,
                    )
                ]
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
    finally:
        if spawned is not None:
            spawned.terminate()
    print(
        "\n\n".join(
            "\n".join(loadgen.summary_lines(record, path))
            for record, path in results
        )
    )
    answered = sum(record["outcomes"]["ok"] for record, _path in results)
    return 0 if answered else 1


def cmd_bench_serve(args: argparse.Namespace) -> int:
    """Synthetic concurrent workload: throughput + latency percentiles."""
    from repro.server import benchmark_serve

    try:
        report = benchmark_serve(
            args.dataset,
            backend=args.backend,
            db_path=args.db_path,
            shards=args.shards,
            clients=args.clients,
            queries_per_client=args.queries,
            k=args.k,
            seed=args.seed,
            engine_config=_engine_config(args),
            use_async=args.use_async,
        )
    except (ValueError, DatabaseError) as exc:
        raise SystemExit(f"error: {exc}") from None
    print("\n".join(report.lines()))
    return 0 if report.ok else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Print the planner-statistics catalog of one dataset's store.

    Shows per-relation row counts, per-attribute distinct-value counts and
    heaviest-value frequencies — the inputs of the cardinality estimator —
    plus whether a persistent store's ``_repro_stats_*`` side tables are
    fresh against the live content fingerprint.
    """
    from repro.datasets.imdb import build_imdb
    from repro.datasets.lyrics import build_lyrics
    from repro.experiments.reporting import format_table

    builders = {"imdb": build_imdb, "lyrics": build_lyrics}
    try:
        builder = builders[args.dataset]
    except KeyError:
        raise SystemExit(
            f"error: unknown dataset {args.dataset!r} "
            f"(use {' or '.join(sorted(builders))})"
        ) from None
    try:
        db = builder(backend=args.backend, db_path=args.db_path, shards=args.shards)
    except (ValueError, DatabaseError) as exc:
        raise SystemExit(f"error: {exc}") from None
    db.require_index()  # collects (or reloads) the statistics catalog
    catalog = db.statistics_catalog()
    fingerprint = db.content_fingerprint()
    print(f"dataset: {args.dataset} (backend {db.name})")
    print(f"content fingerprint: {fingerprint}")
    stored_fingerprint = getattr(db, "persisted_stats_fingerprint", lambda: None)()
    if stored_fingerprint is None:
        print("persisted statistics: none (collected in memory this open)")
    elif stored_fingerprint == fingerprint:
        print("persisted statistics: fresh (fingerprint matches)")
    else:
        print(
            "persisted statistics: stale "
            f"(stored under {stored_fingerprint}; will be recollected)"
        )
    print()
    print(
        format_table(
            ["table", "rows"],
            [[name, rows] for name, rows in catalog.iter_rows()],
        )
    )
    print()
    print(
        format_table(
            ["table", "attribute", "distinct", "max frequency"],
            [list(entry) for entry in catalog.iter_attributes()],
        )
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import ch3, ch4, ch5, ch6

    mains = {3: ch3.main, 4: ch4.main, 5: ch5.main, 6: ch6.main}
    if args.chapter not in mains:
        raise SystemExit("chapter must be 3, 4, 5 or 6")
    mains[args.chapter]()
    return 0


def _add_storage_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="memory",
        choices=available_backends(),
        help="storage engine for the dataset (default: memory)",
    )
    parser.add_argument(
        "--db-path",
        default=None,
        dest="db_path",
        help="file path for persistent backends; reused (no re-generation) "
        "when it already holds the dataset",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition count for sharding backends (sqlite-sharded); a "
        "reopened store must be given its original shard count",
    )
    parser.add_argument(
        "--read-pool-size",
        type=int,
        default=None,
        dest="read_pool_size",
        help="reader connections a file-backed SQLite store may lease for "
        "concurrent read-only queries (default: backend default, 4 per "
        "store / 1 per shard; 1 disables the pool and restores the single "
        "shared connection); rows are identical either way",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        dest="cache_size",
        help="capacity (entries) of the process-level result-cache LRU "
        "(default: 4096)",
    )
    parser.add_argument(
        "--semantic-cache",
        action="store_true",
        dest="semantic_cache",
        help="answer near-miss variants of cached queries by plan "
        "subsumption (filter/truncate cached rows in Python, zero backend "
        "statements); rows are identical to uncached execution",
    )
    parser.add_argument(
        "--warm-workload",
        type=int,
        default=0,
        dest="warm_workload",
        metavar="N",
        help="replay the N hottest recorded-workload queries through the "
        "engine on open (coldest first, clamped to the cache capacity)",
    )
    parser.add_argument(
        "--no-cost-planning",
        action="store_false",
        dest="cost_planning",
        help="disable cost-model-driven physical planning (scatter-position "
        "choice, join reordering, batch eviction order, first-batch sizing) "
        "and restore the raw-row-count planner; rows are identical either way",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_search = sub.add_parser(
        "search",
        aliases=["query"],
        help="rank interpretations and fetch top-k results",
    )
    p_search.add_argument("query")
    p_search.add_argument("--dataset", default="imdb")
    p_search.add_argument("--k", type=int, default=5)
    p_search.add_argument(
        "--explain",
        action="store_true",
        help="print rendered SQL, per-stage timings and cache hit/miss counters",
    )
    _add_storage_options(p_search)
    p_search.set_defaults(func=cmd_search)

    p_construct = sub.add_parser("construct", help="run an IQP construction dialogue")
    p_construct.add_argument("query")
    p_construct.add_argument("--dataset", default="imdb")
    p_construct.add_argument("--answers", nargs="*", default=None, help="scripted y/n answers")
    p_construct.add_argument("--stop-size", type=int, default=5, dest="stop_size")
    p_construct.add_argument("--max-steps", type=int, default=100, dest="max_steps")
    _add_storage_options(p_construct)
    p_construct.set_defaults(func=cmd_construct)

    p_div = sub.add_parser("diversify", help="diversified interpretation ranking")
    p_div.add_argument("query")
    p_div.add_argument("--dataset", default="imdb")
    p_div.add_argument("--k", type=int, default=5)
    p_div.add_argument("--tradeoff", type=float, default=0.5)
    _add_storage_options(p_div)
    p_div.set_defaults(func=cmd_diversify)

    p_serve = sub.add_parser(
        "serve",
        help="serve keyword queries from stdin over a concurrent engine pool",
    )
    p_serve.add_argument("--dataset", default="imdb")
    p_serve.add_argument("--k", type=int, default=5)
    p_serve.add_argument(
        "--workers", type=int, default=8, help="worker threads in the serving pool"
    )
    p_serve.add_argument(
        "--async",
        action="store_true",
        dest="use_async",
        help="run the line-protocol front end on an asyncio event loop "
        "(same engine pool; slow clients pin no worker threads)",
    )
    p_serve.add_argument(
        "--tcp",
        action="store_true",
        help="listen on TCP (newline-delimited JSON requests) instead of "
        "reading queries from stdin",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default: 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port; 0 picks an ephemeral port, printed as "
        "'listening on <host>:<port>' (default: 0)",
    )
    p_serve.add_argument(
        "--http",
        action="store_true",
        help="also serve the HTTP/1.1 front end (POST /query, GET /healthz, "
        "GET /stats; see docs/http_api.md) over the same admission layer",
    )
    p_serve.add_argument(
        "--http-port",
        type=int,
        default=0,
        dest="http_port",
        help="HTTP port (with --http); 0 picks an ephemeral port, printed "
        "as 'http listening on <host>:<port>' (default: 0)",
    )
    p_serve.add_argument(
        "--tcp-workers",
        type=int,
        default=1,
        dest="tcp_workers",
        help="serving processes forked over one listening socket "
        "(each with its own engine pool; default: 1)",
    )
    p_serve.add_argument(
        "--max-connections",
        type=int,
        default=64,
        dest="max_connections",
        help="concurrent TCP connections before new ones are rejected "
        "with 'too-many-connections' (default: 64)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        dest="queue_limit",
        help="in-flight requests admitted per process before requests are "
        "rejected with 'overloaded' (default: 32)",
    )
    p_serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        dest="request_timeout",
        help="seconds before an in-flight request answers a 'timeout' "
        "error (default: 30)",
    )
    _add_storage_options(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_bench_load = sub.add_parser(
        "bench-load",
        help="drive a live 'serve --tcp' server with open- or closed-loop "
        "asyncio clients; persist latency percentiles and server CPU/RSS "
        "as a schema-versioned BENCH_serve_*.json record",
    )
    p_bench_load.add_argument("--dataset", default="imdb")
    p_bench_load.add_argument("--k", type=int, default=5)
    p_bench_load.add_argument(
        "--host", default="127.0.0.1", help="server address (default: 127.0.0.1)"
    )
    p_bench_load.add_argument(
        "--port",
        type=int,
        default=None,
        help="server port (required unless --spawn starts one)",
    )
    p_bench_load.add_argument(
        "--spawn",
        action="store_true",
        help="start a 'serve --tcp' subprocess on an ephemeral port for the "
        "run (terminated with SIGTERM afterwards) instead of targeting a "
        "running server",
    )
    p_bench_load.add_argument(
        "--http",
        action="store_true",
        help="drive the HTTP/1.1 front end (keep-alive POST /query) instead "
        "of the newline-JSON protocol; with --spawn the server is started "
        "with --http, without it --port must be the HTTP port",
    )
    p_bench_load.add_argument(
        "--tcp-workers",
        type=int,
        default=1,
        dest="tcp_workers",
        help="serving processes of the spawned server (with --spawn; default: 1)",
    )
    p_bench_load.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed: N connections issue requests back-to-back; open: "
        "requests depart on a fixed schedule regardless of completions "
        "(default: closed)",
    )
    p_bench_load.add_argument(
        "--connections",
        type=int,
        default=8,
        help="concurrent client connections in closed-loop mode (default: 8)",
    )
    p_bench_load.add_argument(
        "--requests", type=int, default=200, help="total requests (default: 200)"
    )
    p_bench_load.add_argument(
        "--workers-sweep",
        default=None,
        dest="workers_sweep",
        metavar="N,N,...",
        help="closed-loop read-scaling sweep: run once per client-thread "
        "count (e.g. 1,2,4,8) against one store, persisting a record per "
        "point labelled <label>-w<N> so --diff pins every point of the "
        "scaling curve; --requests applies per point",
    )
    p_bench_load.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="request departures per second in open-loop mode (default: 50)",
    )
    p_bench_load.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="client-side per-request timeout in seconds (default: 30)",
    )
    p_bench_load.add_argument(
        "--seed", type=int, default=13, help="query sampling seed (default: 13)"
    )
    p_bench_load.add_argument(
        "--label",
        default=None,
        help="record label, slugged into BENCH_serve_<label>.json "
        "(default: <mode>-<backend>-<dataset>)",
    )
    p_bench_load.add_argument(
        "--output-dir",
        default=".",
        dest="output_dir",
        help="directory the record file is written to (default: .)",
    )
    p_bench_load.add_argument(
        "--server-pid",
        type=int,
        default=None,
        dest="server_pid",
        help="pid to sample CPU/RSS from when targeting an already-running "
        "server (--spawn knows its own)",
    )
    _add_storage_options(p_bench_load)
    p_bench_load.set_defaults(func=cmd_bench_load)

    p_bench_serve = sub.add_parser(
        "bench-serve",
        help="drive a synthetic concurrent workload; report throughput and "
        "p50/p95 latency, verifying every result against sequential execution",
    )
    p_bench_serve.add_argument("--dataset", default="imdb")
    p_bench_serve.add_argument("--k", type=int, default=5)
    p_bench_serve.add_argument(
        "--clients", type=int, default=8, help="concurrent client threads"
    )
    p_bench_serve.add_argument(
        "--queries", type=int, default=25, help="queries each client issues"
    )
    p_bench_serve.add_argument(
        "--seed", type=int, default=13, help="workload sampling seed"
    )
    p_bench_serve.add_argument(
        "--async",
        action="store_true",
        dest="use_async",
        help="drive the workload with asyncio client tasks instead of "
        "client threads (same seeds, same queries, same verification)",
    )
    _add_storage_options(p_bench_serve)
    p_bench_serve.set_defaults(func=cmd_bench_serve)

    p_stats = sub.add_parser(
        "stats",
        help="print the planner-statistics catalog (per-relation rows, "
        "per-attribute cardinalities, persisted-stats staleness)",
    )
    p_stats.add_argument("--dataset", default="imdb")
    _add_storage_options(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_report = sub.add_parser("report", help="print a chapter's reproduced tables/figures")
    p_report.add_argument("--chapter", type=int, required=True)
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
