"""Command-line interface.

Exposes the library's main flows on the bundled synthetic datasets:

    python -m repro.cli search    --dataset imdb "hanks 2001"
    python -m repro.cli search    --dataset imdb --explain "hanks 2001"
    python -m repro.cli search    --dataset imdb --backend sqlite --db-path imdb.sqlite "hanks 2001"
    python -m repro.cli construct --dataset imdb "hanks 2001" --answers y n y
    python -m repro.cli diversify --dataset lyrics "london" --k 5
    python -m repro.cli report    --chapter 3

Every query flow routes through one :class:`repro.engine.QueryEngine`
(segment → generate → rank → execute); ``query`` is an alias of ``search``.
``--explain`` prints the rendered SQL of the top interpretations, per-stage
timings and the result-cache hit/miss counters from the engine context.
``construct`` runs the IQP dialogue: with ``--answers`` the given y/n
sequence answers the options (cycling); without it the session is driven
interactively from stdin.  ``--backend``/``--db-path`` select the storage
engine (see ``docs/cli.md``); a persistent SQLite file is reused on
subsequent runs — including its persisted index postings and cached
interpretation results — instead of re-generating the dataset.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.core.hierarchy import QueryHierarchy
from repro.core.keywords import KeywordQuery
from repro.core.snippets import make_snippet
from repro.db.backends import available_backends
from repro.db.errors import DatabaseError
from repro.divq.diversify import diversify
from repro.engine import QueryEngine
from repro.iqp.infogain import information_gain


def _engine(args: argparse.Namespace) -> QueryEngine:
    """The one pipeline entry point every query subcommand uses."""
    try:
        return QueryEngine.for_dataset(
            args.dataset, backend=args.backend, db_path=args.db_path
        )
    except ValueError as exc:  # unknown dataset / --db-path misuse
        raise SystemExit(f"error: {exc}") from None
    except DatabaseError as exc:  # unreadable/mismatched --db-path file
        raise SystemExit(f"error: {exc}") from None


def cmd_search(args: argparse.Namespace) -> int:
    engine = _engine(args)
    context = engine.run(args.query, k=args.k, explain=args.explain)
    if not context.ranked:
        print("no interpretations found")
        return 1
    ranked = context.ranked
    print(f"{len(ranked)} interpretations; top {min(args.k, len(ranked))}:")
    for i, (interp, p) in enumerate(ranked[: args.k], start=1):
        print(f"  {i}. P={p:.3f}  {interp.to_structured_query().algebra()}")
    executed = context.executor_statistics.interpretations_executed
    print(f"\ntop-{args.k} results ({executed} interpretations executed):")
    for r in context.results:
        print(f"  [{r.score:.3f}] {make_snippet(context.query, r.row).text}")
    if args.explain:
        print()
        print("\n".join(context.explain_lines()))
    return 0


@dataclass
class _ScriptedUser:
    """Answers construction options from a y/n script (cycling)."""

    answers: list[str]
    position: int = 0
    evaluations: int = 0
    log: list[tuple[str, bool]] = field(default_factory=list)

    def decide(self, description: str) -> bool:
        answer = self.answers[self.position % len(self.answers)]
        self.position += 1
        self.evaluations += 1
        accepted = answer.lower().startswith("y")
        self.log.append((description, accepted))
        return accepted


def cmd_construct(args: argparse.Namespace) -> int:
    engine = _engine(args)
    query = KeywordQuery.parse(args.query)
    hierarchy = QueryHierarchy(query, engine.generator, engine.model)
    scripted = _ScriptedUser(args.answers) if args.answers else None
    steps = 0
    while steps < args.max_steps:
        steps += 1
        while hierarchy.can_expand() and len(hierarchy) < 20:
            hierarchy.expand_once()
        if hierarchy.at_complete_level() and len(hierarchy) <= args.stop_size:
            break
        weights = [n.weight for n in hierarchy.frontier]
        best, best_gain = None, 0.0
        for option in hierarchy.frontier_atoms():
            pattern = [option.matches(n.atoms) for n in hierarchy.frontier]
            if all(pattern) or not any(pattern):
                continue
            gain = information_gain(weights, pattern)
            if gain > best_gain:
                best, best_gain = option, gain
        if best is None:
            if hierarchy.can_expand():
                hierarchy.expand_once()
                continue
            break
        prompt = f"{best.describe()}? [y/n] "
        if scripted is not None:
            accepted = scripted.decide(best.describe())
            print(prompt + ("y" if accepted else "n"))
        else:  # pragma: no cover - interactive path
            reply = input(prompt).strip().lower()
            accepted = reply.startswith("y")
        if accepted:
            hierarchy.accept(best)
        else:
            hierarchy.reject(best)
        if not hierarchy.frontier:
            print("no interpretation consistent with the answers")
            return 1
    hierarchy.expand_to_complete()
    candidates = hierarchy.complete_interpretations()
    print(f"\n{len(candidates)} candidate interpretation(s):")
    for i, interp in enumerate(candidates[:5], start=1):
        print(f"  {i}. {interp.to_structured_query().algebra()}")
    return 0


def cmd_diversify(args: argparse.Namespace) -> int:
    engine = _engine(args)
    ranked = engine.rank(args.query)[:25]
    if not ranked:
        print("no interpretations found")
        return 1
    result = diversify(ranked, k=args.k, tradeoff=args.tradeoff)
    print(f"top-{args.k} diversified interpretations (lambda={args.tradeoff}):")
    for i, interp in enumerate(result.selected, start=1):
        print(f"  {i}. {interp.to_structured_query().algebra()}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import ch3, ch4, ch5, ch6

    mains = {3: ch3.main, 4: ch4.main, 5: ch5.main, 6: ch6.main}
    if args.chapter not in mains:
        raise SystemExit("chapter must be 3, 4, 5 or 6")
    mains[args.chapter]()
    return 0


def _add_storage_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="memory",
        choices=available_backends(),
        help="storage engine for the dataset (default: memory)",
    )
    parser.add_argument(
        "--db-path",
        default=None,
        dest="db_path",
        help="file path for persistent backends; reused (no re-generation) "
        "when it already holds the dataset",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_search = sub.add_parser(
        "search",
        aliases=["query"],
        help="rank interpretations and fetch top-k results",
    )
    p_search.add_argument("query")
    p_search.add_argument("--dataset", default="imdb")
    p_search.add_argument("--k", type=int, default=5)
    p_search.add_argument(
        "--explain",
        action="store_true",
        help="print rendered SQL, per-stage timings and cache hit/miss counters",
    )
    _add_storage_options(p_search)
    p_search.set_defaults(func=cmd_search)

    p_construct = sub.add_parser("construct", help="run an IQP construction dialogue")
    p_construct.add_argument("query")
    p_construct.add_argument("--dataset", default="imdb")
    p_construct.add_argument("--answers", nargs="*", default=None, help="scripted y/n answers")
    p_construct.add_argument("--stop-size", type=int, default=5, dest="stop_size")
    p_construct.add_argument("--max-steps", type=int, default=100, dest="max_steps")
    _add_storage_options(p_construct)
    p_construct.set_defaults(func=cmd_construct)

    p_div = sub.add_parser("diversify", help="diversified interpretation ranking")
    p_div.add_argument("query")
    p_div.add_argument("--dataset", default="imdb")
    p_div.add_argument("--k", type=int, default=5)
    p_div.add_argument("--tradeoff", type=float, default=0.5)
    _add_storage_options(p_div)
    p_div.set_defaults(func=cmd_diversify)

    p_report = sub.add_parser("report", help="print a chapter's reproduced tables/figures")
    p_report.add_argument("--chapter", type=int, required=True)
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
