"""Core keyword-query disambiguation framework (Chapters 2–3).

This package implements the shared machinery of all systems in the thesis:
keyword queries, structured queries (relational-algebra join paths with
``contains`` predicates), query templates, keyword/query interpretations with
sub-query subsumption, the interpretation-space generator and query hierarchy,
the probabilistic interpretation model (ATF, template priors) and
DISCOVER-style candidate-network enumeration.
"""

from repro.core.autocomplete import AutoCompleter, Completion
from repro.core.candidate_network import CandidateNetwork, enumerate_candidate_networks
from repro.core.cleaning import Correction, QueryCleaner, edit_distance
from repro.core.generator import GeneratorConfig, InterpretationGenerator
from repro.core.hierarchy import QueryHierarchy
from repro.core.interpretation import (
    Atom,
    Interpretation,
    OperatorAtom,
    TableAtom,
    ValueAtom,
    atoms_subsume,
)
from repro.core.keywords import Keyword, KeywordQuery
from repro.core.labeled import Label, LabeledGenerator, LabeledQuery, parse_labeled
from repro.core.options import AtomSetOption, ConceptOption, Option
from repro.core.probability import (
    ATFModel,
    DivQModel,
    ProbabilityModel,
    TFIDFModel,
    TemplateCatalog,
    UniformModel,
)
from repro.core.query import StructuredQuery
from repro.core.result_ranking import MonotoneResultScorer, SparkResultScorer
from repro.core.segmentation import QuerySegmenter, Segmentation
from repro.core.snippets import cluster_results, make_snippet
from repro.core.templates import QueryTemplate, generate_templates
from repro.core.topk import TopKExecutor

__all__ = [
    "ATFModel",
    "Atom",
    "AtomSetOption",
    "AutoCompleter",
    "Completion",
    "ConceptOption",
    "Correction",
    "Label",
    "LabeledGenerator",
    "LabeledQuery",
    "MonotoneResultScorer",
    "OperatorAtom",
    "Option",
    "QueryCleaner",
    "QuerySegmenter",
    "Segmentation",
    "SparkResultScorer",
    "TFIDFModel",
    "TopKExecutor",
    "cluster_results",
    "edit_distance",
    "make_snippet",
    "parse_labeled",
    "CandidateNetwork",
    "DivQModel",
    "GeneratorConfig",
    "Interpretation",
    "InterpretationGenerator",
    "Keyword",
    "KeywordQuery",
    "ProbabilityModel",
    "QueryHierarchy",
    "QueryTemplate",
    "StructuredQuery",
    "TableAtom",
    "TemplateCatalog",
    "UniformModel",
    "ValueAtom",
    "atoms_subsume",
    "enumerate_candidate_networks",
    "generate_templates",
]
