"""Query auto-completion (Section 2.1).

Auto-completion guides the user's typing toward terms that actually exist in
the database: given a prefix, suggest in-vocabulary terms ranked by corpus
frequency.  Following the error-tolerant refinement the thesis cites (CK09),
a prefix with no exact extensions falls back to fuzzy matching — terms whose
prefix is within a small edit distance of the typed one — so misspelled
prefixes still lead somewhere.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.cleaning import edit_distance
from repro.db.index import InvertedIndex


@dataclass(frozen=True)
class Completion:
    """One suggestion: the completed term and its evidence."""

    term: str
    frequency: int  # total occurrences in the database
    fuzzy: bool = False  # True when reached via error-tolerant matching


class AutoCompleter:
    """Prefix completion over the inverted index vocabulary."""

    def __init__(self, index: InvertedIndex, max_suggestions: int = 8, max_edit: int = 1):
        self.index = index
        self.max_suggestions = max_suggestions
        self.max_edit = max_edit
        self._vocabulary = index.vocabulary()  # sorted

    def _frequency(self, term: str) -> int:
        total = 0
        for table, attribute in self.index.attributes_containing(term):
            posting = self.index.posting(term, table, attribute)
            if posting is not None:
                total += posting.occurrences
        return total

    def _exact(self, prefix: str) -> list[str]:
        lo = bisect.bisect_left(self._vocabulary, prefix)
        out: list[str] = []
        for term in self._vocabulary[lo:]:
            if not term.startswith(prefix):
                break
            out.append(term)
        return out

    def _fuzzy(self, prefix: str) -> list[str]:
        """Terms whose same-length prefix is within ``max_edit`` edits."""
        out: list[str] = []
        for term in self._vocabulary:
            head = term[: len(prefix) + self.max_edit]
            if edit_distance(prefix, head[: len(prefix)], cap=self.max_edit) <= self.max_edit:
                out.append(term)
        return out

    def complete(self, prefix: str) -> list[Completion]:
        """Suggestions for ``prefix``, most frequent first.

        Exact prefix extensions win; when none exist, error-tolerant matches
        are offered (flagged ``fuzzy=True``).
        """
        prefix = prefix.lower().strip()
        if not prefix:
            return []
        exact = self._exact(prefix)
        fuzzy = False
        candidates = exact
        if not candidates:
            candidates = [t for t in self._fuzzy(prefix) if t != prefix]
            fuzzy = True
        suggestions = [
            Completion(term=t, frequency=self._frequency(t), fuzzy=fuzzy)
            for t in candidates
        ]
        suggestions.sort(key=lambda c: (-c.frequency, c.term))
        return suggestions[: self.max_suggestions]
