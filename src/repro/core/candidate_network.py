"""Candidate-network enumeration (Section 2.2.3, DISCOVER-style).

A candidate network (CN) is a join tree of *non-free* tables — tables
containing at least one query keyword — connected by foreign keys, satisfying
completeness (all keywords covered) and minimality (no empty leaves).  We
enumerate CNs by breadth-first search over the schema graph, as DISCOVER and
DBXplorer do for small and medium schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from itertools import product

from repro.core.keywords import KeywordQuery
from repro.core.templates import QueryTemplate
from repro.db.backends.base import StorageBackend


@dataclass(frozen=True)
class CandidateNetwork:
    """One CN: a join path plus, per keyword, the slot covering it."""

    template: QueryTemplate
    #: keyword term -> template slot providing the keyword.
    coverage: tuple[tuple[str, int], ...]

    @cached_property
    def covered_terms(self) -> frozenset[str]:
        return frozenset(term for term, _slot in self.coverage)

    @property
    def size(self) -> int:
        return self.template.size

    def __str__(self) -> str:
        parts = []
        slots_by_term = dict(self.coverage)
        for slot, table in enumerate(self.template.path):
            terms = sorted(t for t, s in self.coverage if s == slot)
            if terms:
                parts.append(f"{table}:{'+'.join(terms)}")
            else:
                parts.append(table)
        return " |x| ".join(parts)


def enumerate_candidate_networks(
    database: StorageBackend,
    query: KeywordQuery,
    max_joins: int = 3,
    max_networks: int = 10_000,
) -> list[CandidateNetwork]:
    """All valid CNs for ``query``, smallest (fewest joins) first.

    Validity: every keyword with at least one occurrence is covered
    (completeness), and each endpoint of the join path is non-free
    (minimality — otherwise the path could be shortened).
    """
    index = database.require_index()
    term_tables: dict[str, set[str]] = {}
    for keyword in query.keywords:
        tables = index.tables_containing(keyword.term)
        tables |= index.tables_matching_schema_term(keyword.term)
        if tables:
            term_tables[keyword.term] = tables
    if not term_tables:
        return []
    terms = sorted(term_tables)

    networks: list[CandidateNetwork] = []
    seen: set[tuple[str, tuple[tuple[str, int], ...]]] = set()
    for path in database.schema.join_paths(max_joins):
        path_tables = set(path)
        if any(not (term_tables[t] & path_tables) for t in terms):
            continue
        slot_options: list[list[int]] = []
        for term in terms:
            slots = [i for i, table in enumerate(path) if table in term_tables[term]]
            slot_options.append(slots)
        endpoints = {0, len(path) - 1} if len(path) > 1 else {0}
        for combo in product(*slot_options):
            occupied = set(combo)
            if not endpoints <= occupied:
                continue  # minimality: an empty leaf could be trimmed
            coverage = tuple(zip(terms, combo))
            edge_sets = [
                database.schema.join_edges(left, right)
                for left, right in zip(path, path[1:])
            ]
            if any(not es for es in edge_sets):
                continue
            edges = tuple(es[0] for es in edge_sets)
            template = QueryTemplate(path=tuple(path), edges=edges)
            key = (template.identifier, coverage)
            if key in seen:
                continue
            seen.add(key)
            networks.append(CandidateNetwork(template=template, coverage=coverage))
            if len(networks) >= max_networks:
                networks.sort(key=lambda cn: (cn.size, str(cn)))
                return networks
    networks.sort(key=lambda cn: (cn.size, str(cn)))
    return networks
