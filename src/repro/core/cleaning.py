"""Keyword-query cleaning (the pre-processing step of Section 2.2).

Misspelled keywords have no occurrence in the database and would simply be
excluded from query construction (Section 3.5.2).  Query cleaning instead
repairs them against the index vocabulary: for each out-of-vocabulary
keyword, propose the in-vocabulary terms within a small edit distance,
ranked by corpus frequency — the CK09-style relaxation the thesis cites for
auto-completion without correctly spelled prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.keywords import Keyword, KeywordQuery
from repro.db.index import InvertedIndex


def edit_distance(a: str, b: str, cap: int = 3) -> int:
    """Levenshtein distance with an early-exit cap (banded DP)."""
    if a == b:
        return 0
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        row_min = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            value = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            current.append(value)
            row_min = min(row_min, value)
        if row_min > cap:
            return cap + 1
        previous = current
    return previous[-1]


@dataclass(frozen=True)
class Correction:
    """One proposed repair of one keyword occurrence."""

    keyword: Keyword
    replacement: str
    distance: int
    frequency: int  # total occurrences of the replacement in the database


class QueryCleaner:
    """Repairs out-of-vocabulary keywords against the inverted index."""

    def __init__(self, index: InvertedIndex, max_distance: int = 2, max_candidates: int = 5):
        self.index = index
        self.max_distance = max_distance
        self.max_candidates = max_candidates
        self._vocabulary = index.vocabulary()

    def _frequency(self, term: str) -> int:
        total = 0
        for table, attribute in self.index.attributes_containing(term):
            posting = self.index.posting(term, table, attribute)
            if posting is not None:
                total += posting.occurrences
        return total

    def suggestions(self, keyword: Keyword) -> list[Correction]:
        """Candidate repairs, nearest first, frequency as the tie-breaker."""
        if self.index.attributes_containing(keyword.term):
            return []  # in vocabulary: nothing to repair
        candidates: list[Correction] = []
        for term in self._vocabulary:
            distance = edit_distance(keyword.term, term, cap=self.max_distance)
            if distance <= self.max_distance:
                candidates.append(
                    Correction(
                        keyword=keyword,
                        replacement=term,
                        distance=distance,
                        frequency=self._frequency(term),
                    )
                )
        candidates.sort(key=lambda c: (c.distance, -c.frequency, c.replacement))
        return candidates[: self.max_candidates]

    def clean(self, query: KeywordQuery) -> tuple[KeywordQuery, list[Correction]]:
        """Repair every out-of-vocabulary keyword with its best suggestion.

        Returns the cleaned query plus the corrections applied.  Keywords
        with no viable repair are kept as-is (the generator will exclude
        them, as the thesis prescribes).
        """
        applied: list[Correction] = []
        terms: list[str] = []
        for keyword in query.keywords:
            repairs = self.suggestions(keyword)
            if repairs:
                applied.append(repairs[0])
                terms.append(repairs[0].replacement)
            else:
                terms.append(keyword.term)
        if not applied:
            return query, []
        return KeywordQuery.from_terms(terms), applied
