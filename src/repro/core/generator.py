"""Interpretation-space generation (Section 3.5.2).

Given a keyword query, the generator finds the candidate interpretations of
each keyword from the inverted index (value matches) and the schema (table
name matches), then combines them with pre-computed query templates into
complete query interpretations — the interpretation space (Def. 3.5.5).

The space grows polynomially with the schema and exponentially with the query
length, so every enumeration is capped and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.interpretation import (
    Atom,
    Interpretation,
    OperatorAtom,
    TableAtom,
    ValueAtom,
)
from repro.core.keywords import Keyword, KeywordQuery
from repro.core.templates import QueryTemplate, generate_templates
from repro.db.backends.base import StorageBackend

#: Default operator vocabulary: keyword term -> aggregation operator
#: (the analytical-query class of §2.2.7; K4's "number of movies ...").
DEFAULT_OPERATOR_TERMS: tuple[tuple[str, str], ...] = (
    ("count", "count"),
    ("number", "count"),
    ("total", "count"),
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs bounding the enumerated interpretation space."""

    #: Maximum keyword interpretations considered per keyword occurrence.
    max_atoms_per_keyword: int = 16
    #: Hard cap on the number of complete interpretations enumerated.
    max_interpretations: int = 20_000
    #: Whether keywords may be interpreted as table names (metadata matches).
    include_table_atoms: bool = True
    #: Drop interpretations with empty results (DivQ, Section 4.4.2).
    require_nonempty: bool = False
    #: Aggregation-operator vocabulary ((term, operator) pairs); empty
    #: disables analytical interpretations.
    operator_terms: tuple[tuple[str, str], ...] = DEFAULT_OPERATOR_TERMS


@dataclass
class _PartialAssignment:
    """Backtracking state: atoms placed so far, keyed insertion order."""

    items: list[tuple[Atom, int]] = field(default_factory=list)

    def occupied_slots(self) -> set[int]:
        return {slot for _atom, slot in self.items}


class InterpretationGenerator:
    """Combines keyword interpretations and templates into structured queries."""

    def __init__(
        self,
        database: StorageBackend,
        templates: Sequence[QueryTemplate] | None = None,
        config: GeneratorConfig = GeneratorConfig(),
        max_template_joins: int = 3,
    ):
        self.database = database
        self.config = config
        self.templates: list[QueryTemplate] = (
            list(templates)
            if templates is not None
            else generate_templates(database.schema, max_joins=max_template_joins)
        )
        self._index = database.require_index()

    # -- keyword-level interpretation ---------------------------------------

    def keyword_atoms(self, keyword: Keyword) -> list[Atom]:
        """All candidate interpretations of one keyword occurrence.

        Value atoms come from the inverted index; table atoms from schema-term
        matches.  Capped at ``max_atoms_per_keyword``, most frequent value
        matches first (so the cap keeps the plausible candidates).
        """
        atoms: list[Atom] = []
        refs = self._index.attributes_containing(keyword.term)
        refs = sorted(
            refs,
            key=lambda ref: (-self._index.tf(keyword.term, ref[0], ref[1]), ref),
        )
        for table, attribute in refs:
            atoms.append(ValueAtom(keyword=keyword, table=table, attribute=attribute))
        if self.config.include_table_atoms:
            for table in sorted(self._index.tables_matching_schema_term(keyword.term)):
                atoms.append(TableAtom(keyword=keyword, table=table))
        operator = dict(self.config.operator_terms).get(keyword.term)
        if operator is not None:
            for table in self.database.schema.table_names:
                atoms.append(
                    OperatorAtom(keyword=keyword, operator=operator, table=table)
                )
        return atoms[: self.config.max_atoms_per_keyword]

    def effective_keywords(self, query: KeywordQuery) -> list[Keyword]:
        """Keywords that have at least one interpretation in the database.

        Keywords that are misspelled or absent are excluded from query
        construction (Section 3.5.2).
        """
        return [k for k in query.keywords if self.keyword_atoms(k)]

    def atom_map(self, query: KeywordQuery) -> dict[Keyword, list[Atom]]:
        return {k: self.keyword_atoms(k) for k in self.effective_keywords(query)}

    # -- space enumeration ----------------------------------------------------

    def enumerate(self, query: KeywordQuery) -> Iterator[Interpretation]:
        """Yield complete (w.r.t. effective keywords) valid interpretations."""
        atom_map = self.atom_map(query)
        keywords = list(atom_map)
        if not keywords:
            return
        produced = 0
        effective_query = KeywordQuery(
            keywords=tuple(keywords), text=str(query)
        )
        for template in self.templates:
            for assignment in self._assignments(template, keywords, atom_map):
                interp = Interpretation.build(effective_query, template, assignment)
                try:
                    interp.validate()
                except ValueError:
                    continue
                if self.config.require_nonempty and not interp.to_structured_query().has_results(
                    self.database
                ):
                    continue
                yield interp
                produced += 1
                if produced >= self.config.max_interpretations:
                    return

    def interpretations(self, query: KeywordQuery) -> list[Interpretation]:
        """The (capped) interpretation space of ``query`` (Def. 3.5.5)."""
        return list(self.enumerate(query))

    # -- internals -------------------------------------------------------------

    def _assignments(
        self,
        template: QueryTemplate,
        keywords: list[Keyword],
        atom_map: dict[Keyword, list[Atom]],
    ) -> Iterator[list[tuple[Atom, int]]]:
        """Backtrack over keyword placements in one template."""

        def placements(keyword: Keyword) -> list[tuple[Atom, int]]:
            out: list[tuple[Atom, int]] = []
            for atom in atom_map[keyword]:
                for slot in template.positions_of(atom.table):
                    out.append((atom, slot))
            return out

        per_keyword = [placements(k) for k in keywords]
        if any(not p for p in per_keyword):
            return

        state = _PartialAssignment()

        def backtrack(depth: int) -> Iterator[list[tuple[Atom, int]]]:
            if depth == len(keywords):
                yield list(state.items)
                return
            for atom, slot in per_keyword[depth]:
                state.items.append((atom, slot))
                yield from backtrack(depth + 1)
                state.items.pop()

        yield from backtrack(0)

    def space_size(self, query: KeywordQuery) -> int:
        """Size of the (capped) interpretation space."""
        return sum(1 for _ in self.enumerate(query))
