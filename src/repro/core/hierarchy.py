"""The query hierarchy (Section 3.5.3, Fig. 3.2) with incremental expansion.

The hierarchy connects partial and complete interpretations of a keyword
query by sub-query subsumption.  IQP never materializes the whole space:
starting from bare templates (level 0), each expansion binds the next keyword
occurrence, producing the next level; the *top level* is the current frontier
the greedy construction algorithm works on (Alg. 3.2).  Accepting/rejecting a
query construction option prunes the frontier, so only a fraction of the
space proportional to the interaction cost is ever generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.generator import InterpretationGenerator
from repro.core.interpretation import Atom, Interpretation, atom_sort_key
from repro.core.keywords import Keyword, KeywordQuery
from repro.core.options import AtomSetOption, Option
from repro.core.probability import ProbabilityModel, normalize
from repro.core.templates import QueryTemplate


@dataclass(frozen=True)
class PartialNode:
    """A node of the hierarchy: a template with the first ``level`` keywords bound."""

    template: QueryTemplate
    assignment: tuple[tuple[Atom, int], ...]
    weight: float

    @cached_property
    def atoms(self) -> frozenset[Atom]:
        return frozenset(atom for atom, _slot in self.assignment)

    def subsumed_by(self, option_atoms: frozenset[Atom]) -> bool:
        """True iff the option is a sub-query of this node."""
        return option_atoms <= self.atoms


class QueryHierarchy:
    """Incrementally materialized interpretation space of one keyword query."""

    def __init__(
        self,
        query: KeywordQuery,
        generator: InterpretationGenerator,
        model: ProbabilityModel,
        max_frontier: int = 10_000,
    ):
        self.query = query
        self.generator = generator
        self.model = model
        self.max_frontier = max_frontier
        self.keywords: list[Keyword] = generator.effective_keywords(query)
        self._atom_map = {k: generator.keyword_atoms(k) for k in self.keywords}
        self.level = 0
        #: Count of nodes ever generated — the scalability measure of §3.8.5.
        self.generated_nodes = 0
        self.frontier: list[PartialNode] = [
            PartialNode(template=t, assignment=(), weight=model.template_prior(t))
            for t in generator.templates
        ]
        self.generated_nodes += len(self.frontier)

    # -- expansion ---------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of keyword levels in the full hierarchy."""
        return len(self.keywords)

    def can_expand(self) -> bool:
        return self.level < self.depth and bool(self.frontier)

    def at_complete_level(self) -> bool:
        return self.level >= self.depth

    def expand_once(self) -> int:
        """Bind the next keyword on every frontier node; returns #children."""
        if not self.can_expand():
            return 0
        keyword = self.keywords[self.level]
        children: list[PartialNode] = []
        for node in self.frontier:
            for atom in self._atom_map[keyword]:
                for slot in node.template.positions_of(atom.table):
                    weight = node.weight * self.model.atom_weight(atom, node.template)
                    children.append(
                        PartialNode(
                            template=node.template,
                            assignment=node.assignment + ((atom, slot),),
                            weight=weight,
                        )
                    )
        self.level += 1
        if self.level == self.depth:
            children = [c for c in children if self._is_minimal(c)]
        if len(children) > self.max_frontier:
            children.sort(key=lambda n: -n.weight)
            children = children[: self.max_frontier]
        self.generated_nodes += len(children)
        self.frontier = children
        return len(children)

    def expand_to_complete(self) -> None:
        while self.can_expand():
            self.expand_once()

    @staticmethod
    def _is_minimal(node: PartialNode) -> bool:
        """Minimality condition of Def. 3.5.4(2): endpoints must be occupied."""
        occupied = {slot for _atom, slot in node.assignment}
        return all(leaf in occupied for leaf in node.template.leaf_positions())

    # -- option handling ------------------------------------------------------

    def frontier_atoms(self) -> list[Option]:
        """Candidate query construction options: the atoms of frontier nodes.

        Each atom is one partial interpretation ("'hanks' is an actor name");
        these are the options the greedy algorithm scores by information gain.
        """
        seen: set[Atom] = set()
        for node in self.frontier:
            seen.update(node.atoms)
        return [
            AtomSetOption(frozenset([atom]))
            for atom in sorted(seen, key=atom_sort_key)
        ]

    def accept(self, option: Option) -> int:
        """Keep only frontier nodes the accepted option subsumes."""
        self.frontier = [n for n in self.frontier if option.matches(n.atoms)]
        return len(self.frontier)

    def reject(self, option: Option) -> int:
        """Drop frontier nodes the rejected option subsumes."""
        self.frontier = [n for n in self.frontier if not option.matches(n.atoms)]
        return len(self.frontier)

    # -- probabilities ------------------------------------------------------------

    def frontier_probabilities(self) -> list[float]:
        """Normalized probabilities over the current frontier (Eq. 3.12 input)."""
        return normalize([n.weight for n in self.frontier])

    def option_probability(self, option: Option) -> float:
        """``P(O | K)`` over the frontier: mass of nodes the option subsumes."""
        probs = self.frontier_probabilities()
        return sum(
            p for node, p in zip(self.frontier, probs) if option.matches(node.atoms)
        )

    # -- extraction ------------------------------------------------------------

    def complete_interpretations(self) -> list[Interpretation]:
        """Interpretations of the frontier once all keywords are bound."""
        if not self.at_complete_level():
            raise RuntimeError("hierarchy not yet expanded to the complete level")
        effective_query = KeywordQuery(keywords=tuple(self.keywords), text=str(self.query))
        out: list[Interpretation] = []
        for node in self.frontier:
            interp = Interpretation.build(effective_query, node.template, node.assignment)
            try:
                interp.validate()
            except ValueError:
                continue
            out.append(interp)
        return out

    def __len__(self) -> int:
        return len(self.frontier)
