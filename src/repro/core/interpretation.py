"""Keyword and query interpretations (Defs. 3.5.3–3.5.5, 3.5.7).

A *keyword interpretation* maps one keyword occurrence to an element of a
structured query.  We support the two kinds the thesis' systems use:

* :class:`ValueAtom` — the keyword is a value contained in an attribute
  (``sigma_{hanks in name}(actor) : hanks``),
* :class:`TableAtom` — the keyword names a table (metadata match,
  ``Actor : actor``).

A *query interpretation* (:class:`Interpretation`) composes a query template
with keyword interpretations.  It is *complete* when every keyword of the
query is bound, otherwise *partial*.  Sub-query subsumption (Def. 3.5.7) —
the relation driving incremental query construction — reduces to atom-set
containment: a partial interpretation subsumes every interpretation whose
atoms are a superset of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.keywords import Keyword, KeywordQuery
from repro.core.query import StructuredQuery
from repro.core.templates import QueryTemplate

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.backends.base import StorageBackend


@dataclass(frozen=True, order=True)
class ValueAtom:
    """Keyword ``keyword`` interpreted as a value of ``table.attribute``."""

    keyword: Keyword
    table: str
    attribute: str

    @property
    def kind(self) -> str:
        return "value"

    def describe(self) -> str:
        return f"{self.keyword.term!r} is a {self.table}.{self.attribute}"


@dataclass(frozen=True, order=True)
class TableAtom:
    """Keyword ``keyword`` interpreted as the name of ``table``."""

    keyword: Keyword
    table: str

    @property
    def kind(self) -> str:
        return "table"

    def describe(self) -> str:
        return f"{self.keyword.term!r} refers to the table {self.table}"


@dataclass(frozen=True, order=True)
class OperatorAtom:
    """Keyword interpreted as an aggregation operator over ``table``.

    Covers the analytical-query class of Section 2.2.7 (SQAK-style): the K4
    example "number of movies with tom hanks" interprets "number" as COUNT
    applied to the movie slot of the query.
    """

    keyword: Keyword
    operator: str  # currently "count"
    table: str

    @property
    def kind(self) -> str:
        return "operator"

    def describe(self) -> str:
        return f"{self.keyword.term!r} is the {self.operator.upper()} of {self.table}"


Atom = ValueAtom | TableAtom | OperatorAtom


def atom_sort_key(atom: Atom) -> tuple:
    """Canonical ordering across atom kinds (value/table/operator atoms mix)."""
    if isinstance(atom, ValueAtom):
        return (atom.keyword, 0, atom.table, atom.attribute)
    if isinstance(atom, TableAtom):
        return (atom.keyword, 1, atom.table, "")
    return (atom.keyword, 2, atom.table, atom.operator)


def atoms_subsume(sub: frozenset[Atom], sup: frozenset[Atom]) -> bool:
    """Sub-query test on atom sets: ``sub`` subsumes ``sup`` iff ``sub <= sup``."""
    return sub <= sup


@dataclass(frozen=True)
class Interpretation:
    """A (partial or complete) query interpretation (Def. 3.5.4).

    ``assignment`` maps each bound keyword to the template slot hosting its
    atom.  The two validity conditions of Def. 3.5.4 are enforced by
    :meth:`validate`: every keyword has at most one interpretation (guaranteed
    by the mapping), and the minimality condition — the template's endpoint
    slots must host at least one keyword interpretation, otherwise a shorter
    template would interpret the same keywords.
    """

    query: KeywordQuery
    template: QueryTemplate
    assignment: tuple[tuple[Atom, int], ...]  # (atom, template slot), sorted

    @classmethod
    def build(
        cls,
        query: KeywordQuery,
        template: QueryTemplate,
        assignment: Mapping[Atom, int] | Iterable[tuple[Atom, int]],
    ) -> "Interpretation":
        items = assignment.items() if isinstance(assignment, Mapping) else assignment
        ordered = tuple(sorted(items, key=lambda pair: (atom_sort_key(pair[0]), pair[1])))
        return cls(query=query, template=template, assignment=ordered)

    # -- structure -------------------------------------------------------

    @cached_property
    def atoms(self) -> frozenset[Atom]:
        return frozenset(atom for atom, _slot in self.assignment)

    @cached_property
    def bound_keywords(self) -> frozenset[Keyword]:
        return frozenset(atom.keyword for atom in self.atoms)

    @property
    def is_complete(self) -> bool:
        """Complete interpretation: every keyword of the query is bound."""
        return self.bound_keywords == frozenset(self.query.keywords)

    @property
    def unbound_keywords(self) -> tuple[Keyword, ...]:
        bound = self.bound_keywords
        return tuple(k for k in self.query.keywords if k not in bound)

    def subsumes(self, other: "Interpretation") -> bool:
        """Sub-query relation (Def. 3.5.7): self is a sub-structure of other."""
        return atoms_subsume(self.atoms, other.atoms)

    def validate(self) -> None:
        """Enforce Def. 3.5.4 (unique binding per keyword, minimality)."""
        keywords = [atom.keyword for atom, _slot in self.assignment]
        if len(keywords) != len(set(keywords)):
            raise ValueError("a keyword may be bound to at most one element")
        operators = [a for a in self.atoms if isinstance(a, OperatorAtom)]
        if len(operators) > 1:
            raise ValueError("at most one aggregation operator per query")
        for atom, slot in self.assignment:
            if not 0 <= slot < len(self.template.path):
                raise ValueError(f"slot {slot} outside template {self.template}")
            table = self.template.path[slot]
            if atom.table != table:
                raise ValueError(
                    f"atom {atom} bound to slot {slot} ({table}), tables differ"
                )
        occupied = {slot for _atom, slot in self.assignment}
        for leaf in self.template.leaf_positions():
            if leaf not in occupied:
                raise ValueError(
                    "minimality violated: template endpoint "
                    f"{self.template.path[leaf]!r} hosts no keyword interpretation"
                )

    # -- execution bridge --------------------------------------------------

    def to_structured_query(self) -> StructuredQuery:
        """Materialize the relational-algebra expression (Def. 3.5.2)."""
        selections: dict[int, dict[str, list[str]]] = {}
        aggregate: tuple[str, int] | None = None
        for atom, slot in self.assignment:
            if isinstance(atom, ValueAtom):
                selections.setdefault(slot, {}).setdefault(atom.attribute, []).append(
                    atom.keyword.term
                )
            elif isinstance(atom, OperatorAtom):
                aggregate = (atom.operator, slot)
        frozen = {
            slot: tuple(
                (attribute, tuple(terms)) for attribute, terms in sorted(attrs.items())
            )
            for slot, attrs in selections.items()
        }
        return StructuredQuery(
            template=self.template, selections=frozen, aggregate=aggregate
        )

    def execute(self, database: "StorageBackend", limit: int | None = None):
        return self.to_structured_query().execute(database, limit=limit)

    def result_keys(self, database: "StorageBackend", limit: int | None = None) -> set:
        """Primary keys of result tuples — DivQ's information nuggets."""
        return self.to_structured_query().result_keys(database, limit=limit)

    # -- presentation ------------------------------------------------------

    def describe(self) -> str:
        """Render the interpretation the way the IQP UI would word it."""
        clauses = [atom.describe() for atom, _slot in self.assignment]
        scope = "complete" if self.is_complete else "partial"
        return f"[{scope}] {str(self.template)}: " + "; ".join(clauses)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.describe()
