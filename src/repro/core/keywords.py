"""Keyword queries (Def. 3.5.1).

A keyword query is a *bag* of words: duplicates are allowed and each
occurrence is interpreted independently.  We therefore identify a keyword by
its position in the query, not by its surface form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.db.tokenizer import DEFAULT_TOKENIZER, Tokenizer


@dataclass(frozen=True, order=True)
class Keyword:
    """One keyword occurrence: position in the query plus the normalized term."""

    position: int
    term: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.term


@dataclass(frozen=True)
class KeywordQuery:
    """A bag of keywords (Def. 3.5.1), e.g. ``"hanks 2001"``."""

    keywords: tuple[Keyword, ...]
    text: str = ""

    @classmethod
    def parse(cls, text: str, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> "KeywordQuery":
        """Tokenize raw query text into a keyword query."""
        terms = tokenizer.tokens(text)
        return cls(
            keywords=tuple(Keyword(i, term) for i, term in enumerate(terms)),
            text=text,
        )

    @classmethod
    def from_terms(cls, terms: list[str] | tuple[str, ...]) -> "KeywordQuery":
        """Build a query from already-normalized terms."""
        return cls(
            keywords=tuple(Keyword(i, term) for i, term in enumerate(terms)),
            text=" ".join(terms),
        )

    @property
    def terms(self) -> tuple[str, ...]:
        return tuple(k.term for k in self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)

    def __iter__(self) -> Iterator[Keyword]:
        return iter(self.keywords)

    def __str__(self) -> str:
        return self.text or " ".join(self.terms)
