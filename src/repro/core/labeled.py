"""Labeled keyword search (Section 2.2.7).

Users who know parts of the schema can label keywords to pin their
interpretation, as in ``actor:hanks movie:2001`` — the keyword then maps
exclusively to elements complying with the label.  Labels accept a table
name (``actor:hanks``) or a table.attribute pair (``movie.title:cool``);
unlabeled keywords stay fully ambiguous.

:class:`LabeledGenerator` wraps an :class:`InterpretationGenerator` and
filters each keyword's candidate atoms by its label, shrinking the
interpretation space exactly the way the thesis describes labeled search
trading usability for expressiveness.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.generator import InterpretationGenerator
from repro.core.interpretation import Atom, TableAtom, ValueAtom
from repro.core.keywords import Keyword, KeywordQuery
from repro.db.tokenizer import DEFAULT_TOKENIZER, Tokenizer

_LABELED_TOKEN = re.compile(r"^(?P<label>[A-Za-z_][\w.]*):(?P<term>\S+)$")


@dataclass(frozen=True)
class Label:
    """A constraint on one keyword: a table, optionally an attribute."""

    table: str
    attribute: str | None = None

    def admits(self, atom: Atom) -> bool:
        if isinstance(atom, ValueAtom):
            if atom.table != self.table:
                return False
            return self.attribute is None or atom.attribute == self.attribute
        if isinstance(atom, TableAtom):
            return self.attribute is None and atom.table == self.table
        return False

    def __str__(self) -> str:
        if self.attribute is None:
            return self.table
        return f"{self.table}.{self.attribute}"


@dataclass(frozen=True)
class LabeledQuery:
    """A keyword query plus per-position label constraints."""

    query: KeywordQuery
    labels: dict[int, Label] = field(default_factory=dict)

    def label_of(self, keyword: Keyword) -> Label | None:
        return self.labels.get(keyword.position)


def parse_labeled(text: str, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> LabeledQuery:
    """Parse ``"actor:hanks 2001"`` into keywords plus label constraints.

    Each whitespace-separated token may carry one ``label:`` prefix; the
    remainder is tokenized normally (a labeled token contributing several
    terms labels each of them).
    """
    keywords: list[Keyword] = []
    labels: dict[int, Label] = {}
    position = 0
    for raw in text.split():
        match = _LABELED_TOKEN.match(raw)
        if match:
            label_text = match.group("label")
            if "." in label_text:
                table, attribute = label_text.split(".", 1)
                label = Label(table=table, attribute=attribute)
            else:
                label = Label(table=label_text)
            terms = tokenizer.tokens(match.group("term"))
        else:
            label = None
            terms = tokenizer.tokens(raw)
        for term in terms:
            keywords.append(Keyword(position, term))
            if label is not None:
                labels[position] = label
            position += 1
    return LabeledQuery(
        query=KeywordQuery(keywords=tuple(keywords), text=text), labels=labels
    )


class LabeledGenerator(InterpretationGenerator):
    """Interpretation generation with label constraints applied per keyword."""

    def __init__(self, base: InterpretationGenerator, labeled: LabeledQuery):
        # Share the base generator's database, templates and config.
        self.database = base.database
        self.config = base.config
        self.templates = base.templates
        self._index = base.database.require_index()
        self._labeled = labeled

    def keyword_atoms(self, keyword: Keyword) -> list[Atom]:
        atoms = super().keyword_atoms(keyword)
        label = self._labeled.label_of(keyword)
        if label is None:
            return atoms
        return [a for a in atoms if label.admits(a)]

    def interpretations_for(self) -> list:
        """The (constrained) interpretation space of the labeled query."""
        return self.interpretations(self._labeled.query)
