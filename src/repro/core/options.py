"""Query construction options (QCOs).

An option is a question IQP/FreeQ puts to the user.  Two kinds exist:

* :class:`AtomSetOption` — a partial interpretation ("'hanks' is an actor
  name"); it subsumes exactly the interpretations containing its atoms
  (Chapter 3's QCOs).
* :class:`ConceptOption` — an ontology-based QCO ("'hanks' is a *Person*",
  Chapter 5): it covers every interpretation binding the keyword to *any*
  attribute grouped under the concept, so one answer prunes across many
  tables of a large schema.

Both expose ``matches`` (does the option subsume an interpretation with
these atoms?) and ``is_correct`` (would the ground-truth user accept it?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.interpretation import Atom
from repro.core.keywords import Keyword

if TYPE_CHECKING:  # pragma: no cover
    from repro.user.oracle import IntendedInterpretation


@runtime_checkable
class Option(Protocol):
    """Anything presentable to the user during query construction."""

    def matches(self, atoms: frozenset[Atom]) -> bool:
        """Does this option subsume an interpretation with ``atoms``?"""
        ...

    def is_correct(self, intended: "IntendedInterpretation") -> bool:
        """Would the intended interpretation's user accept this option?"""
        ...

    def describe(self) -> str:
        ...


@dataclass(frozen=True)
class AtomSetOption:
    """A partial interpretation offered as an option (Chapter 3)."""

    atoms: frozenset[Atom]

    def matches(self, atoms: frozenset[Atom]) -> bool:
        return self.atoms <= atoms

    def is_correct(self, intended: "IntendedInterpretation") -> bool:
        return intended.matches_atoms(self.atoms)

    def describe(self) -> str:
        return "; ".join(sorted(a.describe() for a in self.atoms))


@dataclass(frozen=True)
class ConceptOption:
    """An ontology-based QCO: one keyword, one concept, many attributes.

    ``atoms`` holds every candidate interpretation of ``keyword`` that falls
    under ``concept`` — accepting the option keeps interpretations binding
    the keyword to *any* of them; rejecting drops them all.
    """

    keyword: Keyword
    concept: str
    atoms: frozenset[Atom]

    def __post_init__(self) -> None:
        for atom in self.atoms:
            if atom.keyword != self.keyword:
                raise ValueError("concept option atoms must share the keyword")

    def matches(self, atoms: frozenset[Atom]) -> bool:
        return any(atom in atoms for atom in self.atoms)

    def is_correct(self, intended: "IntendedInterpretation") -> bool:
        return any(intended.matches_atom(atom) for atom in self.atoms)

    def describe(self) -> str:
        return f"{self.keyword.term!r} is a {self.concept}"
