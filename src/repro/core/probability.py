"""Probabilistic query-interpretation models (Sections 3.6 and 4.4.2).

Implements the thesis' decomposition of ``P(Q | K)`` (Eq. 3.5):

    P(Q | K)  propto  prod_i P(A_i : k_i | T ∩ A_i)  ×  P(T)

with three estimators:

* :class:`UniformModel` — the baseline of Fig. 3.5: every interpretation and
  option equally likely.
* :class:`ATFModel` — Attribute Term Frequency (Eq. 3.8) for value bindings,
  empirical constants for metadata bindings, template priors either uniform
  (``ATF, Tequal``) or estimated from a query log (``ATF, TLog``, Eq. 3.7).
* :class:`DivQModel` — the Chapter 4 refinement: keywords bound to the *same*
  attribute are scored by their joint cell frequency (keyword co-occurrence,
  Eq. 4.2), unbound keywords contribute the smoothing factor ``P_u``, and
  interpretations with empty results get zero probability.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Protocol, Sequence

from repro.core.interpretation import (
    Atom,
    Interpretation,
    OperatorAtom,
    TableAtom,
    ValueAtom,
    atom_sort_key,
)
from repro.core.templates import QueryTemplate

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database
    from repro.db.index import InvertedIndex


class ProbabilityModel(Protocol):
    """Anything that can weight interpretations and atoms."""

    def atom_weight(self, atom: Atom, template: QueryTemplate) -> float:
        """Unnormalized ``P(A_i : k_i | T ∩ A_i)``."""
        ...

    def template_prior(self, template: QueryTemplate) -> float:
        """``P(T)``."""
        ...

    def interpretation_weight(self, interpretation: Interpretation) -> float:
        """Unnormalized ``P(Q | K)`` (Eq. 3.5 / 3.6)."""
        ...


def normalize(weights: Sequence[float]) -> list[float]:
    """Scale nonnegative weights to a probability distribution.

    An all-zero input maps to the uniform distribution — the probabilistic
    model must never leave the construction process without a frontier.
    """
    total = float(sum(weights))
    if total <= 0.0:
        n = len(weights)
        return [1.0 / n] * n if n else []
    return [w / total for w in weights]


def entropy(probabilities: Iterable[float]) -> float:
    """Shannon entropy in bits (used by the information-gain criterion)."""
    h = 0.0
    for p in probabilities:
        if p > 0.0:
            h -= p * math.log2(p)
    return h


@dataclass
class TemplateCatalog:
    """Template priors ``P(T)`` (Eq. 3.7).

    With a query log, ``P(T) = (#occurrences(T) + alpha) / N``; without one,
    all templates are equally probable (the ``Tequal`` configuration).
    """

    templates: list[QueryTemplate]
    alpha: float = 1.0
    _counts: Counter = field(default_factory=Counter)
    _total: int = 0

    def record_usage(self, template: QueryTemplate, count: int = 1) -> None:
        """Register ``count`` occurrences of ``template`` in the query log."""
        self._counts[template.identifier] += count
        self._total += count

    def record_log(self, identifiers: Iterable[str]) -> None:
        for identifier in identifiers:
            self._counts[identifier] += 1
            self._total += 1

    @property
    def has_log(self) -> bool:
        return self._total > 0

    def prior(self, template: QueryTemplate) -> float:
        if not self.templates:
            return 0.0
        if not self.has_log:
            return 1.0 / len(self.templates)
        smoothed_total = self._total + self.alpha * len(self.templates)
        return (self._counts[template.identifier] + self.alpha) / smoothed_total

    def frequency(self, template: QueryTemplate) -> float:
        """Raw log frequency of the template (0 when no log)."""
        if not self.has_log:
            return 0.0
        return self._counts[template.identifier] / self._total


@dataclass
class UniformModel:
    """Baseline of Section 3.8.2: all interpretations equally likely."""

    catalog: TemplateCatalog | None = None

    def atom_weight(self, atom: Atom, template: QueryTemplate) -> float:
        return 1.0

    def template_prior(self, template: QueryTemplate) -> float:
        return 1.0

    def interpretation_weight(self, interpretation: Interpretation) -> float:
        return 1.0


@dataclass
class ATFModel:
    """The IQP probabilistic model (Section 3.6.2).

    Value bindings are weighted by Attribute Term Frequency (Eq. 3.8); table
    name bindings by an empirical constant (the thesis uses values set by
    domain experts when no log records metadata usage).
    """

    index: "InvertedIndex"
    catalog: TemplateCatalog
    #: Empirical probability that a keyword matching a table name refers to it.
    table_match_weight: float = 0.5
    #: Empirical probability of an operator-word interpretation ("number" as
    #: COUNT of one particular table) — split across the schema's tables.
    operator_match_weight: float = 0.1

    def atom_weight(self, atom: Atom, template: QueryTemplate) -> float:
        if isinstance(atom, ValueAtom):
            return self.index.atf(atom.keyword.term, atom.table, atom.attribute)
        if isinstance(atom, TableAtom):
            return self.table_match_weight
        if isinstance(atom, OperatorAtom):
            return self.operator_match_weight
        raise TypeError(f"unknown atom type: {atom!r}")

    def template_prior(self, template: QueryTemplate) -> float:
        return self.catalog.prior(template)

    def interpretation_weight(self, interpretation: Interpretation) -> float:
        weight = self.template_prior(interpretation.template)
        for atom in sorted(interpretation.atoms, key=atom_sort_key):
            weight *= self.atom_weight(atom, interpretation.template)
        return weight


@dataclass
class TFIDFModel:
    """Ablation model: TF-IDF in place of ATF for value bindings.

    Section 3.8.3 observes that TF-IDF (as used by SQAK) prefers
    *distinctive* interpretations where ATF prefers *typical* ones — and that
    typicality wins on real keyword workloads.  This model isolates exactly
    that statistic swap so the effect can be measured against ATF with
    everything else held fixed (``benchmarks/test_bench_ablations.py``).
    """

    index: "InvertedIndex"
    catalog: TemplateCatalog
    table_match_weight: float = 0.5

    def atom_weight(self, atom: Atom, template: QueryTemplate) -> float:
        if isinstance(atom, ValueAtom):
            tf = self.index.tf(atom.keyword.term, atom.table, atom.attribute)
            idf = self.index.idf(atom.keyword.term, atom.table)
            return math.sqrt(tf) * idf * idf
        if isinstance(atom, TableAtom):
            return self.table_match_weight
        if isinstance(atom, OperatorAtom):
            return 0.1
        raise TypeError(f"unknown atom type: {atom!r}")

    def template_prior(self, template: QueryTemplate) -> float:
        return self.catalog.prior(template)

    def interpretation_weight(self, interpretation: Interpretation) -> float:
        weight = self.template_prior(interpretation.template)
        for atom in sorted(interpretation.atoms, key=atom_sort_key):
            weight *= self.atom_weight(atom, interpretation.template)
        return weight


@dataclass
class DivQModel:
    """The Chapter 4 model with keyword co-occurrence (Eq. 4.2).

    Keywords bound to one attribute are scored jointly via the attribute's
    cell-level co-occurrence frequency; a first+last name pair binding to the
    same ``name`` column therefore outranks split bindings.  Keywords of the
    original query left unbound contribute ``P_u`` each, and (optionally)
    interpretations with empty results are zeroed.
    """

    index: "InvertedIndex"
    catalog: TemplateCatalog
    #: Smoothing probability for keywords that match no database element.
    unmatched_probability: float = 1e-9
    table_match_weight: float = 0.5
    #: Additive smoothing on joint frequencies, keeping them positive.
    alpha: float = 1e-6
    database: "Database | None" = None
    check_nonempty: bool = False

    def atom_weight(self, atom: Atom, template: QueryTemplate) -> float:
        if isinstance(atom, ValueAtom):
            return self.index.atf(atom.keyword.term, atom.table, atom.attribute)
        return self.table_match_weight

    def template_prior(self, template: QueryTemplate) -> float:
        return self.catalog.prior(template)

    def interpretation_weight(self, interpretation: Interpretation) -> float:
        if self.check_nonempty and self.database is not None:
            if not interpretation.to_structured_query().has_results(self.database):
                return 0.0
        weight = self.template_prior(interpretation.template)
        # Group value atoms by (slot, attribute) to capture co-occurrence.
        groups: dict[tuple[int, str], list[str]] = {}
        for atom, slot in interpretation.assignment:
            if isinstance(atom, ValueAtom):
                groups.setdefault((slot, atom.attribute), []).append(atom.keyword.term)
            else:
                weight *= self.table_match_weight
        for (slot, attribute), terms in sorted(groups.items()):
            table = interpretation.template.path[slot]
            if len(terms) == 1:
                weight *= self.index.atf(terms[0], table, attribute)
            else:
                weight *= self.index.joint_cell_frequency(terms, table, attribute) + self.alpha
        unbound = len(interpretation.unbound_keywords)
        if unbound:
            weight *= self.unmatched_probability**unbound
        return weight


def rank_interpretations(
    interpretations: Sequence[Interpretation], model: ProbabilityModel
) -> list[tuple[Interpretation, float]]:
    """Rank a space by normalized ``P(Q | K)``, best first, deterministically."""
    weights = [model.interpretation_weight(i) for i in interpretations]
    probabilities = normalize(weights)
    ranked = sorted(
        zip(interpretations, probabilities),
        key=lambda pair: (-pair[1], pair[0].describe()),
    )
    return ranked
