"""Structured queries (Def. 3.5.2): relational algebra with selection + join.

A :class:`StructuredQuery` is a query template (join path) decorated with
``contains`` predicates: per template slot, per attribute, the bag of keywords
that must be contained in the attribute value.  It executes against a
any :class:`repro.db.StorageBackend` and renders itself as SQL.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.templates import QueryTemplate
from repro.db.sql import render_sql

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.backends.base import StorageBackend
    from repro.db.table import Tuple

#: Per-slot selections: slot -> ((attribute, (terms...)), ...)
SelectionMap = dict[int, tuple[tuple[str, tuple[str, ...]], ...]]


@dataclass(frozen=True)
class StructuredQuery:
    """An executable relational-algebra expression.

    Example: ``sigma_{hanks in name}(actor) |x| acts |x|
    sigma_{2001 in year}(movie)``.
    """

    template: QueryTemplate
    selections: SelectionMap = field(default_factory=dict)
    #: Optional aggregation: ``(operator, slot)`` — currently COUNT over the
    #: distinct tuples of one template slot (analytical queries, §2.2.7).
    aggregate: tuple[str, int] | None = None

    @property
    def size(self) -> int:
        """Number of joins — the size-normalization factor of early rankers."""
        return self.template.size

    @property
    def is_aggregate(self) -> bool:
        return self.aggregate is not None

    def predicate_count(self) -> int:
        return sum(len(attrs) for attrs in self.selections.values())

    def term_count(self) -> int:
        return sum(
            len(terms) for attrs in self.selections.values() for _a, terms in attrs
        )

    # -- execution ---------------------------------------------------------

    def _db_selections(self) -> dict[int, list[tuple[str, tuple[str, ...]]]]:
        return {slot: list(attrs) for slot, attrs in self.selections.items()}

    def execute(
        self, database: "StorageBackend", limit: int | None = None
    ) -> list[tuple["Tuple", ...]]:
        """Run the query; rows are joining networks of tuples (JTTs)."""
        return database.execute_path(*self.path_spec(), limit=limit)

    def path_spec(self):
        """``(path, edges, selections)`` — the ``execute_path`` arguments.

        The unit ``StorageBackend.execute_paths_batched`` accepts, so several
        structured queries can execute as one batched statement.
        """
        return (self.template.path, self.template.edges, self._db_selections())

    def has_results(self, database: "StorageBackend") -> bool:
        return database.has_results(
            self.template.path, self.template.edges, self._db_selections()
        )

    def count(self, database: "StorageBackend") -> int:
        return database.count_path(
            self.template.path, self.template.edges, self._db_selections()
        )

    def result_keys(
        self, database: "StorageBackend", limit: int | None = None
    ) -> set[tuple[str, Any]]:
        """Distinct tuple uids across all result rows.

        This is the "primary keys in the result" notion the DivQ metrics use
        as information nuggets / subtopics (Section 4.5).
        """
        keys: set[tuple[str, Any]] = set()
        for row in self.execute(database, limit=limit):
            for tup in row:
                keys.add(tup.uid)
        return keys

    def aggregate_value(self, database: "StorageBackend") -> int:
        """Evaluate the aggregation (COUNT of distinct target-slot tuples)."""
        if self.aggregate is None:
            raise ValueError("query has no aggregation operator")
        operator, slot = self.aggregate
        if operator != "count":
            raise ValueError(f"unsupported aggregation operator {operator!r}")
        distinct = {row[slot].uid for row in self.execute(database)}
        return len(distinct)

    def cache_key(self) -> str:
        """Canonical form identifying this query's result set.

        Two structurally equal queries — same join path, same foreign keys,
        same per-slot selections, same aggregation — produce the same key on
        every process, which is what lets the cross-session
        :class:`~repro.engine.cache.ResultCache` reuse execution results.
        Selections are already slot- and attribute-sorted by construction
        (:meth:`Interpretation.to_structured_query`); sorting again here keeps
        the key canonical for hand-built queries too.
        """
        return json.dumps(
            {
                "path": list(self.template.path),
                "edges": [
                    (e.source, e.source_attr, e.target, e.target_attr)
                    for e in self.template.edges
                ],
                "selections": [
                    (
                        slot,
                        sorted(
                            (attribute, sorted(terms))
                            for attribute, terms in attrs
                        ),
                    )
                    for slot, attrs in sorted(self.selections.items())
                ],
                "aggregate": list(self.aggregate) if self.aggregate else None,
            },
            sort_keys=True,
        )

    # -- presentation ------------------------------------------------------

    def to_sql(self) -> str:
        sql = render_sql(self.template.path, self.template.edges, self._db_selections())
        if self.aggregate is not None:
            operator, slot = self.aggregate
            alias = f"t{slot}_{self.template.path[slot]}"
            header = f"SELECT {operator.upper()}(DISTINCT {alias}.id)"
            sql = sql.replace("SELECT *", header, 1)
        return sql

    def algebra(self) -> str:
        """Render in the thesis' algebra notation."""
        parts: list[str] = []
        for slot, table in enumerate(self.template.path):
            attrs = self.selections.get(slot, ())
            if attrs:
                predicate = " AND ".join(
                    f"{{{','.join(terms)}}} in {attribute}" for attribute, terms in attrs
                )
                parts.append(f"sigma_{{{predicate}}}({table})")
            else:
                parts.append(f"({table})")
        body = " |x| ".join(parts)
        if self.aggregate is not None:
            operator, slot = self.aggregate
            return f"{operator}_{{{self.template.path[slot]}}}({body})"
        return body

    def __str__(self) -> str:
        return self.algebra()
