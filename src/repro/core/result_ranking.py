"""Ranking of materialized search results — JTTs (Section 2.2.4).

Besides ranking query *interpretations*, schema-based systems rank the
joining tuple trees a query returns.  This module implements the weighting
factors the thesis surveys and two composite scoring functions:

* :class:`MonotoneResultScorer` — DISCOVER2/Liu-style: per-tuple TF-IDF
  relevance summed over the tree, divided by the tree size (size
  normalization).  Monotone: raising any tuple's score raises the tree's.
* :class:`SparkResultScorer` — SPARK-style non-monotone aggregation:
  relevance x completeness x size normalization, where completeness rewards
  trees containing more of the query's keywords (tunable AND/OR semantics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.keywords import KeywordQuery
from repro.db.index import InvertedIndex
from repro.db.table import Tuple
from repro.db.tokenizer import DEFAULT_TOKENIZER

#: A search result: one joining network of tuples.
JTT = Sequence[Tuple]


@dataclass
class ResultStatistics:
    """Per-result keyword accounting shared by the scorers."""

    tfidf_sum: float
    matched_terms: frozenset[str]
    size: int


def _result_statistics(
    index: InvertedIndex, query: KeywordQuery, result: JTT
) -> ResultStatistics:
    terms = set(query.terms)
    tfidf = 0.0
    matched: set[str] = set()
    for tup in result:
        for attribute, value in tup.values:
            if value is None:
                continue
            tokens = DEFAULT_TOKENIZER.terms(str(value))
            for term in terms & tokens:
                matched.add(term)
                tf = index.tf(term, tup.table, attribute)
                idf = index.idf(term, tup.table)
                tfidf += math.sqrt(max(tf, 0.0)) * idf
    return ResultStatistics(
        tfidf_sum=tfidf, matched_terms=frozenset(matched), size=len(result)
    )


@dataclass
class MonotoneResultScorer:
    """TF-IDF relevance with 1/size normalization (DISCOVER2 lineage)."""

    index: InvertedIndex

    def score(self, query: KeywordQuery, result: JTT) -> float:
        if not result:
            return 0.0
        stats = _result_statistics(self.index, query, result)
        return stats.tfidf_sum / stats.size

    def rank(self, query: KeywordQuery, results: Sequence[JTT]) -> list[tuple[float, JTT]]:
        scored = [(self.score(query, r), r) for r in results]
        scored.sort(key=lambda pair: (-pair[0], [t.uid for t in pair[1]]))
        return scored


@dataclass
class SparkResultScorer:
    """Non-monotone composite: relevance x completeness^p x size norm.

    ``completeness_power`` tunes the AND/OR semantics (Section 2.2.4's
    completeness factor): 0 ignores coverage (pure OR), large values demand
    all keywords (approaching AND).
    """

    index: InvertedIndex
    completeness_power: float = 2.0

    def score(self, query: KeywordQuery, result: JTT) -> float:
        if not result or not len(query):
            return 0.0
        stats = _result_statistics(self.index, query, result)
        distinct_terms = set(query.terms)
        coverage = len(stats.matched_terms) / len(distinct_terms)
        size_norm = 1.0 / (1.0 + math.log1p(stats.size - 1))
        return stats.tfidf_sum * (coverage**self.completeness_power) * size_norm

    def rank(self, query: KeywordQuery, results: Sequence[JTT]) -> list[tuple[float, JTT]]:
        scored = [(self.score(query, r), r) for r in results]
        scored.sort(key=lambda pair: (-pair[0], [t.uid for t in pair[1]]))
        return scored
