"""Keyword-query segmentation (the pre-processing step of Section 2.2).

Keyword queries arrive as flat token bags, but adjacent tokens often form
one concept ("tom hanks" is a single person name).  The segmenter detects
such phrases from the database itself: two adjacent keywords form a segment
when some attribute's cells contain them *together* markedly more often than
independence predicts — the same joint-cell statistic DivQ's model uses
(Eq. 4.2).

Segmentation is advisory: it produces a partition of the query into
segments, each tagged with the attributes that evidence it, which callers
can use to prune the interpretation space (both keywords of a segment bound
to the evidencing attribute) or to build phrase predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.keywords import Keyword, KeywordQuery
from repro.db.index import InvertedIndex


@dataclass(frozen=True)
class Segment:
    """A maximal run of adjacent keywords evidenced as one concept."""

    keywords: tuple[Keyword, ...]
    #: Attributes whose cells contain all keywords of the segment.
    evidence: tuple[tuple[str, str], ...]

    @property
    def terms(self) -> tuple[str, ...]:
        return tuple(k.term for k in self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)


@dataclass(frozen=True)
class Segmentation:
    """A partition of a keyword query into segments (order preserved)."""

    query: KeywordQuery
    segments: tuple[Segment, ...]

    def multi_keyword_segments(self) -> list[Segment]:
        return [s for s in self.segments if len(s) > 1]

    def __iter__(self):
        return iter(self.segments)


class QuerySegmenter:
    """Greedy left-to-right phrase detection from index statistics."""

    def __init__(
        self,
        index: InvertedIndex,
        min_lift: float = 1.3,
        min_joint_frequency: float = 0.0,
    ):
        self.index = index
        #: A pair merges when joint frequency exceeds ``min_lift`` times the
        #: independence expectation in some attribute.
        self.min_lift = min_lift
        self.min_joint_frequency = min_joint_frequency

    def _pair_evidence(self, left: str, right: str) -> list[tuple[str, str]]:
        """Attributes in which ``left right`` co-occur beyond independence."""
        shared_refs = set(self.index.attributes_containing(left)) & set(
            self.index.attributes_containing(right)
        )
        evidence: list[tuple[str, str]] = []
        for table, attribute in sorted(shared_refs):
            joint = self.index.joint_cell_frequency([left, right], table, attribute)
            if joint <= self.min_joint_frequency:
                continue
            stats = self.index.attribute_statistics(table, attribute)
            if stats.cell_count == 0:
                continue
            p_left = len(self.index.tuple_keys(left, table, attribute)) / stats.cell_count
            p_right = len(self.index.tuple_keys(right, table, attribute)) / stats.cell_count
            expected = p_left * p_right
            if expected <= 0.0:
                continue
            if joint / expected >= self.min_lift:
                evidence.append((table, attribute))
        return evidence

    def _segment_evidence(self, terms: list[str]) -> list[tuple[str, str]]:
        """Attributes whose cells contain *all* terms of a candidate segment."""
        refs: set[tuple[str, str]] | None = None
        for term in terms:
            term_refs = set(self.index.attributes_containing(term))
            refs = term_refs if refs is None else refs & term_refs
            if not refs:
                return []
        assert refs is not None
        out = []
        for table, attribute in sorted(refs):
            if self.index.joint_cell_frequency(terms, table, attribute) > 0.0:
                out.append((table, attribute))
        return out

    def segment(self, query: KeywordQuery) -> Segmentation:
        """Partition the query greedily: extend a segment while the next
        keyword co-occurs with it in at least one attribute."""
        keywords = list(query.keywords)
        segments: list[Segment] = []
        i = 0
        while i < len(keywords):
            run = [keywords[i]]
            evidence: list[tuple[str, str]] = []
            j = i + 1
            while j < len(keywords):
                if not self._pair_evidence(keywords[j - 1].term, keywords[j].term):
                    break
                extended = self._segment_evidence([k.term for k in run] + [keywords[j].term])
                if not extended:
                    break
                run.append(keywords[j])
                evidence = extended
                j += 1
            if len(run) == 1:
                evidence = [
                    ref for ref in self.index.attributes_containing(run[0].term)
                ]
            segments.append(Segment(keywords=tuple(run), evidence=tuple(evidence)))
            i += len(run)
        return Segmentation(query=query, segments=tuple(segments))
