"""Result presentation: snippets and clustering (Section 2.2.6).

Two presentation aids the thesis surveys for keyword-search results:

* **Snippets** — a brief passage per result giving the user a quick glance:
  for a joining tuple tree we render one fragment per tuple, keeping the
  attributes that contain query keywords (with the keywords highlighted) and
  truncating the rest.
* **Clustering** — grouping similar results so the query disambiguates
  itself: results cluster by the *structural signature* of where the
  keywords matched (table.attribute sets), which is exactly the semantics a
  query interpretation carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.keywords import KeywordQuery
from repro.db.table import Tuple
from repro.db.tokenizer import DEFAULT_TOKENIZER

JTT = Sequence[Tuple]


@dataclass(frozen=True)
class Snippet:
    """A rendered passage for one result row."""

    text: str
    matched_attributes: tuple[tuple[str, str], ...]


def _highlight(value: str, terms: set[str], marker: str) -> tuple[str, bool]:
    """Wrap matching tokens of ``value`` in the marker; report any match."""
    out: list[str] = []
    matched = False
    for token in str(value).split():
        if DEFAULT_TOKENIZER.terms(token) & terms:
            out.append(f"{marker}{token}{marker}")
            matched = True
        else:
            out.append(token)
    return " ".join(out), matched


def make_snippet(
    query: KeywordQuery,
    result: JTT,
    max_value_length: int = 40,
    marker: str = "**",
) -> Snippet:
    """Render one result row as a keyword-highlighting snippet."""
    terms = set(query.terms)
    fragments: list[str] = []
    matched_attrs: list[tuple[str, str]] = []
    for tup in result:
        parts: list[str] = []
        for attribute, value in tup.values:
            if value is None:
                continue
            text = str(value)
            highlighted, matched = _highlight(text, terms, marker)
            if matched:
                matched_attrs.append((tup.table, attribute))
                if len(highlighted) > max_value_length:
                    highlighted = highlighted[: max_value_length - 3] + "..."
                parts.append(f"{attribute}: {highlighted}")
        if parts:
            fragments.append(f"[{tup.table}] " + ", ".join(parts))
    if not fragments and result:
        # No keyword matched (OR semantics remainder): show the first tuple.
        head = result[0]
        textual = [
            f"{a}: {str(v)[:max_value_length]}" for a, v in head.values if v is not None
        ]
        fragments.append(f"[{head.table}] " + ", ".join(textual[:2]))
    return Snippet(text=" -- ".join(fragments), matched_attributes=tuple(matched_attrs))


@dataclass(frozen=True)
class ResultCluster:
    """Results sharing one structural match signature."""

    signature: frozenset[tuple[str, str]]
    results: tuple[JTT, ...]

    def label(self) -> str:
        if not self.signature:
            return "(no keyword matches)"
        return ", ".join(f"{t}.{a}" for t, a in sorted(self.signature))

    def __len__(self) -> int:
        return len(self.results)


def cluster_results(query: KeywordQuery, results: Sequence[JTT]) -> list[ResultCluster]:
    """Group results by where the keywords matched (biggest cluster first).

    Two results land in one cluster iff the keywords matched the same
    ``table.attribute`` set — the automatic query disambiguation the thesis
    describes: each cluster corresponds to one keyword-interpretation
    pattern.
    """
    terms = set(query.terms)
    buckets: dict[frozenset[tuple[str, str]], list[JTT]] = {}
    for result in results:
        signature: set[tuple[str, str]] = set()
        for tup in result:
            for attribute, value in tup.values:
                if value is None:
                    continue
                if DEFAULT_TOKENIZER.terms(str(value)) & terms:
                    signature.add((tup.table, attribute))
        buckets.setdefault(frozenset(signature), []).append(result)
    clusters = [
        ResultCluster(signature=sig, results=tuple(rows))
        for sig, rows in buckets.items()
    ]
    clusters.sort(key=lambda c: (-len(c), c.label()))
    return clusters
