"""Query templates (Def. 3.5.6) and automatic template generation.

A query template is a structured query whose predicates contain variables
instead of keywords: a join path over the schema graph, e.g.
``sigma_{? in name}(actor) |x| acts |x| sigma_{? in year}(movie)``.

IQP obtains templates three ways (Section 3.5.2): automatically by exploring
join paths of the schema graph within a predefined length, from common
patterns in the query log, or manually from an administrator.  All three are
supported: :func:`generate_templates` implements the automatic route and
:class:`~repro.core.probability.TemplateCatalog` (see probability module)
carries log-based priors.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.db.schema import ForeignKey, Schema


@dataclass(frozen=True)
class QueryTemplate:
    """A join path of tables with the connecting foreign keys.

    ``path[i]`` and ``path[i + 1]`` are joined via ``edges[i]``.  A template
    of a single table has no edges.  Positions (indexes into ``path``) are the
    slots keyword interpretations bind to.
    """

    path: tuple[str, ...]
    edges: tuple[ForeignKey, ...]

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("template path must be non-empty")
        if len(self.path) != len(self.edges) + 1:
            raise ValueError("path/edges arity mismatch")

    @property
    def size(self) -> int:
        """Number of joins in the template."""
        return len(self.edges)

    @property
    def identifier(self) -> str:
        parts = [self.path[0]]
        for i, edge in enumerate(self.edges):
            parts.append(f"-[{edge.source}.{edge.source_attr}]-")
            parts.append(self.path[i + 1])
        return "".join(parts)

    def positions_of(self, table: str) -> list[int]:
        """All slots occupied by ``table`` (self-joins yield several)."""
        return [i for i, name in enumerate(self.path) if name == table]

    def leaf_positions(self) -> tuple[int, ...]:
        """The endpoint slots, which the minimality condition constrains."""
        if len(self.path) == 1:
            return (0,)
        return (0, len(self.path) - 1)

    def contains_table(self, table: str) -> bool:
        return table in self.path

    def __str__(self) -> str:
        return " |x| ".join(self.path)

    def __len__(self) -> int:
        return len(self.path)


def generate_templates(
    schema: Schema,
    max_joins: int = 3,
    max_edge_variants: int = 4,
    include_self_joins: bool = True,
) -> list[QueryTemplate]:
    """Automatically generate templates from the schema graph (Section 3.5.2).

    Enumerates simple join paths of at most ``max_joins`` joins.  When two
    adjacent tables are connected by several foreign keys (e.g. ``movie``
    referencing ``person`` both as director and as producer), one template per
    edge combination is produced, capped at ``max_edge_variants`` combinations
    per path to bound the blow-up.

    With ``include_self_joins`` each path is additionally mirrored into a
    palindromic self-join template (``actor |x| acts |x| movie |x| acts |x|
    actor`` from ``actor |x| acts |x| movie``) when it fits ``max_joins`` —
    the template class behind queries naming two actors of one movie
    (Section 3.4's "Tom Cruise and Colin Hanks" example).
    """
    templates: list[QueryTemplate] = []
    base_paths = schema.join_paths(max_joins)
    candidate_paths: list[tuple[str, ...]] = list(base_paths)
    if include_self_joins:
        seen = set(base_paths)
        for path in base_paths:
            if len(path) < 3:
                continue
            if 2 * (len(path) - 1) > max_joins:
                continue
            palindrome = path + path[-2::-1]
            if palindrome not in seen:
                seen.add(palindrome)
                candidate_paths.append(palindrome)
    for path in candidate_paths:
        edge_choices: list[list[ForeignKey]] = []
        valid = True
        for left, right in zip(path, path[1:]):
            fks = schema.join_edges(left, right)
            if not fks:
                valid = False
                break
            edge_choices.append(fks)
        if not valid:
            continue
        variants = 0
        for combo in product(*edge_choices) if edge_choices else [()]:
            templates.append(QueryTemplate(path=tuple(path), edges=tuple(combo)))
            variants += 1
            if variants >= max_edge_variants:
                break
    templates.sort(key=lambda t: (t.size, t.identifier))
    return templates
