"""Top-k query processing with early stopping (Section 2.2.5).

Given a relevance-ranked list of query interpretations, the naive strategy
executes every interpretation, unions the results and sorts — wasteful when
only the best k results are wanted.  DISCOVER2's optimization (in the spirit
of Fagin's Threshold Algorithm) executes interpretations in rank order and
stops as soon as k results have scores no lower than the best possible score
of any unexecuted interpretation.

Here the score of a result row is the (normalized) probability of the
interpretation that produced it, so the upper bound for interpretation i+1..n
is simply P(Q_{i+1}) — monotonicity holds by construction.  The executor
reports how many interpretations it actually ran, which the ablation bench
compares against the naive execute-everything strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.interpretation import Interpretation
from repro.db.backends.base import StorageBackend

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> engine import cycle
    from repro.engine.cache import ResultCache


@dataclass(frozen=True)
class TopKResult:
    """One emitted result row with its provenance."""

    score: float
    interpretation_rank: int  # 1-based rank of the producing interpretation
    row: tuple

    def row_uids(self) -> tuple[tuple[str, Any], ...]:
        return tuple(t.uid for t in self.row)


@dataclass
class TopKStatistics:
    """Work accounting for the early-stopping comparison.

    ``interpretations_executed`` counts *actual* ``execute_path`` runs: an
    interpretation whose rows come out of the result cache costs no execution
    and shows up in ``cache_hits`` instead.
    """

    interpretations_executed: int = 0
    rows_materialized: int = 0
    stopped_early: bool = False
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass
class TopKExecutor:
    """Executes a ranked interpretation list with TA-style early stopping."""

    database: StorageBackend
    #: Per-interpretation execution cap (guards pathological fan-out).
    per_query_limit: int | None = 5_000
    #: Optional cross-session result cache (see ``repro.engine.cache``):
    #: interpretations whose rows are cached are never re-executed.
    cache: "ResultCache | None" = None
    statistics: TopKStatistics = field(default_factory=TopKStatistics)

    def _rows_for(self, interpretation: Interpretation) -> list[tuple]:
        """Result rows of one interpretation, through the cache when present."""
        if self.cache is None:
            self.statistics.interpretations_executed += 1
            return interpretation.execute(self.database, limit=self.per_query_limit)
        query = interpretation.to_structured_query()
        rows = self.cache.get(query, self.per_query_limit)
        if rows is not None:
            self.statistics.cache_hits += 1
            return rows
        self.statistics.cache_misses += 1
        self.statistics.interpretations_executed += 1
        rows = query.execute(self.database, limit=self.per_query_limit)
        self.cache.put(query, self.per_query_limit, rows)
        return rows

    def execute(
        self,
        ranked: list[tuple[Interpretation, float]],
        k: int,
    ) -> list[TopKResult]:
        """Top-``k`` result rows across the ranked interpretations.

        ``ranked`` must be sorted by decreasing probability (the output of
        ``rank_interpretations``); rows inherit their interpretation's score,
        and execution stops once ``k`` rows beat every remaining upper bound.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        self.statistics = TopKStatistics()
        if k == 0:
            return []
        results: list[TopKResult] = []
        seen_rows: set[tuple] = set()
        for position, (interpretation, score) in enumerate(ranked):
            # Early stop: the next interpretation's score is the upper bound
            # on every future row; if k rows already meet it, we are done.
            if len(results) >= k and results[k - 1].score >= score:
                self.statistics.stopped_early = True
                break
            rows = self._rows_for(interpretation)
            self.statistics.rows_materialized += len(rows)
            for row in rows:
                uids = tuple(t.uid for t in row)
                if uids in seen_rows:
                    continue  # union semantics across interpretations
                seen_rows.add(uids)
                results.append(
                    TopKResult(score=score, interpretation_rank=position + 1, row=row)
                )
            results.sort(key=lambda r: (-r.score, r.interpretation_rank, r.row_uids()))
        return results[:k]

    def execute_naive(
        self,
        ranked: list[tuple[Interpretation, float]],
        k: int,
    ) -> list[TopKResult]:
        """The baseline: run every interpretation, union, sort, cut at k."""
        self.statistics = TopKStatistics()
        results: list[TopKResult] = []
        seen_rows: set[tuple] = set()
        for position, (interpretation, score) in enumerate(ranked):
            rows = self._rows_for(interpretation)
            self.statistics.rows_materialized += len(rows)
            for row in rows:
                uids = tuple(t.uid for t in row)
                if uids in seen_rows:
                    continue
                seen_rows.add(uids)
                results.append(
                    TopKResult(score=score, interpretation_rank=position + 1, row=row)
                )
        results.sort(key=lambda r: (-r.score, r.interpretation_rank, r.row_uids()))
        return results[:k]
