"""Top-k query processing with early stopping (Section 2.2.5).

Given a relevance-ranked list of query interpretations, the naive strategy
executes every interpretation, unions the results and sorts — wasteful when
only the best k results are wanted.  DISCOVER2's optimization (in the spirit
of Fagin's Threshold Algorithm) executes interpretations in rank order and
stops as soon as k results have scores no lower than the best possible score
of any unexecuted interpretation.

Here the score of a result row is the (normalized) probability of the
interpretation that produced it, so the upper bound for interpretation i+1..n
is simply P(Q_{i+1}) — monotonicity holds by construction.  The executor
reports how many interpretations it actually ran, which the ablation bench
compares against the naive execute-everything strategy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.interpretation import Interpretation
from repro.db.backends.base import StorageBackend

#: "No lookahead row pulled yet" marker of the streamed consumer (``None``
#: means the stream is exhausted, so it cannot double as the marker).
_PENDING = object()

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> engine import cycle
    from repro.core.query import StructuredQuery
    from repro.engine.cache import ResultCache


@dataclass(frozen=True)
class TopKResult:
    """One emitted result row with its provenance."""

    score: float
    interpretation_rank: int  # 1-based rank of the producing interpretation
    row: tuple

    def row_uids(self) -> tuple[tuple[str, Any], ...]:
        return tuple(t.uid for t in self.row)


@dataclass
class TopKStatistics:
    """Work accounting for the early-stopping and batching comparisons.

    ``interpretations_executed`` counts *actual* interpretation executions: an
    interpretation whose rows come out of the result cache costs no execution
    and shows up in ``cache_hits`` instead.  ``sql_statements`` counts the
    physical statements those executions needed, as reported by the backend
    (a provably-empty selection costs none) — at most one per interpretation
    sequentially, (much) smaller when the backend batches several
    interpretations per ``UNION ALL`` statement.
    """

    interpretations_executed: int = 0
    rows_materialized: int = 0
    stopped_early: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    #: Physical query statements issued against the backend.
    sql_statements: int = 0
    #: Number of batched execution rounds (0 = sequential execution).
    batches: int = 0
    #: Rows consumed from backend cursor streams (streaming execution only;
    #: the materializing strategies leave it 0).
    rows_streamed: int = 0
    #: Rows the backend had already produced (materialized by a fallback,
    #: prefetched into a cursor chunk) that the TA bound never consumed — a
    #: lower bound of the work streaming avoided, since rows a closed cursor
    #: never computed cannot be counted at all.
    rows_short_circuited: int = 0
    #: Size of the streaming strategy's first execution batch (None outside
    #: streaming execution) — shrunk below min(batch, k) when observed
    #: selectivity says fewer interpretations will satisfy the TA bound.
    first_batch_size: int | None = None
    #: Rows contributed per 1-based interpretation rank (execution only —
    #: cache hits do not appear here), for ``--explain`` attribution.
    attribution: dict[int, int] = field(default_factory=dict)
    #: Why an interpretation could not share its batch's ``UNION ALL``
    #: statement (1-based rank -> backend-reported reason, e.g. the
    #: parameter budget overflowed), for ``--explain``.
    fallback_reasons: dict[int, str] = field(default_factory=dict)
    #: Rows contributed per storage shard (sharded backends only).
    shard_rows: dict[int, int] = field(default_factory=dict)
    #: The scatter slot each executed interpretation partitioned on (1-based
    #: rank -> backend-reported label; sharded backends only).
    scatter_slots: dict[int, str] = field(default_factory=dict)
    #: The cost model's estimated result rows per executed interpretation
    #: (1-based rank -> estimate; only ranks the planner could estimate).
    #: The engine compares these against ``attribution`` to calibrate the
    #: estimator and to render estimated-vs-actual in ``--explain``.
    estimated_rows: dict[int, float] = field(default_factory=dict)
    #: What the cost pass changed about each executed interpretation's plan
    #: (1-based rank -> backend-reported label, e.g. a join reorder), for
    #: the chosen-vs-default lines in ``--explain``.
    plan_choices: dict[int, str] = field(default_factory=dict)
    #: True when the executor's cache is subsumption-aware (the semantic
    #: layer); gates the exact-vs-subsumption split in ``--explain``.
    semantic_cache: bool = False
    #: Cache hits answered by plan subsumption (filter/truncate of a
    #: subsuming cached entry, zero backend statements) during this query.
    #: ``cache_hits - cache_subsumption_hits`` is the exact-hit count.
    #: Delta-sampled from the shared cache around execution, so concurrent
    #: queries on one cache may blur attribution — never totals.
    cache_subsumption_hits: int = 0
    #: Rows subsuming entries held that this query's filters excluded.
    cache_rows_filtered: int = 0
    #: Rows this query's lower LIMIT cut from subsumption answers.
    cache_rows_truncated: int = 0
    #: Workload queries the engine's warmer replayed on open (constant per
    #: engine; repeated here so ``--explain`` can render it per query).
    warmed_queries: int = 0
    #: Read-connection-pool activity during this query on backends that pool
    #: readers (``leases``/``waits`` are deltas across this execution;
    #: ``peak_concurrency``/``size`` are the backend-lifetime peak and the
    #: configured cap).  Empty when the backend has no pool (memory, or
    #: ``read_pool_size=1``).  Concurrent queries on one backend may blur the
    #: delta attribution — never totals.
    read_pool: dict[str, int] = field(default_factory=dict)

    def rows_per_interpretation(self) -> float | None:
        """Observed execution selectivity: rows per executed interpretation.

        ``None`` when nothing executed (fully cache-served queries carry no
        signal).  The engine folds this observation into the estimate that
        sizes the next query's first streaming batch.
        """
        if not self.interpretations_executed:
            return None
        return sum(self.attribution.values()) / self.interpretations_executed

    def _merge_execution(
        self, executed, rank_of: "dict[int, int] | None" = None
    ) -> None:
        """Fold one ``BatchedExecution``/``StreamedExecution``'s bookkeeping
        into the statistics.

        ``rank_of`` maps the execution's spec positions to 1-based
        interpretation ranks (identity-on-rank-1 for single-spec calls).
        """
        self.sql_statements += executed.statements
        self.rows_short_circuited += getattr(executed, "rows_short_circuited", 0)
        for index, reason in executed.fallbacks.items():
            rank = rank_of[index] if rank_of is not None else index + 1
            self.fallback_reasons[rank] = reason
        for index, label in executed.scatter_slots.items():
            rank = rank_of[index] if rank_of is not None else index + 1
            self.scatter_slots[rank] = label
        for index, estimate in executed.estimated_rows.items():
            rank = rank_of[index] if rank_of is not None else index + 1
            self.estimated_rows[rank] = estimate
        for index, label in executed.plan_labels.items():
            rank = rank_of[index] if rank_of is not None else index + 1
            self.plan_choices[rank] = label
        for shard, rows in executed.shard_rows.items():
            self.shard_rows[shard] = self.shard_rows.get(shard, 0) + rows


@dataclass
class TopKExecutor:
    """Executes a ranked interpretation list with TA-style early stopping.

    With ``batch_size`` set (> 1), :meth:`execute` works through the ranked
    list in batches instead of one interpretation per round-trip: each batch's
    cache misses travel together through the backend's
    ``execute_paths_batched`` — one ``UNION ALL`` statement on backends with
    native batching, a transparent per-path fallback elsewhere — and the
    early-stopping bound is checked at batch boundaries.  The returned top-k
    rows are identical to sequential execution either way (a batch can only
    add rows that sort *after* the already-confirmed top-k).
    """

    database: StorageBackend
    #: Per-interpretation execution cap (guards pathological fan-out).
    per_query_limit: int | None = 5_000
    #: Optional cross-session result cache (see ``repro.engine.cache``):
    #: interpretations whose rows are cached are never re-executed.
    cache: "ResultCache | None" = None
    #: Interpretations per execution batch; ``None``/``1`` = sequential.
    batch_size: int | None = None
    #: Consume batches through ``execute_paths_streamed`` cursors instead of
    #: materialized lists: the TA bound then *stops consuming* — rows of
    #: interpretations past the stopping point are never fetched or decoded.
    #: Results are identical to the materializing strategies by construction.
    streaming: bool = False
    #: Observed rows-per-interpretation selectivity from earlier queries on
    #: this store (fed by the engine); sizes the first streaming batch.
    expected_rows_per_interpretation: float | None = None
    statistics: TopKStatistics = field(default_factory=TopKStatistics)

    def _rows_for(self, interpretation: Interpretation, rank: int = 1) -> list[tuple]:
        """Result rows of one interpretation, through the cache when present."""
        query = interpretation.to_structured_query()
        if self.cache is not None:
            rows = self.cache.get(query, self.per_query_limit)
            if rows is not None:
                self.statistics.cache_hits += 1
                return rows
            self.statistics.cache_misses += 1
        self.statistics.interpretations_executed += 1
        # A single-spec batch, so ``statements`` stays physically accurate on
        # every backend (e.g. a provably-empty selection costs SQLite no
        # statement) — the same currency the batched strategy reports.
        executed = self.database.execute_paths_batched(
            [query.path_spec()], limit=self.per_query_limit
        )
        self.statistics._merge_execution(executed, rank_of={0: rank})
        rows = executed.rows[0]
        if self.cache is not None:
            self.cache.put(query, self.per_query_limit, rows)
        return rows

    def execute(
        self,
        ranked: list[tuple[Interpretation, float]],
        k: int,
    ) -> list[TopKResult]:
        """Top-``k`` result rows across the ranked interpretations.

        ``ranked`` must be sorted by decreasing probability (the output of
        ``rank_interpretations``); rows inherit their interpretation's score,
        and execution stops once ``k`` rows beat every remaining upper bound.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        self.statistics = TopKStatistics()
        baseline = self._semantic_baseline()
        try:
            if k == 0:
                return []
            if self.batch_size is not None and self.batch_size > 1:
                if self.streaming:
                    return self._execute_streamed(ranked, k)
                return self._execute_batched(ranked, k)
            results: list[TopKResult] = []
            seen_rows: set[tuple] = set()
            for position, (interpretation, score) in enumerate(ranked):
                # Early stop: the next interpretation's score is the upper
                # bound on every future row; if k rows already meet it, we
                # are done.
                if len(results) >= k and results[k - 1].score >= score:
                    self.statistics.stopped_early = True
                    break
                rows = self._rows_for(interpretation, rank=position + 1)
                self._merge_rows(results, seen_rows, rows, score, rank=position + 1)
            return results[:k]
        finally:
            self._settle_semantic(baseline)

    def _semantic_baseline(self) -> tuple[int, int, int] | None:
        """Snapshot of the cache's subsumption counters before this query.

        ``None`` when the cache is not subsumption-aware.  The counters live
        on the (possibly shared) cache; the delta around one ``execute`` call
        attributes them per query, with the same concurrent-blur caveat as
        the engine's selectivity EWMA — attribution may blur, totals cannot.
        """
        stats = getattr(self.cache, "semantic_statistics", None)
        if stats is None:
            return None
        return (stats.subsumption_hits, stats.rows_filtered, stats.rows_truncated)

    def _settle_semantic(self, baseline: tuple[int, int, int] | None) -> None:
        """Record this query's subsumption deltas into the statistics."""
        if baseline is None:
            return
        stats = self.cache.semantic_statistics  # type: ignore[union-attr]
        self.statistics.semantic_cache = True
        self.statistics.cache_subsumption_hits = stats.subsumption_hits - baseline[0]
        self.statistics.cache_rows_filtered = stats.rows_filtered - baseline[1]
        self.statistics.cache_rows_truncated = stats.rows_truncated - baseline[2]

    def _merge_rows(
        self,
        results: list[TopKResult],
        seen_rows: set[tuple],
        rows: list[tuple],
        score: float,
        rank: int,
    ) -> None:
        """Union-merge one interpretation's rows into the result pool.

        The single definition of the result order — dedup on row identity
        across interpretations, then the ``(-score, rank, row identity)``
        total order — shared by every execution strategy, so the byte-parity
        the streaming/batching tests pin cannot drift between them.
        """
        self.statistics.rows_materialized += len(rows)
        for row in rows:
            uids = tuple(t.uid for t in row)
            if uids in seen_rows:
                continue  # union semantics across interpretations
            seen_rows.add(uids)
            results.append(
                TopKResult(score=score, interpretation_rank=rank, row=row)
            )
        results.sort(key=lambda r: (-r.score, r.interpretation_rank, r.row_uids()))

    def _execute_batched(
        self,
        ranked: list[tuple[Interpretation, float]],
        k: int,
    ) -> list[TopKResult]:
        """Batched execution: same top-k as :meth:`execute`, fewer statements.

        The threshold check moves to batch boundaries, so up to
        ``batch_size - 1`` extra interpretations may execute per query — but
        any row they produce scores at or below the confirmed ``k``-th result
        (and ties break on interpretation rank), so the returned top-k cannot
        change.  Cache hits are resolved first; only misses reach the backend.
        """
        assert self.batch_size is not None
        results: list[TopKResult] = []
        seen_rows: set[tuple] = set()
        position = 0
        # The first batch covers the k interpretations a worst-case top-k
        # needs; later batches (rare — most queries stop after one) use the
        # full configured size.  Keeps over-execution past the TA stopping
        # point small without giving up the one-statement common case.
        batch_size = self._first_batch_size(k)
        while position < len(ranked):
            if len(results) >= k and results[k - 1].score >= ranked[position][1]:
                self.statistics.stopped_early = True
                break
            batch = ranked[position : position + batch_size]
            batch_size = self.batch_size
            rows_by_offset: dict[int, list[tuple]] = {}
            pending: list[tuple[int, "StructuredQuery"]] = []
            for offset, (interpretation, _score) in enumerate(batch):
                query = interpretation.to_structured_query()
                if self.cache is not None:
                    rows = self.cache.get(query, self.per_query_limit)
                    if rows is not None:
                        self.statistics.cache_hits += 1
                        rows_by_offset[offset] = rows
                        continue
                    self.statistics.cache_misses += 1
                pending.append((offset, query))
            if pending:
                executed = self.database.execute_paths_batched(
                    [query.path_spec() for _offset, query in pending],
                    limit=self.per_query_limit,
                )
                self.statistics.batches += 1
                self.statistics._merge_execution(
                    executed,
                    rank_of={
                        i: position + offset + 1
                        for i, (offset, _query) in enumerate(pending)
                    },
                )
                self.statistics.interpretations_executed += len(pending)
                for (offset, query), rows in zip(pending, executed.rows):
                    rows_by_offset[offset] = rows
                    self.statistics.attribution[position + offset + 1] = len(rows)
                    if self.cache is not None:
                        self.cache.put(query, self.per_query_limit, rows)
            for offset, (_interpretation, score) in enumerate(batch):
                self._merge_rows(
                    results,
                    seen_rows,
                    rows_by_offset[offset],
                    score,
                    rank=position + offset + 1,
                )
            position += len(batch)
        return results[:k]

    def _first_batch_size(
        self,
        k: int,
        ranked: "list[tuple[Interpretation, float]] | None" = None,
    ) -> int:
        """Interpretations the first execution batch covers.

        The legacy bound — min(batch, k) interpretations, enough for a
        worst-case top-k where every interpretation yields one row — shrinks
        further under streaming when observed selectivity says fewer will do:
        with ~r rows per executed interpretation, ceil(k / r) of them are
        expected to satisfy the TA bound, and under-shooting costs only one
        more (smaller) statement because a streamed batch's unconsumed rows
        were never fetched anyway.  With ``ranked`` given (the streamed
        strategy passes it), the backend's per-interpretation cardinality
        estimates refine the global EWMA the same direction: walk the ranked
        prefix until the estimates cumulatively cover ``k``.  The
        materializing strategy keeps the legacy bound: there an extra batch
        means an extra fully materialized statement, which the shrink could
        easily cost more than it saves.
        """
        assert self.batch_size is not None
        base = max(2, min(self.batch_size, k))
        if not self.streaming:
            return base
        size = base
        estimate = self.expected_rows_per_interpretation
        if estimate and estimate > 0:
            size = min(size, math.ceil(k / estimate))
        if ranked is not None:
            cost_size = self._cost_batch_size(ranked, k, base)
            if cost_size is not None:
                size = min(size, cost_size)
        return max(1, size)

    def _cost_batch_size(
        self,
        ranked: "list[tuple[Interpretation, float]]",
        k: int,
        base: int,
    ) -> int | None:
        """Ranked prefix length whose estimated rows cumulatively cover ``k``.

        Asks the backend's cost model for each interpretation's estimated
        cardinality (never executing anything); ``None`` — on any estimator
        gap, or when even the legacy-bound prefix is not expected to reach
        ``k`` — means the estimates cannot justify a smaller first batch.
        """
        estimated_path_rows = getattr(self.database, "estimated_path_rows", None)
        if estimated_path_rows is None:
            return None
        total = 0.0
        walked = 0
        for interpretation, _score in ranked[:base]:
            spec = interpretation.to_structured_query().path_spec()
            estimate = estimated_path_rows(*spec, limit=self.per_query_limit)
            if estimate is None:
                return None
            walked += 1
            total += estimate
            if total >= k:
                return walked
        return None

    def _execute_streamed(
        self,
        ranked: list[tuple[Interpretation, float]],
        k: int,
    ) -> list[TopKResult]:
        """Streaming execution: the TA bound stops *consuming* the cursor.

        Batches plan exactly like :meth:`_execute_batched`, but rows arrive
        through one backend cursor stream in rank order and the threshold is
        re-checked between interpretations *inside* the batch: once k results
        beat the next interpretation's upper bound, the stream closes and the
        remaining interpretations' rows are never fetched, decoded or
        deduplicated — they count as neither executed nor missed.  Returned
        rows are identical to sequential execution: an interpretation, once
        started, is always drained completely (its own rows tie-break among
        themselves by row identity, so a partial drain could change the
        top-k), and interpretations past the stopping point can only
        contribute rows sorting after the confirmed top-k.
        """
        assert self.batch_size is not None
        self.statistics.first_batch_size = batch_size = self._first_batch_size(
            k, ranked
        )
        results: list[TopKResult] = []
        seen_rows: set[tuple] = set()
        position = 0
        stopped = False
        while position < len(ranked) and not stopped:
            if len(results) >= k and results[k - 1].score >= ranked[position][1]:
                self.statistics.stopped_early = True
                break
            batch = ranked[position : position + batch_size]
            batch_size = self.batch_size
            # Cache peek: hits resolve without touching the backend; the
            # rest stay pending and are only booked as misses if the TA
            # bound actually reaches them — an interpretation whose rows
            # were never consumed was not executed, so on the next run it
            # must look exactly as cold as it is now.
            cached: dict[int, list[tuple]] = {}
            pending: list[tuple[int, "StructuredQuery"]] = []
            for offset, (interpretation, _score) in enumerate(batch):
                query = interpretation.to_structured_query()
                if self.cache is not None:
                    rows = self.cache.get(query, self.per_query_limit)
                    if rows is not None:
                        cached[offset] = rows
                        continue
                pending.append((offset, query))
            spec_of_offset = {offset: i for i, (offset, _q) in enumerate(pending)}
            rank_of_spec = {
                i: position + offset + 1 for i, (offset, _q) in enumerate(pending)
            }
            execution = None
            lookahead: Any = _PENDING
            last_spec_consumed = -1
            try:
                for offset, (_interpretation, score) in enumerate(batch):
                    rank = position + offset + 1
                    if len(results) >= k and results[k - 1].score >= score:
                        self.statistics.stopped_early = True
                        stopped = True
                        break
                    if offset in cached:
                        rows = cached[offset]
                        self.statistics.cache_hits += 1
                    else:
                        if execution is None:
                            # The stream opens at the first pending
                            # interpretation the bound lets through (never,
                            # on a fully cache-served batch) and covers the
                            # batch's misses; statements execute lazily as
                            # the stream reaches them.
                            execution = self.database.execute_paths_streamed(
                                [query.path_spec() for _o, query in pending],
                                limit=self.per_query_limit,
                            )
                            self.statistics.batches += 1
                        spec = spec_of_offset[offset]
                        last_spec_consumed = spec
                        rows = []
                        while True:
                            if lookahead is _PENDING:
                                lookahead = next(execution.stream, None)
                            if lookahead is None or lookahead[0] != spec:
                                break  # this interpretation is drained
                            rows.append(lookahead[1])
                            lookahead = _PENDING
                        self.statistics.cache_misses += 1
                        self.statistics.interpretations_executed += 1
                        self.statistics.rows_streamed += len(rows)
                        self.statistics.attribution[rank] = len(rows)
                        if self.cache is not None:
                            self.cache.put(
                                pending[spec][1], self.per_query_limit, rows
                            )
                    self._merge_rows(results, seen_rows, rows, score, rank=rank)
            finally:
                if execution is not None:
                    execution.stream.close()
                    # Specs past the stopping point were planned but never
                    # consumed: like executed/missed counters, their
                    # per-spec explain entries must not report work that
                    # never happened (statements are already counted lazily).
                    for annotations in (
                        execution.fallbacks,
                        execution.scatter_slots,
                        execution.estimated_rows,
                        execution.plan_labels,
                    ):
                        for spec in [
                            s for s in annotations if s > last_spec_consumed
                        ]:
                            del annotations[spec]
                    # Statements, shard attribution and short-circuit counts
                    # settle only once the stream is closed.
                    self.statistics._merge_execution(execution, rank_of=rank_of_spec)
                    if lookahead is not _PENDING and lookahead is not None:
                        # The row pulled to detect the previous
                        # interpretation's boundary belongs to one the bound
                        # then stopped: delivered by the backend (it appears
                        # in shard_rows), never merged into results.
                        self.statistics.rows_short_circuited += 1
            position += len(batch)
        return results[:k]

    def execute_naive(
        self,
        ranked: list[tuple[Interpretation, float]],
        k: int,
    ) -> list[TopKResult]:
        """The baseline: run every interpretation, union, sort, cut at k."""
        self.statistics = TopKStatistics()
        baseline = self._semantic_baseline()
        results: list[TopKResult] = []
        seen_rows: set[tuple] = set()
        for position, (interpretation, score) in enumerate(ranked):
            rows = self._rows_for(interpretation, rank=position + 1)
            self.statistics.rows_materialized += len(rows)
            for row in rows:
                uids = tuple(t.uid for t in row)
                if uids in seen_rows:
                    continue
                seen_rows.add(uids)
                results.append(
                    TopKResult(score=score, interpretation_rank=position + 1, row=row)
                )
        results.sort(key=lambda r: (-r.score, r.interpretation_rank, r.row_uids()))
        self._settle_semantic(baseline)
        return results[:k]
