"""Synthetic datasets and workloads.

The thesis evaluates on crawls of IMDB and a lyrics site, MSN/AOL query logs,
Freebase and YAGO — none of which can ship with a reproduction.  This package
provides deterministic synthetic substitutes that preserve the properties the
algorithms depend on: schema shapes, keyword ambiguity (shared vocabulary
across attributes/tables), Zipf-like term distributions, big flat
domain-structured schemas (Freebase) and scale-free ontologies with shared
instances (YAGO).  See DESIGN.md for the substitution rationale.
"""

from repro.datasets.imdb import build_imdb
from repro.datasets.lyrics import build_lyrics
from repro.datasets.workload import WorkloadQuery, imdb_workload, lyrics_workload

__all__ = [
    "WorkloadQuery",
    "build_imdb",
    "build_lyrics",
    "imdb_workload",
    "lyrics_workload",
]
