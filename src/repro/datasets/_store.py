"""Persistent-store reuse for the dataset builders.

A builder pointed at a populated persistent store must either reuse exactly
the instance that was asked for, or refuse — silently returning a
differently-built dataset corrupts any experiment that varies generation
parameters over a fixed ``db_path``.  Two guards compose here:

* a **fingerprint** of all generation parameters (including the seed),
  written into the store's metadata on first build and compared on reuse,
* **row-count checks** per table, which also protect stores created before
  fingerprints existed or through other code paths.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.db.backends import StorageBackend


#: Storage-layout knobs that must never enter a dataset fingerprint: the
#: *logical* instance is identical however its rows are stored, so folding
#: e.g. the shard count in would make a 2-shard and a 4-shard build of the
#: same dataset look like different instances (refusing valid reuse and
#: splitting the derived-result caches for no reason).
_LAYOUT_PARAMS = frozenset({"backend", "db_path", "shards"})


def fingerprint(dataset: str, **params) -> str:
    """Canonical string identifying one exact generated instance.

    ``params`` are *generation* parameters only — passing a storage-layout
    knob (``backend``/``db_path``/``shards``) is a builder bug and raises.
    """
    leaked = sorted(_LAYOUT_PARAMS.intersection(params))
    if leaked:
        raise ValueError(
            f"storage-layout parameter(s) {', '.join(leaked)} do not belong "
            f"in a dataset fingerprint"
        )
    return json.dumps({"dataset": dataset, **params}, sort_keys=True)


def _fingerprint_key(built_fingerprint: str) -> str:
    """Metadata key for one dataset's fingerprint, namespaced per dataset.

    Several datasets may coexist in one persistent file (tables are
    namespaced); a single global key would let the second dataset overwrite
    the first one's fingerprint and break its reuse check.
    """
    return "dataset_fingerprint:" + json.loads(built_fingerprint)["dataset"]


def try_reuse(
    db: StorageBackend,
    db_path,
    label: str,
    requested_fingerprint: str,
    expected_counts: Mapping[str, int],
) -> bool:
    """True iff ``db`` already holds exactly the requested instance.

    Returns False for non-persistent or empty stores (the caller should
    generate).  Raises ``ValueError`` — closing ``db`` first — when the store
    holds a *different* instance; on success the inverted index is rebuilt
    from the stored tables.
    """
    if not (db.is_persistent and db.has_rows()):
        return False
    stored = db.get_metadata(_fingerprint_key(requested_fingerprint))
    mismatched = sorted(
        name
        for name, count in expected_counts.items()
        if len(db.relation(name)) != count
    )
    if mismatched or (stored is not None and stored != requested_fingerprint):
        shards = getattr(db, "shards", None)
        db.close()
        detail = (
            f"row counts differ for {', '.join(mismatched)}"
            if mismatched
            else "generation parameters differ"
        )
        if shards is not None:
            detail += f"; store layout: {shards} shard(s)"
        raise ValueError(
            f"store at {db_path!r} holds a different {label} instance ({detail})"
        )
    db.build_indexes()
    return True


def mark_built(db: StorageBackend, built_fingerprint: str) -> None:
    """Record the fingerprint of a freshly generated instance."""
    db.set_metadata(_fingerprint_key(built_fingerprint), built_fingerprint)
