"""Synthetic Freebase-scale database (Chapter 5's large-scale substrate).

Freebase (as used by FreeQ) is a big *flat* schema: 7,000+ relational tables
organized into 100+ topical domains, each domain a small cluster of entity
and link tables, with entity names shared heavily across domains (the same
person appears in /film, /music, /award ...).  The generator reproduces that
shape at configurable scale:

* ``n_domains`` domains, each with four entity tables (person, work,
  organization, place) and three link tables — 7 tables per domain;
* textual attributes tagged with a semantic type, from which the two-layer
  ontology (``Thing -> type -> type/domain``) of Section 5.5 is built;
* entity vocabulary drawn from shared pools, so one keyword matches
  attributes in *many* domains — the fan-out that makes per-attribute QCOs
  uninformative and ontology QCOs essential.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from pathlib import Path

from repro.datasets import _store, names
from repro.db.backends import StorageBackend, create_backend
from repro.db.schema import Attribute, Schema, Table
from repro.freeq.ontology import SchemaOntology, build_type_domain_ontology

#: Base domain vocabulary; combined with suffixes to reach 100+ domains.
_DOMAIN_BASES = [
    "film", "music", "book", "tv", "theater", "game", "sport", "science",
    "art", "food", "travel", "fashion", "radio", "comic", "opera", "dance",
    "architecture", "aviation", "astronomy", "biology", "chemistry", "cycling",
    "economics", "education", "engineering", "geography", "geology", "history",
    "law", "medicine",
]
_DOMAIN_SUFFIXES = ["", "_awards", "_events", "_people", "_works"]


def domain_names(n_domains: int) -> list[str]:
    """Deterministic list of ``n_domains`` distinct domain names."""
    out: list[str] = []
    for suffix in _DOMAIN_SUFFIXES:
        for base in _DOMAIN_BASES:
            out.append(f"{base}{suffix}")
            if len(out) == n_domains:
                return out
    # Fall back to numbered domains beyond the combinatorial pool.
    index = 0
    while len(out) < n_domains:
        out.append(f"domain_{index}")
        index += 1
    return out


@dataclass
class FreebaseInstance:
    """The synthetic database plus its ontology layer and domain list."""

    database: StorageBackend
    ontology: SchemaOntology
    domains: list[str]


def build_freebase(
    seed: int = 23,
    n_domains: int = 20,
    rows_per_entity_table: int = 12,
    links_per_table: int = 16,
    backend: str | StorageBackend = "memory",
    db_path: str | Path | None = None,
    shards: int | None = None,
) -> FreebaseInstance:
    """Build a domain-structured schema of ``7 * n_domains`` tables.

    ``backend``/``db_path`` select the storage engine; a persistent backend
    with existing rows at ``db_path`` skips row generation (the schema and
    ontology are deterministic, so they are always rebuilt in place).  Every
    requested domain must be populated in the stored instance; a mismatch
    raises ``ValueError``.
    """
    rng = random.Random(seed)
    schema = Schema()
    assignments: list[tuple[str, str, str, str]] = []
    domains = domain_names(n_domains)

    for domain in domains:
        person = f"{domain}_person"
        work = f"{domain}_work"
        org = f"{domain}_org"
        place = f"{domain}_place"
        schema.add_table(Table(person, [Attribute("name"), Attribute("id", textual=False)]))
        schema.add_table(Table(work, [Attribute("title"), Attribute("id", textual=False)]))
        schema.add_table(Table(org, [Attribute("name"), Attribute("id", textual=False)]))
        schema.add_table(Table(place, [Attribute("name"), Attribute("id", textual=False)]))
        schema.add_table(Table(f"{domain}_person_work", [Attribute("id", textual=False)]))
        schema.add_table(Table(f"{domain}_work_org", [Attribute("id", textual=False)]))
        schema.add_table(Table(f"{domain}_org_place", [Attribute("id", textual=False)]))
        schema.link(f"{domain}_person_work", person, "person_id")
        schema.link(f"{domain}_person_work", work, "work_id")
        schema.link(f"{domain}_work_org", work, "work_id")
        schema.link(f"{domain}_work_org", org, "org_id")
        schema.link(f"{domain}_org_place", org, "org_id")
        schema.link(f"{domain}_org_place", place, "place_id")
        assignments.extend(
            [
                (person, "name", "Person", domain),
                (work, "title", "CreativeWork", domain),
                (org, "name", "Organization", domain),
                (place, "name", "Place", domain),
            ]
        )

    db = create_backend(backend, schema, path=db_path, shards=shards)
    fp = _store.fingerprint(
        "freebase",
        seed=seed,
        n_domains=n_domains,
        rows_per_entity_table=rows_per_entity_table,
        links_per_table=links_per_table,
    )
    half = max(2, rows_per_entity_table // 2)
    per_domain = {
        "person": rows_per_entity_table,
        "work": rows_per_entity_table,
        "org": half,
        "place": half,
        "person_work": links_per_table,
        "work_org": links_per_table,
        "org_place": links_per_table,
    }
    expected = {
        f"{domain}_{suffix}": count
        for domain in domains
        for suffix, count in per_domain.items()
    }
    reused = _store.try_reuse(db, db_path, "Freebase", fp, expected)
    domains_to_fill = [] if reused else domains
    for domain in domains_to_fill:
        person_ids = list(range(rows_per_entity_table))
        for i in person_ids:
            name = f"{rng.choice(names.FIRST_NAMES)} {rng.choice(names.SURNAMES)}"
            db.insert(f"{domain}_person", {"id": i, "name": name})
        work_ids = list(range(rows_per_entity_table))
        for i in work_ids:
            title = " ".join(rng.sample(names.TITLE_WORDS, rng.choice([1, 2])))
            db.insert(f"{domain}_work", {"id": i, "title": title})
        org_ids = list(range(half))
        for i in org_ids:
            org_name = f"{rng.choice(names.COMPANY_WORDS)} {rng.choice(names.COMPANY_WORDS)}"
            db.insert(f"{domain}_org", {"id": i, "name": org_name})
        place_ids = list(range(half))
        for i in place_ids:
            db.insert(f"{domain}_place", {"id": i, "name": rng.choice(names.PLACES)})
        for i in range(links_per_table):
            db.insert(
                f"{domain}_person_work",
                {"id": i, "person_id": rng.choice(person_ids), "work_id": rng.choice(work_ids)},
            )
            db.insert(
                f"{domain}_work_org",
                {"id": i, "work_id": rng.choice(work_ids), "org_id": rng.choice(org_ids)},
            )
            db.insert(
                f"{domain}_org_place",
                {"id": i, "org_id": rng.choice(org_ids), "place_id": rng.choice(place_ids)},
            )

    if not reused:  # try_reuse already built the index over the stored rows
        # Fingerprint first: build_indexes() persists index postings keyed
        # on the content fingerprint, which must already see the dataset
        # identity.
        _store.mark_built(db, fp)
        db.build_indexes()
    # Domain groups (a balanced partition of ~sqrt(n) buckets) form the
    # intermediate ontology layer that keeps concept drill-down logarithmic.
    group_size = max(2, int(math.sqrt(len(domains))))
    groups = {
        domain: f"area_{index // group_size}" for index, domain in enumerate(domains)
    }
    ontology = build_type_domain_ontology(assignments, domain_groups=groups)
    return FreebaseInstance(database=db, ontology=ontology, domains=domains)


def freebase_workload(
    instance: FreebaseInstance,
    n_queries: int = 20,
    seed: int = 29,
    n_keywords: int = 2,
):
    """Multi-concept queries over random domains, with ground truth.

    ``n_keywords=2`` emits person+work queries over the 2-join chain;
    ``n_keywords=3`` adds an organization keyword over the 4-join chain —
    the query-complexity classes of Table 5.2 / Fig. 5.4.
    """
    from repro.core.keywords import KeywordQuery
    from repro.db.tokenizer import tokenize
    from repro.datasets.workload import WorkloadQuery
    from repro.user.oracle import IntendedInterpretation, value_spec

    if n_keywords not in (2, 3):
        raise ValueError("n_keywords must be 2 or 3")
    rng = random.Random(seed)
    db = instance.database
    out: list[WorkloadQuery] = []
    seen: set[str] = set()
    attempts = 0
    while len(out) < n_queries and attempts < n_queries * 60:
        attempts += 1
        domain = rng.choice(instance.domains)
        links = list(db.relation(f"{domain}_person_work"))
        if not links:
            continue
        link = rng.choice(links)
        person = db.relation(f"{domain}_person").get(link.get("person_id"))
        work = db.relation(f"{domain}_work").get(link.get("work_id"))
        if person is None or work is None:
            continue
        person_tokens = tokenize(person.get("name", ""))
        work_tokens = tokenize(work.get("title", ""))
        if not person_tokens or not work_tokens:
            continue
        surname = person_tokens[-1]
        title_word = rng.choice(work_tokens)
        if surname == title_word:
            continue
        terms = [surname, title_word]
        bindings = {
            0: value_spec(f"{domain}_person", "name"),
            1: value_spec(f"{domain}_work", "title"),
        }
        path: tuple[str, ...] = (
            f"{domain}_person",
            f"{domain}_person_work",
            f"{domain}_work",
        )
        if n_keywords == 3:
            work_orgs = [
                row
                for row in db.relation(f"{domain}_work_org")
                if row.get("work_id") == work.key
            ]
            if not work_orgs:
                continue
            org = db.relation(f"{domain}_org").get(work_orgs[0].get("org_id"))
            if org is None:
                continue
            org_tokens = tokenize(org.get("name", ""))
            if not org_tokens:
                continue
            org_word = org_tokens[0]
            if org_word in terms:
                continue
            terms.append(org_word)
            bindings[2] = value_spec(f"{domain}_org", "name")
            path = path + (f"{domain}_work_org", f"{domain}_org")
        text = " ".join(terms)
        if text in seen:
            continue
        seen.add(text)
        query = KeywordQuery.from_terms(terms)
        intended = IntendedInterpretation(bindings=bindings, template_path=path)
        out.append(
            WorkloadQuery(query, intended, "mc", f"person_work_{n_keywords}kw", "freebase")
        )
    return out
