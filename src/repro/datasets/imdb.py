"""Synthetic IMDB-like database (7 tables, Section 3.8.1).

Schema (entity tables carry textual attributes; relationship tables link
them, mirroring Fig. 2.2):

* ``movie(id, title, year, plot)``
* ``actor(id, name)``
* ``director(id, name)``
* ``company(id, name)``
* ``acts(id, actor_id, movie_id, role)``
* ``directs(id, director_id, movie_id)``
* ``produced(id, company_id, movie_id)``

Person names are drawn from a shared surname pool that also feeds movie
titles and roles, so queries like "hanks terminal" or "london" are genuinely
ambiguous — the property all of Chapter 3/4's experiments depend on.
"""

from __future__ import annotations

import random

from pathlib import Path

from repro.datasets import _store, names
from repro.db.backends import StorageBackend, create_backend
from repro.db.schema import Attribute, Schema, Table


def imdb_schema() -> Schema:
    schema = Schema()
    schema.add_table(
        Table(
            "movie",
            [
                Attribute("title"),
                Attribute("year"),
                Attribute("plot"),
                Attribute("tagline"),
                Attribute("id", textual=False),
            ],
        )
    )
    schema.add_table(
        Table("actor", [Attribute("name"), Attribute("bio"), Attribute("id", textual=False)])
    )
    schema.add_table(
        Table("director", [Attribute("name"), Attribute("bio"), Attribute("id", textual=False)])
    )
    schema.add_table(
        Table("company", [Attribute("name"), Attribute("location"), Attribute("id", textual=False)])
    )
    schema.add_table(Table("acts", [Attribute("role"), Attribute("id", textual=False)]))
    schema.add_table(Table("directs", [Attribute("id", textual=False)]))
    schema.add_table(Table("produced", [Attribute("id", textual=False)]))
    schema.link("acts", "actor")
    schema.link("acts", "movie")
    schema.link("directs", "director")
    schema.link("directs", "movie")
    schema.link("produced", "company")
    schema.link("produced", "movie")
    return schema


def _person_name(rng: random.Random) -> str:
    return f"{rng.choice(names.FIRST_NAMES)} {rng.choice(names.SURNAMES)}"


def _movie_title(rng: random.Random) -> str:
    n_words = rng.choice([1, 1, 2])
    words = rng.sample(names.TITLE_WORDS, n_words)
    return " ".join(words)


def _plot(rng: random.Random) -> str:
    vocabulary = names.TITLE_WORDS + names.PLACES + names.SURNAMES
    return " ".join(rng.choice(vocabulary) for _ in range(6))


def _bio(rng: random.Random) -> str:
    """Person biography: mixes places, surnames and title words — the text
    that makes queries like "london" or "cruise" genuinely ambiguous."""
    vocabulary = names.PLACES + names.SURNAMES + names.TITLE_WORDS + names.GENRES
    return " ".join(rng.choice(vocabulary) for _ in range(5))


def build_imdb(
    seed: int = 7,
    n_movies: int = 150,
    n_actors: int = 90,
    n_directors: int = 30,
    n_companies: int = 20,
    acts_per_movie: int = 3,
    backend: str | StorageBackend = "memory",
    db_path: str | Path | None = None,
    shards: int | None = None,
) -> StorageBackend:
    """Build and index a deterministic synthetic IMDB instance.

    ``backend``/``db_path`` select the storage engine (see
    :mod:`repro.db.backends`); ``shards`` is the partition count of sharding
    backends — a storage-layout knob, deliberately *not* part of the dataset
    fingerprint (the logical instance is identical at any shard count).
    When a persistent backend already holds data at ``db_path`` the
    generator is skipped entirely: the inverted index is rebuilt from the
    stored tables, not by re-ingesting rows.  The stored instance must match
    the requested size parameters; a mismatch raises ``ValueError`` instead
    of silently returning a different dataset.
    """
    rng = random.Random(seed)
    db = create_backend(backend, imdb_schema(), path=db_path, shards=shards)
    fp = _store.fingerprint(
        "imdb",
        seed=seed,
        n_movies=n_movies,
        n_actors=n_actors,
        n_directors=n_directors,
        n_companies=n_companies,
        acts_per_movie=acts_per_movie,
    )
    expected = {
        "actor": n_actors,
        "director": n_directors,
        "company": n_companies,
        "movie": n_movies,
        "acts": n_movies * min(acts_per_movie, n_actors),
        "directs": n_movies,
        "produced": n_movies,
    }
    if _store.try_reuse(db, db_path, "IMDB", fp, expected):
        return db

    actor_ids = []
    for i in range(n_actors):
        tup = db.insert("actor", {"id": i, "name": _person_name(rng), "bio": _bio(rng)})
        actor_ids.append(tup.key)
    director_ids = []
    for i in range(n_directors):
        tup = db.insert("director", {"id": i, "name": _person_name(rng), "bio": _bio(rng)})
        director_ids.append(tup.key)
    company_ids = []
    for i in range(n_companies):
        name = f"{rng.choice(names.COMPANY_WORDS)} {rng.choice(names.COMPANY_WORDS)}"
        tup = db.insert(
            "company", {"id": i, "name": name, "location": rng.choice(names.PLACES)}
        )
        company_ids.append(tup.key)

    link_id = 0
    for i in range(n_movies):
        year = rng.randint(1970, 2012)
        db.insert(
            "movie",
            {
                "id": i,
                "title": _movie_title(rng),
                "year": str(year),
                "plot": _plot(rng),
                "tagline": " ".join(rng.sample(names.TITLE_WORDS, 3)),
            },
        )
        cast = rng.sample(actor_ids, min(acts_per_movie, len(actor_ids)))
        for actor_id in cast:
            db.insert(
                "acts",
                {
                    "id": link_id,
                    "actor_id": actor_id,
                    "movie_id": i,
                    "role": rng.choice(names.ROLE_WORDS),
                },
            )
            link_id += 1
        db.insert(
            "directs",
            {"id": link_id, "director_id": rng.choice(director_ids), "movie_id": i},
        )
        link_id += 1
        db.insert(
            "produced",
            {"id": link_id, "company_id": rng.choice(company_ids), "movie_id": i},
        )
        link_id += 1

    # Fingerprint first: build_indexes() persists index postings keyed on
    # the content fingerprint, which must already see the dataset identity.
    _store.mark_built(db, fp)
    db.build_indexes()
    return db
