"""Synthetic Lyrics database (5 tables, Section 3.8.1).

Schema mirrors the Lyrics crawl of Liu et al. used by the thesis:

* ``artist(id, name)``
* ``album(id, title, year)``
* ``song(id, title, words)``
* ``artist_album(id, artist_id, album_id)``
* ``album_song(id, album_id, song_id)``

The dominant join pattern is the 5-table chain
``song |x| album_song |x| album |x| artist_album |x| artist`` — the template
whose query-log frequency of ~0.85 drives the (ATF, TLog) gains on Lyrics in
Fig. 3.5b.
"""

from __future__ import annotations

import random

from pathlib import Path

from repro.datasets import _store, names
from repro.db.backends import StorageBackend, create_backend
from repro.db.schema import Attribute, Schema, Table


def lyrics_schema() -> Schema:
    schema = Schema()
    schema.add_table(Table("artist", [Attribute("name"), Attribute("id", textual=False)]))
    schema.add_table(
        Table("album", [Attribute("title"), Attribute("year"), Attribute("id", textual=False)])
    )
    schema.add_table(
        Table("song", [Attribute("title"), Attribute("words"), Attribute("id", textual=False)])
    )
    schema.add_table(Table("artist_album", [Attribute("id", textual=False)]))
    schema.add_table(Table("album_song", [Attribute("id", textual=False)]))
    schema.link("artist_album", "artist")
    schema.link("artist_album", "album")
    schema.link("album_song", "album")
    schema.link("album_song", "song")
    return schema


def build_lyrics(
    seed: int = 11,
    n_artists: int = 50,
    albums_per_artist: int = 2,
    songs_per_album: int = 5,
    backend: str | StorageBackend = "memory",
    db_path: str | Path | None = None,
    shards: int | None = None,
) -> StorageBackend:
    """Build and index a deterministic synthetic Lyrics instance.

    ``backend``/``db_path``/``shards`` select the storage engine (``shards``
    is a storage-layout knob for sharding backends, never part of the
    dataset fingerprint); a persistent backend with existing rows at
    ``db_path`` short-circuits generation and rebuilds the index from the
    stored tables.  The stored instance must match the requested size
    parameters; a mismatch raises ``ValueError``.
    """
    rng = random.Random(seed)
    db = create_backend(backend, lyrics_schema(), path=db_path, shards=shards)
    fp = _store.fingerprint(
        "lyrics",
        seed=seed,
        n_artists=n_artists,
        albums_per_artist=albums_per_artist,
        songs_per_album=songs_per_album,
    )
    expected = {
        "artist": n_artists,
        "album": n_artists * albums_per_artist,
        "song": n_artists * albums_per_artist * songs_per_album,
    }
    if _store.try_reuse(db, db_path, "Lyrics", fp, expected):
        return db

    link_id = 0
    album_id = 0
    song_id = 0
    for artist_id in range(n_artists):
        # A third of stage names use title-word surnames ("Joss Stone",
        # "Summer") so artist/song-title interpretations genuinely collide.
        if rng.random() < 0.35:
            surname = rng.choice(names.TITLE_WORDS)
        else:
            surname = rng.choice(names.SURNAMES)
        name = f"{rng.choice(names.FIRST_NAMES)} {surname}"
        db.insert("artist", {"id": artist_id, "name": name})
        for _ in range(albums_per_artist):
            title = " ".join(rng.sample(names.TITLE_WORDS, rng.choice([1, 2])))
            db.insert(
                "album",
                {"id": album_id, "title": title, "year": str(rng.randint(1980, 2012))},
            )
            db.insert(
                "artist_album",
                {"id": link_id, "artist_id": artist_id, "album_id": album_id},
            )
            link_id += 1
            for _ in range(songs_per_album):
                song_title = " ".join(rng.sample(names.TITLE_WORDS, rng.choice([1, 2])))
                lyric_pool = names.TITLE_WORDS + names.SURNAMES + names.PLACES
                words = " ".join(rng.choice(lyric_pool) for _ in range(8))
                db.insert(
                    "song", {"id": song_id, "title": song_title, "words": words}
                )
                db.insert(
                    "album_song",
                    {"id": link_id, "album_id": album_id, "song_id": song_id},
                )
                link_id += 1
                song_id += 1
            album_id += 1

    # Fingerprint first: build_indexes() persists index postings keyed on
    # the content fingerprint, which must already see the dataset identity.
    _store.mark_built(db, fp)
    db.build_indexes()
    return db
