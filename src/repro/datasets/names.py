"""Shared vocabulary pools for the synthetic datasets.

Keyword ambiguity — the phenomenon every chapter of the thesis studies — is
manufactured the way it arises in the real IMDB/Lyrics crawls: the same
surface terms occur as person surnames, movie/song title words and place
names (the thesis' running examples: "London" the city vs. Jack London the
author; "Cruise" the actor vs. a movie called "Cruise").  The pools below
deliberately overlap.
"""

FIRST_NAMES = [
    "tom", "james", "mary", "anna", "peter", "laura", "diego", "colin",
    "andy", "brad", "emma", "lucas", "nina", "oscar", "julia", "victor",
    "alice", "bruno", "clara", "david", "elena", "frank", "grace", "henry",
    "irene", "jack", "karen", "leo", "maria", "nathan",
]

#: Surnames; the starred ones double as title words below.
SURNAMES = [
    "hanks", "cruise", "london", "garcia", "gilbert", "boxleitner",
    "soderbergh", "luna", "pitt", "carey", "baily", "conners", "blake",
    "winslet", "freeman", "stone", "rivers", "woods", "summer", "winter",
    "page", "bell", "fox", "wolf", "knight", "bishop", "carter", "mason",
    "parker", "taylor",
]

#: Title vocabulary; overlaps with surnames and places on purpose.
TITLE_WORDS = [
    "terminal", "titanic", "frida", "emotions", "consideration", "cool",
    "london", "cruise", "stone", "rivers", "woods", "summer", "winter",
    "night", "dream", "storm", "ocean", "shadow", "garden", "mirror",
    "silence", "horizon", "echo", "ember", "crystal", "falcon", "harbor",
    "island", "jungle", "meadow",
]

PLACES = [
    "london", "paris", "berlin", "lyon", "geneva", "hannover", "madrid",
    "vienna", "brisbane", "beijing", "nantes", "portland", "bilbao",
    "providence", "osnabrueck",
]

COMPANY_WORDS = [
    "terminal", "pictures", "global", "united", "crystal", "falcon",
    "harbor", "summit", "apex", "nova",
]

GENRES = [
    "drama", "comedy", "thriller", "romance", "action", "mystery",
    "fantasy", "history", "crime", "western",
]

ROLE_WORDS = [
    "detective", "captain", "doctor", "teacher", "pilot", "agent",
    "queen", "king", "soldier", "writer", "sam", "baily", "jack",
]
