"""Scalability simulation of Section 3.8.5 (Tables 3.2 and 3.3).

The thesis studies plan-generation scalability on synthetic inputs: the
schema is a completely connected graph of ``n_tables`` tables; templates are
random connected subgraphs (in a complete graph, any table subset is
connected); each keyword occurs in each table with probability 0.6; tables
and keyword occurrences carry random weights from which interpretation
probabilities derive.  The number of complete interpretations grows
polynomially with the schema and exponentially with the query — while the
number of options a user evaluates grows far slower.

We reproduce the simulation over the abstract option-space layer of
:mod:`repro.iqp.plan`, with the hierarchy threshold emulated as the number of
top-probability interpretations visible to the option scorer at each step.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np


@dataclass
class SimulationSpace:
    """One simulated interpretation space.

    ``option_matrix[o, q]`` is True when option ``o`` (a keyword-to-table
    binding) subsumes complete interpretation ``q``.
    """

    weights: np.ndarray  # (n_queries,) positive
    option_matrix: np.ndarray  # (n_options, n_queries) bool
    option_labels: list[tuple[int, int]]  # (keyword, table)
    #: Exact space size before capping (the "# of queries" column).
    theoretical_queries: int

    @property
    def n_queries(self) -> int:
        return int(self.weights.shape[0])

    @property
    def n_options(self) -> int:
        return int(self.option_matrix.shape[0])

    def probabilities(self) -> np.ndarray:
        total = float(self.weights.sum())
        return self.weights / total if total > 0 else np.full_like(self.weights, 1.0)


def generate_simulation(
    n_tables: int,
    n_keywords: int,
    seed: int = 31,
    occurrence_probability: float = 0.6,
    n_templates: int | None = None,
    max_template_size: int = 4,
    max_queries: int = 30_000,
) -> SimulationSpace:
    """Generate one simulation instance (deterministic in ``seed``)."""
    rng = np.random.default_rng(seed)
    if n_templates is None:
        # The template pool grows with the schema (join paths of a bigger
        # graph), driving the polynomial space growth of Table 3.2.
        n_templates = max(4, (n_tables * n_tables) // 3)
    table_weight = rng.uniform(0.1, 1.0, size=n_tables)
    # occurrence[k, t]: does keyword k occur in table t; its weight if so.
    occurrence = rng.random((n_keywords, n_tables)) < occurrence_probability
    # Every keyword must occur somewhere, or the query has no interpretation.
    for k in range(n_keywords):
        if not occurrence[k].any():
            occurrence[k, rng.integers(n_tables)] = True
    binding_weight = rng.uniform(0.05, 1.0, size=(n_keywords, n_tables)) * table_weight

    templates: list[np.ndarray] = []
    seen_templates: set[tuple[int, ...]] = set()
    for _ in range(n_templates):
        size = int(rng.integers(2, max_template_size + 1))
        size = min(size, n_tables)
        tables = np.sort(rng.choice(n_tables, size=size, replace=False))
        key = tuple(int(t) for t in tables)
        if key in seen_templates:
            continue
        seen_templates.add(key)
        templates.append(tables)

    # Exact space size: sum over templates of prod_k (#occurring tables in T).
    theoretical = 0
    per_template_counts: list[list[np.ndarray]] = []
    for tables in templates:
        counts = 1
        placements: list[np.ndarray] = []
        for k in range(n_keywords):
            viable = tables[occurrence[k, tables]]
            placements.append(viable)
            counts *= len(viable)
        if counts > 0:
            theoretical += counts
            per_template_counts.append(placements)

    # Enumerate (or sample) up to max_queries complete interpretations.
    queries: list[tuple[int, ...]] = []  # per keyword: bound table
    weights: list[float] = []
    budget_per_template = max(1, max_queries // max(1, len(per_template_counts)))
    for placements in per_template_counts:
        sizes = [len(p) for p in placements]
        total = math.prod(sizes)
        take = min(total, budget_per_template)
        if total <= take:
            indices = np.arange(total)
        else:
            indices = rng.choice(total, size=take, replace=False)
        for flat in np.sort(indices):
            assignment = []
            remainder = int(flat)
            for k in range(n_keywords):
                remainder, digit = divmod(remainder, sizes[k])
                assignment.append(int(placements[k][digit]))
            queries.append(tuple(assignment))
            w = 1.0
            for k, table in enumerate(assignment):
                w *= binding_weight[k, table]
            weights.append(w)

    n_queries = len(queries)
    labels: list[tuple[int, int]] = []
    rows: list[np.ndarray] = []
    query_array = np.array(queries, dtype=np.int64).reshape(n_queries, n_keywords)
    for k in range(n_keywords):
        for t in range(n_tables):
            if not occurrence[k, t]:
                continue
            row = query_array[:, k] == t
            if row.any():
                labels.append((k, t))
                rows.append(row)
    option_matrix = (
        np.array(rows, dtype=bool)
        if rows
        else np.zeros((0, n_queries), dtype=bool)
    )
    return SimulationSpace(
        weights=np.asarray(weights, dtype=float),
        option_matrix=option_matrix,
        option_labels=labels,
        theoretical_queries=theoretical,
    )


@dataclass
class SimulationRun:
    """Outcome of one interactive greedy construction over a simulation."""

    steps: int
    seconds_per_step: float
    #: The intended interpretation survived every pruning step (it always
    #: should — the oracle answers consistently).
    resolved: bool
    #: Queries left when construction stopped; >1 means the remainder was
    #: indistinguishable by options (the user scans the final shortlist).
    remaining: int = 1


def run_greedy_simulation(
    space: SimulationSpace,
    seed: int = 53,
    threshold: int = 20,
    stop_size: int = 1,
    max_steps: int = 500,
) -> SimulationRun:
    """Simulate a full construction dialogue with a random intended query.

    The hierarchy threshold of Alg. 3.2 is emulated by letting the option
    scorer see only the ``threshold`` most probable *active* interpretations
    when computing information gain — the partially expanded hierarchy's top
    level — while pruning applies to the full active set.
    """
    rng = np.random.default_rng(seed)
    n = space.n_queries
    if n == 0:
        return SimulationRun(steps=0, seconds_per_step=0.0, resolved=True)
    probs = space.probabilities()
    intended = int(rng.choice(n, p=probs))
    active = np.ones(n, dtype=bool)
    steps = 0
    elapsed = 0.0
    matrix = space.option_matrix
    weights = space.weights
    while active.sum() > stop_size and steps < max_steps:
        started = time.perf_counter()
        active_idx = np.flatnonzero(active)
        # Visible top level: the `threshold` heaviest active interpretations.
        if len(active_idx) > threshold:
            order = np.argsort(-weights[active_idx])[:threshold]
            visible = active_idx[order]
        else:
            visible = active_idx
        w = weights[visible]
        w_sum = w.sum()
        if w_sum <= 0:
            break
        p = w / w_sum
        logp = np.log2(p, where=p > 0, out=np.zeros_like(p))
        h_total = float(-(p * logp).sum())
        sub = matrix[:, visible]  # (n_options, n_visible)
        mass_yes = sub @ p
        best_gain = 0.0
        best_option = -1
        # Conditional entropy per option, vectorized over the visible set.
        plogp = p * logp
        sum_plogp_yes = sub @ plogp
        for o in range(matrix.shape[0]):
            m_yes = mass_yes[o]
            if m_yes <= 0.0 or m_yes >= 1.0:
                continue
            m_no = 1.0 - m_yes
            # H(side) = -(1/m) * sum p_i log2 p_i + log2 m  (renormalized).
            h_yes = -(sum_plogp_yes[o] / m_yes) + math.log2(m_yes)
            sum_plogp_no = plogp.sum() - sum_plogp_yes[o]
            h_no = -(sum_plogp_no / m_no) + math.log2(m_no)
            gain = h_total - (m_yes * h_yes + m_no * h_no)
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_option = o
        elapsed += time.perf_counter() - started
        if best_option < 0:
            break
        steps += 1
        answer = bool(matrix[best_option, intended])
        active &= matrix[best_option] == answer
    per_step = elapsed / steps if steps else 0.0
    return SimulationRun(
        steps=steps,
        seconds_per_step=per_step,
        resolved=bool(active[intended]),
        remaining=int(active.sum()),
    )


def random_option_space(
    n_queries: int, n_options: int, seed: int = 61
):
    """A random abstract option space for the Table 3.4 optimality study.

    Each option subsumes a random half of the queries; probabilities are
    random — exactly the setup of Section 3.8.6.
    """
    from repro.iqp.plan import OptionSpace

    rng = np.random.default_rng(seed)
    probabilities = rng.random(n_queries)
    options: dict[str, frozenset[int]] = {}
    for o in range(n_options):
        chosen = rng.choice(n_queries, size=max(1, n_queries // 2), replace=False)
        options[f"opt{o}"] = frozenset(int(c) for c in chosen)
    return OptionSpace.build(
        queries=[f"q{i}" for i in range(n_queries)],
        probabilities=list(probabilities),
        options=options,
    )
