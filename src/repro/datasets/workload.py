"""Keyword-query workloads with ground-truth interpretations.

The thesis extracts keyword queries from MSN/AOL web-search logs, prunes them
to the IMDB/Lyrics domains and manually establishes the intended structured
interpretation of each (Section 3.8.1).  We substitute a generative workload:
queries are sampled from the database content itself — so every query has at
least one real interpretation — and the sampling procedure records the
intended interpretation as machine-readable ground truth.

Single-concept (sc) queries reference one entity (a person, a title);
multi-concept (mc) queries combine two concepts across a join path, the class
the construction experiments focus on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.keywords import KeywordQuery
from repro.core.probability import TemplateCatalog
from repro.core.templates import QueryTemplate
from repro.db.database import Database
from repro.db.tokenizer import tokenize
from repro.user.oracle import IntendedInterpretation, value_spec


@dataclass(frozen=True)
class WorkloadQuery:
    """One benchmark query: keywords, ground truth and bookkeeping labels."""

    query: KeywordQuery
    intended: IntendedInterpretation
    kind: str  # "sc" (single-concept) or "mc" (multi-concept)
    category: str
    dataset: str


def _surname(name: str) -> str | None:
    tokens = tokenize(name)
    return tokens[-1] if tokens else None


def _title_token(title: str, rng: random.Random) -> str | None:
    tokens = tokenize(title)
    return rng.choice(tokens) if tokens else None


def _linked_pair(db: Database, link_table: str, rng: random.Random):
    rows = list(db.relation(link_table))
    return rng.choice(rows) if rows else None


# -- IMDB ------------------------------------------------------------------


def _imdb_actor_year(db: Database, rng: random.Random) -> WorkloadQuery | None:
    link = _linked_pair(db, "acts", rng)
    if link is None:
        return None
    actor = db.relation("actor").get(link.get("actor_id"))
    movie = db.relation("movie").get(link.get("movie_id"))
    if actor is None or movie is None:
        return None
    surname = _surname(actor.get("name", ""))
    year = movie.get("year")
    if not surname or not year:
        return None
    query = KeywordQuery.from_terms([surname, str(year)])
    intended = IntendedInterpretation(
        bindings={0: value_spec("actor", "name"), 1: value_spec("movie", "year")},
        template_path=("actor", "acts", "movie"),
    )
    return WorkloadQuery(query, intended, "mc", "actor_year", "imdb")


def _imdb_actor_title(db: Database, rng: random.Random) -> WorkloadQuery | None:
    link = _linked_pair(db, "acts", rng)
    if link is None:
        return None
    actor = db.relation("actor").get(link.get("actor_id"))
    movie = db.relation("movie").get(link.get("movie_id"))
    if actor is None or movie is None:
        return None
    surname = _surname(actor.get("name", ""))
    title_word = _title_token(movie.get("title", ""), rng)
    if not surname or not title_word or surname == title_word:
        return None
    query = KeywordQuery.from_terms([surname, title_word])
    intended = IntendedInterpretation(
        bindings={0: value_spec("actor", "name"), 1: value_spec("movie", "title")},
        template_path=("actor", "acts", "movie"),
    )
    return WorkloadQuery(query, intended, "mc", "actor_title", "imdb")


def _imdb_director_title(db: Database, rng: random.Random) -> WorkloadQuery | None:
    link = _linked_pair(db, "directs", rng)
    if link is None:
        return None
    director = db.relation("director").get(link.get("director_id"))
    movie = db.relation("movie").get(link.get("movie_id"))
    if director is None or movie is None:
        return None
    surname = _surname(director.get("name", ""))
    title_word = _title_token(movie.get("title", ""), rng)
    if not surname or not title_word or surname == title_word:
        return None
    query = KeywordQuery.from_terms([surname, title_word])
    intended = IntendedInterpretation(
        bindings={0: value_spec("director", "name"), 1: value_spec("movie", "title")},
        template_path=("director", "directs", "movie"),
    )
    return WorkloadQuery(query, intended, "mc", "director_title", "imdb")


def _imdb_two_actors(db: Database, rng: random.Random) -> WorkloadQuery | None:
    """Two actors of the same movie — the ambiguous class of Section 3.8.3."""
    movie_rows = list(db.relation("acts"))
    if not movie_rows:
        return None
    by_movie: dict[object, list] = {}
    for row in movie_rows:
        by_movie.setdefault(row.get("movie_id"), []).append(row)
    movies = [m for m, rows in by_movie.items() if len(rows) >= 2]
    if not movies:
        return None
    movie_id = rng.choice(movies)
    first, second = rng.sample(by_movie[movie_id], 2)
    actor_a = db.relation("actor").get(first.get("actor_id"))
    actor_b = db.relation("actor").get(second.get("actor_id"))
    if actor_a is None or actor_b is None:
        return None
    surname_a = _surname(actor_a.get("name", ""))
    surname_b = _surname(actor_b.get("name", ""))
    if not surname_a or not surname_b or surname_a == surname_b:
        return None
    query = KeywordQuery.from_terms([surname_a, surname_b])
    intended = IntendedInterpretation(
        bindings={0: value_spec("actor", "name"), 1: value_spec("actor", "name")},
        template_path=("actor", "acts", "movie", "acts", "actor"),
    )
    return WorkloadQuery(query, intended, "mc", "two_actors", "imdb")


def _imdb_title_only(db: Database, rng: random.Random) -> WorkloadQuery | None:
    movies = list(db.relation("movie"))
    if not movies:
        return None
    movie = rng.choice(movies)
    title_word = _title_token(movie.get("title", ""), rng)
    if not title_word:
        return None
    query = KeywordQuery.from_terms([title_word])
    intended = IntendedInterpretation(
        bindings={0: value_spec("movie", "title")},
        template_path=("movie",),
    )
    return WorkloadQuery(query, intended, "sc", "title_only", "imdb")


def _imdb_person_name(db: Database, rng: random.Random) -> WorkloadQuery | None:
    """Full person name — two keywords co-occurring in one attribute."""
    actors = list(db.relation("actor"))
    if not actors:
        return None
    actor = rng.choice(actors)
    tokens = tokenize(actor.get("name", ""))
    if len(tokens) < 2 or tokens[0] == tokens[1]:
        return None
    query = KeywordQuery.from_terms(tokens[:2])
    intended = IntendedInterpretation(
        bindings={0: value_spec("actor", "name"), 1: value_spec("actor", "name")},
        template_path=("actor",),
    )
    return WorkloadQuery(query, intended, "sc", "person_name", "imdb")


_IMDB_MC = [_imdb_actor_year, _imdb_actor_title, _imdb_director_title, _imdb_two_actors]
_IMDB_SC = [_imdb_title_only, _imdb_person_name]


def imdb_workload(
    db: Database, n_queries: int = 40, seed: int = 13, mc_fraction: float = 0.6
) -> list[WorkloadQuery]:
    """Sample a deduplicated IMDB workload with ground truth."""
    return _sample(db, n_queries, seed, mc_fraction, _IMDB_MC, _IMDB_SC)


# -- Lyrics --------------------------------------------------------------------


def _lyrics_artist_song(db: Database, rng: random.Random) -> WorkloadQuery | None:
    """Artist + song-title word: the long 5-table chain of Section 3.8.3."""
    link = _linked_pair(db, "album_song", rng)
    if link is None:
        return None
    song = db.relation("song").get(link.get("song_id"))
    album_id = link.get("album_id")
    artist_links = [
        row for row in db.relation("artist_album") if row.get("album_id") == album_id
    ]
    if song is None or not artist_links:
        return None
    artist = db.relation("artist").get(artist_links[0].get("artist_id"))
    if artist is None:
        return None
    surname = _surname(artist.get("name", ""))
    title_word = _title_token(song.get("title", ""), rng)
    if not surname or not title_word or surname == title_word:
        return None
    query = KeywordQuery.from_terms([surname, title_word])
    intended = IntendedInterpretation(
        bindings={0: value_spec("artist", "name"), 1: value_spec("song", "title")},
        template_path=("artist", "artist_album", "album", "album_song", "song"),
    )
    return WorkloadQuery(query, intended, "mc", "artist_song", "lyrics")


def _lyrics_artist_album(db: Database, rng: random.Random) -> WorkloadQuery | None:
    link = _linked_pair(db, "artist_album", rng)
    if link is None:
        return None
    artist = db.relation("artist").get(link.get("artist_id"))
    album = db.relation("album").get(link.get("album_id"))
    if artist is None or album is None:
        return None
    surname = _surname(artist.get("name", ""))
    title_word = _title_token(album.get("title", ""), rng)
    if not surname or not title_word or surname == title_word:
        return None
    query = KeywordQuery.from_terms([surname, title_word])
    intended = IntendedInterpretation(
        bindings={0: value_spec("artist", "name"), 1: value_spec("album", "title")},
        template_path=("artist", "artist_album", "album"),
    )
    return WorkloadQuery(query, intended, "mc", "artist_album", "lyrics")


def _lyrics_song_only(db: Database, rng: random.Random) -> WorkloadQuery | None:
    songs = list(db.relation("song"))
    if not songs:
        return None
    song = rng.choice(songs)
    title_word = _title_token(song.get("title", ""), rng)
    if not title_word:
        return None
    query = KeywordQuery.from_terms([title_word])
    intended = IntendedInterpretation(
        bindings={0: value_spec("song", "title")},
        template_path=("song",),
    )
    return WorkloadQuery(query, intended, "sc", "song_only", "lyrics")


def _lyrics_artist_name(db: Database, rng: random.Random) -> WorkloadQuery | None:
    artists = list(db.relation("artist"))
    if not artists:
        return None
    artist = rng.choice(artists)
    tokens = tokenize(artist.get("name", ""))
    if len(tokens) < 2 or tokens[0] == tokens[1]:
        return None
    query = KeywordQuery.from_terms(tokens[:2])
    intended = IntendedInterpretation(
        bindings={0: value_spec("artist", "name"), 1: value_spec("artist", "name")},
        template_path=("artist",),
    )
    return WorkloadQuery(query, intended, "sc", "artist_name", "lyrics")


_LYRICS_MC = [_lyrics_artist_song, _lyrics_artist_album]
_LYRICS_SC = [_lyrics_song_only, _lyrics_artist_name]


def lyrics_workload(
    db: Database, n_queries: int = 40, seed: int = 17, mc_fraction: float = 0.6
) -> list[WorkloadQuery]:
    """Sample a deduplicated Lyrics workload with ground truth."""
    return _sample(db, n_queries, seed, mc_fraction, _LYRICS_MC, _LYRICS_SC)


# -- shared ------------------------------------------------------------------


#: Dataset name -> workload sampler, the one map the server's bench workload
#: and the cache warmer both draw queries from.
WORKLOAD_SAMPLERS = {"imdb": imdb_workload, "lyrics": lyrics_workload}


def recorded_query_log(
    db: Database,
    dataset: str,
    *,
    n_events: int = 150,
    distinct: int = 20,
    seed: int = 13,
    s: float = 1.1,
) -> list[str]:
    """A synthetic *recorded workload*: a Zipf-distributed event log.

    Real keyword traffic is Zipfian — a few hot queries dominate, with a
    long tail of near-misses.  This samples ``distinct`` ground-truthed
    queries from the dataset's workload generator and draws ``n_events``
    log events with weight ``1/rank^s``, so frequency ranking the log (the
    cache warmer's first step) recovers a stable hot set.  Deterministic
    per ``(db content, dataset, seed)``.
    """
    try:
        sampler = WORKLOAD_SAMPLERS[dataset]
    except KeyError:
        raise ValueError(
            f"unknown dataset {dataset!r} (use {' or '.join(sorted(WORKLOAD_SAMPLERS))})"
        ) from None
    queries = [str(item.query) for item in sampler(db, n_queries=distinct, seed=seed)]
    if not queries:
        return []
    rng = random.Random(seed * 10_007 + 7)
    weights = [1.0 / (rank + 1) ** s for rank in range(len(queries))]
    return rng.choices(queries, weights=weights, k=n_events)


def _sample(db, n_queries, seed, mc_fraction, mc_makers, sc_makers):
    rng = random.Random(seed)
    out: list[WorkloadQuery] = []
    seen_texts: set[str] = set()
    attempts = 0
    max_attempts = n_queries * 60
    while len(out) < n_queries and attempts < max_attempts:
        attempts += 1
        makers = mc_makers if rng.random() < mc_fraction else sc_makers
        maker = rng.choice(makers)
        candidate = maker(db, rng)
        if candidate is None:
            continue
        text = str(candidate.query)
        if text in seen_texts:
            continue
        seen_texts.add(text)
        out.append(candidate)
    return out


def train_catalog_from_workload(
    catalog: TemplateCatalog,
    templates: list[QueryTemplate],
    workload: list[WorkloadQuery],
    repetitions: int = 5,
) -> TemplateCatalog:
    """Simulate a query log: record each intended template ``repetitions`` times.

    The (ATF, TLog) configuration of Fig. 3.5 estimates P(T) from a query
    log; we synthesize the log from the workload's intended join paths.
    """
    by_path: dict[tuple[str, ...], QueryTemplate] = {}
    for template in templates:
        by_path.setdefault(template.path, template)
        by_path.setdefault(template.path[::-1], template)
    for item in workload:
        if item.intended.template_path is None:
            continue
        template = by_path.get(item.intended.template_path)
        if template is not None:
            catalog.record_usage(template, repetitions)
    return catalog
