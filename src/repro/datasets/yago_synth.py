"""Synthetic YAGO-like ontology and aligned database tables (Chapter 6).

YAGO's concept structure (Section 6.4) is a deep subclass tree dominated by
Wikipedia-derived leaf categories: a handful of broad WordNet-style upper
classes, a long tail of small leaf categories (most hold a handful of
instances), and instances concentrated at the leaves.  The generator
reproduces that shape at configurable scale, and additionally fabricates a
Freebase-like table catalog whose tables draw their instances from known
ontology classes plus noise — giving the matching experiments (Fig. 6.4) an
exact ground truth to score against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.yagof.ontology import InstanceOntology

_TOP_CLASSES = [
    "person", "artifact", "organization", "location", "event",
    "abstraction", "living_thing", "substance",
]

_LEAF_QUALIFIERS = [
    "american", "british", "german", "french", "italian", "russian",
    "japanese", "canadian", "australian", "indian",
]

_LEAF_NOUNS = [
    "actors", "writers", "films", "albums", "companies", "cities",
    "rivers", "battles", "novels", "songs", "painters", "athletes",
    "universities", "museums", "bridges", "festivals",
]


@dataclass
class YagoInstanceData:
    """The synthetic ontology, aligned tables and their ground truth."""

    ontology: InstanceOntology
    #: table name -> instance identifiers (entity keys shared with YAGO).
    tables: dict[str, set[str]]
    #: table name -> the ontology class its instances were drawn from.
    ground_truth: dict[str, str]


def build_yago(
    seed: int = 41,
    n_mid_per_top: int = 3,
    n_leaves_per_mid: int = 6,
    instances_per_leaf_mean: int = 12,
) -> InstanceOntology:
    """A three-level ontology: top classes -> mid classes -> leaf categories.

    Leaf instance counts follow a heavy-tailed (geometric-ish) distribution,
    mirroring Table 6.1: most categories are small, a few are large.
    """
    rng = random.Random(seed)
    ontology = InstanceOntology()
    instance_counter = 0
    for top in _TOP_CLASSES:
        ontology.add_class(top)
        for mid_index in range(n_mid_per_top):
            noun = _LEAF_NOUNS[(mid_index * 5 + len(top)) % len(_LEAF_NOUNS)]
            mid = f"{top}/{noun}"
            ontology.add_class(mid, top)
            for leaf_index in range(n_leaves_per_mid):
                qualifier = _LEAF_QUALIFIERS[leaf_index % len(_LEAF_QUALIFIERS)]
                leaf = f"{mid}/{qualifier}_{noun}"
                ontology.add_class(leaf, mid)
                # Heavy tail: many small leaves, occasional large ones.
                size = 1 + min(
                    int(rng.expovariate(1.0 / instances_per_leaf_mean)),
                    instances_per_leaf_mean * 10,
                )
                instances = {
                    f"inst_{instance_counter + i}" for i in range(size)
                }
                instance_counter += size
                ontology.add_instances(leaf, instances)
    return ontology


def build_aligned_tables(
    ontology: InstanceOntology,
    seed: int = 43,
    n_tables: int = 60,
    rows_per_table: int = 15,
    noise_fraction: float = 0.2,
    overlap_fraction: float = 0.8,
) -> YagoInstanceData:
    """Fabricate database tables aligned to ontology classes.

    Each table draws ``overlap_fraction`` of its instances from one true
    class (mid- or leaf-level) and the rest either from other classes
    ("semantic noise") or from fresh identifiers unknown to the ontology
    ("unshared instances").  The true class is recorded as ground truth.
    """
    rng = random.Random(seed)
    candidates = [
        name
        for name in ontology.class_names()
        if ontology.level_of(name) >= 2 and len(ontology.instances_of(name)) >= 3
    ]
    if not candidates:
        raise ValueError("ontology has no populated classes to align with")
    all_instances = sorted(ontology.all_instances())
    tables: dict[str, set[str]] = {}
    ground_truth: dict[str, str] = {}
    fresh_counter = 0
    for table_index in range(n_tables):
        true_class = rng.choice(candidates)
        pool = sorted(ontology.instances_of(true_class))
        n_true = max(2, int(rows_per_table * overlap_fraction))
        chosen = set(rng.sample(pool, min(n_true, len(pool))))
        n_rest = max(0, rows_per_table - len(chosen))
        for _ in range(n_rest):
            if rng.random() < noise_fraction and all_instances:
                chosen.add(rng.choice(all_instances))
            else:
                chosen.add(f"fresh_{fresh_counter}")
                fresh_counter += 1
        table_name = f"fb_table_{table_index}_{true_class.split('/')[-1]}"
        tables[table_name] = chosen
        ground_truth[table_name] = true_class
    return YagoInstanceData(ontology=ontology, tables=tables, ground_truth=ground_truth)


def build_yago_and_tables(seed: int = 41, **table_kwargs) -> YagoInstanceData:
    """Convenience: ontology + aligned tables in one call."""
    ontology = build_yago(seed=seed)
    return build_aligned_tables(ontology, seed=seed + 2, **table_kwargs)
