"""In-memory relational database substrate.

This package provides the relational engine the keyword-search systems of the
thesis run on: schemas with foreign keys (exposed as an undirected *schema
graph*), tuple storage, selection/join execution for candidate networks, an
inverted index over textual attributes with the term statistics the
probabilistic models need (TF, ATF, DF, IDF), and a tuple-level data graph for
the data-based baselines.

The engine replaces the MySQL + Lucene substrate used by the original
experiments while exercising the same code paths: a-priori inverted indexing,
schema-graph exploration and SQL-style join evaluation.
"""

from repro.db.database import Database
from repro.db.datagraph import DataGraph
from repro.db.errors import (
    DatabaseError,
    DuplicateTableError,
    IntegrityError,
    UnknownAttributeError,
    UnknownTableError,
)
from repro.db.index import AttributeStatistics, InvertedIndex, Posting
from repro.db.schema import Attribute, ForeignKey, Schema, Table
from repro.db.serialize import load_database, save_database
from repro.db.table import Relation, Tuple
from repro.db.tokenizer import Tokenizer, tokenize

__all__ = [
    "Attribute",
    "AttributeStatistics",
    "DataGraph",
    "Database",
    "DatabaseError",
    "DuplicateTableError",
    "ForeignKey",
    "IntegrityError",
    "InvertedIndex",
    "Posting",
    "Relation",
    "Schema",
    "Table",
    "Tokenizer",
    "Tuple",
    "UnknownAttributeError",
    "UnknownTableError",
    "load_database",
    "save_database",
    "tokenize",
]
