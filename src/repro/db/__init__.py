"""Relational database substrate with pluggable storage backends.

This package provides the relational engine the keyword-search systems of the
thesis run on: schemas with foreign keys (exposed as an undirected *schema
graph*), tuple storage, selection/join execution for candidate networks, an
inverted index over textual attributes with the term statistics the
probabilistic models need (TF, ATF, DF, IDF), and a tuple-level data graph for
the data-based baselines.

Storage is pluggable (:mod:`repro.db.backends`): the default ``Database`` is
the in-memory :class:`MemoryBackend`; :class:`SQLiteBackend` persists datasets
to disk and pushes join execution down to SQL.  Both implement the
:class:`StorageBackend` contract, which replaces the MySQL + Lucene substrate
used by the original experiments while exercising the same code paths:
a-priori inverted indexing, schema-graph exploration and SQL-style join
evaluation.
"""

from repro.db.backends import (
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.db.database import Database
from repro.db.datagraph import DataGraph
from repro.db.errors import (
    DatabaseError,
    DuplicateTableError,
    IntegrityError,
    UnknownAttributeError,
    UnknownTableError,
)
from repro.db.index import AttributeStatistics, InvertedIndex, Posting
from repro.db.schema import Attribute, ForeignKey, Schema, Table
from repro.db.serialize import load_database, save_database
from repro.db.table import Relation, Tuple
from repro.db.tokenizer import Tokenizer, tokenize

__all__ = [
    "Attribute",
    "AttributeStatistics",
    "DataGraph",
    "Database",
    "DatabaseError",
    "DuplicateTableError",
    "ForeignKey",
    "IntegrityError",
    "InvertedIndex",
    "MemoryBackend",
    "Posting",
    "Relation",
    "SQLiteBackend",
    "Schema",
    "StorageBackend",
    "Table",
    "Tokenizer",
    "Tuple",
    "UnknownAttributeError",
    "UnknownTableError",
    "available_backends",
    "create_backend",
    "load_database",
    "register_backend",
    "save_database",
    "tokenize",
]
