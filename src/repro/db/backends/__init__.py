"""Pluggable storage backends.

The registry maps backend names (as used by ``--backend`` on the CLI and the
``backend=`` parameter of the dataset builders) to :class:`StorageBackend`
subclasses.  Third-party engines register themselves with
:func:`register_backend`; see ``docs/architecture.md`` for the contract a new
backend must satisfy.  SQL-speaking backends share the planner/compiler
layer in :mod:`repro.db.backends.sql` instead of building statement text
themselves.
"""

from __future__ import annotations

from pathlib import Path
from typing import Type

from repro.db.backends.base import (
    BatchedExecution,
    PathSpec,
    RelationView,
    Selection,
    SelectionsByPosition,
    StorageBackend,
)
from repro.db.backends.memory import MemoryBackend
from repro.db.backends.sharded import ShardedSQLiteBackend
from repro.db.backends.sqlite import SQLiteBackend, SQLiteRelation
from repro.db.schema import Schema
from repro.db.tokenizer import DEFAULT_TOKENIZER, Tokenizer

_REGISTRY: dict[str, Type[StorageBackend]] = {}


def register_backend(cls: Type[StorageBackend]) -> Type[StorageBackend]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"backend class {cls.__name__} needs a concrete name")
    _REGISTRY[cls.name] = cls
    return cls


register_backend(MemoryBackend)
register_backend(SQLiteBackend)
register_backend(ShardedSQLiteBackend)


def available_backends() -> list[str]:
    """Names accepted by :func:`create_backend` (and the CLI's ``--backend``)."""
    return sorted(_REGISTRY)


def resolve_shard_layout(
    backend: str | StorageBackend, shards: int | None = None
) -> int | None:
    """The concrete shard count a backend/shards request resolves to.

    ``None`` for backends without sharding support; sharding backends
    resolve an unspecified count to their class default.  Pool keys (the
    query server's) normalize through this, so "sharded with the default
    layout" and "sharded with ``shards=<default>``" share one engine instead
    of building the same physical store twice.
    """
    if isinstance(backend, StorageBackend):
        return getattr(backend, "shards", None)
    cls = _REGISTRY.get(backend)
    if cls is None or not cls.supports_sharding:
        return None  # create_backend raises on an explicit-shards misuse
    if shards is not None:
        return shards
    default = getattr(cls, "DEFAULT_SHARDS", None)
    return default


def create_backend(
    backend: str | StorageBackend,
    schema: Schema,
    *,
    path: str | Path | None = None,
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    shards: int | None = None,
    read_pool_size: int | None = None,
) -> StorageBackend:
    """Instantiate a backend by registry name.

    ``backend`` may also be an already-constructed instance, which is
    returned unchanged — the hook tests and embedders use to inject a
    preconfigured engine.  ``path`` is only meaningful for persistent
    backends; combining it with ``"memory"`` or with an already-constructed
    instance (whose storage location is fixed) raises to catch silent data
    loss.  ``shards`` is only meaningful for backends with
    ``supports_sharding`` (the partition count of ``"sqlite-sharded"``), and
    ``read_pool_size`` for backends with ``supports_read_pool`` (the
    reader-connection cap of the SQLite backends; ``1`` disables the pool).
    Unlike ``path``/``shards``, ``read_pool_size`` *is* accepted alongside an
    existing instance — it is a tunable, not a storage-layout choice.
    """
    if isinstance(backend, StorageBackend):
        if path is not None:
            raise ValueError(
                "cannot combine an existing backend instance with a storage path"
            )
        if shards is not None:
            raise ValueError(
                "cannot combine an existing backend instance with a shard count"
            )
        if read_pool_size is not None:
            backend.configure_read_pool(read_pool_size)
        return backend
    try:
        cls = _REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: {', '.join(available_backends())}"
        ) from None
    kwargs: dict = {"tokenizer": tokenizer}
    if path is not None:
        if not cls.persistent:
            raise ValueError(f"backend {backend!r} does not support a storage path")
        kwargs["path"] = path
    if shards is not None:
        if not cls.supports_sharding:
            raise ValueError(f"backend {backend!r} does not support sharding")
        kwargs["shards"] = shards
    if read_pool_size is not None:
        if not cls.supports_read_pool:
            raise ValueError(
                f"backend {backend!r} does not support a read-connection pool"
            )
        kwargs["read_pool_size"] = read_pool_size
    return cls(schema, **kwargs)


__all__ = [
    "BatchedExecution",
    "MemoryBackend",
    "PathSpec",
    "RelationView",
    "SQLiteBackend",
    "SQLiteRelation",
    "Selection",
    "SelectionsByPosition",
    "ShardedSQLiteBackend",
    "StorageBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "resolve_shard_layout",
]
