"""The storage-backend contract.

:class:`StorageBackend` makes explicit the interface the rest of the system
(interpretation execution in ``core/``, the baselines, the DivQ/FreeQ stacks)
implicitly programmed against when there was only the in-memory engine:

* a :class:`~repro.db.schema.Schema` plus per-table *relations* that can be
  scanned, point-looked-up by primary key and exact-matched on an attribute,
* row insertion that keeps a live :class:`~repro.db.index.InvertedIndex`
  consistent,
* a-priori index construction (``build_indexes``), and
* execution of a *join path with keyword selections* — the SQL statement a
  candidate network corresponds to (Section 2.2.6) — with an optional LIMIT
  for top-k early termination.

Backends differ only in *where rows live and who executes the joins*:
:class:`~repro.db.backends.memory.MemoryBackend` keeps dict-backed relations
and runs nested-loop joins in Python; :class:`~repro.db.backends.sqlite.
SQLiteBackend` persists rows to a SQLite file and pushes joins, selections
and LIMIT down to SQL.  Everything above this interface is backend-agnostic,
so adding e.g. a Postgres backend is a one-file job (see
``docs/architecture.md``).
"""

from __future__ import annotations

import abc
import hashlib
import json
import uuid
from dataclasses import dataclass, field
from typing import (
    Any,
    ClassVar,
    Iterable,
    Iterator,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.db.errors import UnknownTableError
from repro.db.index import InvertedIndex
from repro.db.schema import ForeignKey, Schema, Table
from repro.db.table import Tuple
from repro.db.tokenizer import DEFAULT_TOKENIZER, Tokenizer

#: One selection: all of ``terms`` must be contained in ``attribute``'s value.
#: ``(attribute, terms)``
Selection = tuple[str, tuple[str, ...]]

#: Per-position selections of a join path.
SelectionsByPosition = dict[int, Sequence[Selection]]

#: One :meth:`StorageBackend.execute_path` call, reified so several of them
#: can travel together through :meth:`StorageBackend.execute_paths_batched`:
#: ``(path, edges, selections)``.
PathSpec = tuple[
    Sequence[str], Sequence["ForeignKey"], "SelectionsByPosition | None"
]


@dataclass
class BatchedExecution:
    """The outcome of one :meth:`StorageBackend.execute_paths_batched` call.

    ``rows[i]`` are the result networks of ``specs[i]`` — identical to what a
    plain ``execute_path(*specs[i], limit=limit)`` call returns, so callers
    (and caches) can treat batched and sequential execution interchangeably.
    ``statements`` counts the physical query statements the backend issued to
    serve the whole batch: a backend with real batching support serves many
    specs per statement, the generic fallback issues one per spec.
    ``batched_indexes`` names the spec positions that shared one statement —
    introspection for tests and tooling into how the backend split the batch
    (empty when no statement was shared).  ``fallbacks`` maps the spec
    positions that *could not* share the statement to a human-readable
    reason (e.g. the UNION ALL parameter budget overflowed) — surfaced by
    the engine's ``--explain``.  ``shard_rows`` attributes returned rows to
    the storage shard that produced them (empty on unsharded backends).
    ``scatter_slots`` names the partitioned join slot each spec scattered on
    (sharding backends with a scatter-position chooser; empty elsewhere).
    ``estimated_rows`` carries the cost model's calibrated per-spec row
    estimate and ``plan_labels`` a human-readable summary of any cost-based
    rewrite applied to a spec's plan (both empty without statistics) — the
    estimated-vs-actual and chosen-vs-default lines of ``--explain``.
    """

    rows: list[list[tuple[Tuple, ...]]]
    statements: int
    batched_indexes: list[int] = field(default_factory=list)
    fallbacks: dict[int, str] = field(default_factory=dict)
    shard_rows: dict[int, int] = field(default_factory=dict)
    scatter_slots: dict[int, str] = field(default_factory=dict)
    estimated_rows: dict[int, float] = field(default_factory=dict)
    plan_labels: dict[int, str] = field(default_factory=dict)


class RowStream:
    """A closable cursor over ``(spec index, network)`` pairs.

    The streaming counterpart of :class:`BatchedExecution.rows`: pairs come
    out in ascending spec order, and within one spec in exactly the rows and
    order the list-returning API would produce — so draining a stream and
    grouping by index is byte-identical to ``execute_paths_batched``.  The
    point of the cursor shape is that a consumer may *stop*: ``close()``
    (or the context manager) releases every underlying backend cursor
    without fetching the remaining rows — the top-k executor's TA bound uses
    this to stop consuming instead of post-filtering a materialized batch.
    """

    def __init__(self, iterator: "Iterator[tuple[int, tuple[Tuple, ...]]]"):
        self._iterator = iterator
        self._closed = False
        #: Pairs handed to the consumer so far.
        self.rows_delivered = 0

    def __iter__(self) -> "RowStream":
        return self

    def __next__(self) -> "tuple[int, tuple[Tuple, ...]]":
        item = next(self._iterator)
        self.rows_delivered += 1
        return item

    def close(self) -> None:
        """Release the underlying cursors; idempotent, safe mid-iteration."""
        if self._closed:
            return
        self._closed = True
        close = getattr(self._iterator, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "RowStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class StreamedExecution:
    """The outcome of one :meth:`StorageBackend.execute_paths_streamed` call.

    Mirrors :class:`BatchedExecution` with the rows behind a :class:`RowStream`
    cursor instead of materialized lists.  The bookkeeping fields fill in
    *lazily* as the stream executes and is consumed — ``statements`` counts
    only statements whose cursors were actually opened (an unconsumed stream
    costs none), ``shard_rows`` attributes only delivered rows, and
    ``rows_short_circuited`` counts rows the backend had already produced
    (materialized by a fallback, or prefetched into a cursor chunk) when the
    consumer closed the stream — so read them after the stream is exhausted
    or closed, not before.
    """

    stream: RowStream
    statements: int = 0
    batched_indexes: list[int] = field(default_factory=list)
    fallbacks: dict[int, str] = field(default_factory=dict)
    shard_rows: dict[int, int] = field(default_factory=dict)
    scatter_slots: dict[int, str] = field(default_factory=dict)
    estimated_rows: dict[int, float] = field(default_factory=dict)
    plan_labels: dict[int, str] = field(default_factory=dict)
    rows_short_circuited: int = 0


def normalize_value(value: Any) -> Any:
    """Coerce a cell value to its storage-normal form, identically everywhere.

    SQLite has no bool affinity and hands back ints on read; normalizing in
    the *shared* insert path keeps every backend's stored values — and hence
    index terms, selection results, mutation digests and cached rows —
    identical for the same logical insert.
    """
    if isinstance(value, bool):
        return int(value)
    return value


@runtime_checkable
class RelationView(Protocol):
    """What a backend's per-table handle must support.

    The in-memory :class:`~repro.db.table.Relation` is the reference
    implementation; SQLite exposes the same surface over stored tables.  The
    inverted index, the data graph and the baselines only ever use this
    protocol, never backend internals.
    """

    table: Table

    def insert(self, row: dict[str, Any]) -> Tuple: ...

    def create_index(self, attribute: str) -> None: ...

    def get(self, key: Any) -> Tuple | None: ...

    def lookup(self, attribute: str, value: Any) -> list[Tuple]: ...

    def __len__(self) -> int: ...

    def __iter__(self): ...


class StorageBackend(abc.ABC):
    """Abstract base of every storage engine.

    Subclasses implement row storage (:meth:`relation`, :meth:`insert`,
    :meth:`add_table`) and join execution (:meth:`execute_path`); selection,
    statistics and the derived conveniences are shared here so all backends
    agree on semantics by construction.
    """

    #: Registry key, e.g. ``"memory"`` or ``"sqlite"``.
    name: ClassVar[str] = "abstract"
    #: True when rows survive process restarts (used by dataset builders to
    #: skip regeneration when a populated store already exists).
    persistent: ClassVar[bool] = False
    #: True when the backend accepts a ``shards`` partition count (the
    #: ``create_backend``/CLI ``--shards`` gate).
    supports_sharding: ClassVar[bool] = False
    #: True when the backend accepts a ``read_pool_size`` reader-connection
    #: cap (the ``create_backend``/CLI ``--read-pool-size`` gate).
    supports_read_pool: ClassVar[bool] = False

    def __init__(self, schema: Schema, tokenizer: Tokenizer = DEFAULT_TOKENIZER):
        self.schema = schema
        self.tokenizer = tokenizer
        self.index: InvertedIndex | None = None
        self._metadata: dict[str, str] = {}
        self._content_fingerprint: str | None = None
        #: Chained digest over every row this instance inserted (see
        #: :meth:`content_fingerprint`).  Persistent backends save/restore it
        #: so the chain continues across reopens.
        self._content_digest: str = ""
        #: Apply cost-based plan rewrites (scatter choice, join order, batch
        #: sizing).  Off, every physical choice falls back to the pre-cost
        #: defaults — the ``--no-cost-planning`` escape hatch and the control
        #: arm of the win-rate benchmarks.
        self.cost_planning: bool = True
        #: Planner statistics, collected alongside :meth:`build_indexes`
        #: (persistent backends reload them instead; see ``db/stats``).
        self._statistics = None  # type: Any
        self._cardinality_estimator = None  # type: Any

    # -- read-connection pooling (optional) ---------------------------------

    def configure_read_pool(self, size: int | None) -> None:
        """Resize the backend's read-connection pool, if it has one.

        The engine applies :attr:`EngineConfig.read_pool_size` through this
        hook after construction; backends without pooled readers (memory,
        ``supports_read_pool`` False) ignore it.
        """

    def read_pool_stats(self) -> dict[str, int] | None:
        """Read-pool counters (``size``/``leases``/``waits``/
        ``peak_concurrency``), or ``None`` when no pool is active."""
        return None

    # -- storage contract (backend-specific) -------------------------------

    @abc.abstractmethod
    def relation(self, table_name: str) -> RelationView:
        """The stored rows of one table; raises UnknownTableError."""

    @abc.abstractmethod
    def _create_storage(self, table: Table) -> RelationView:
        """Create (or attach to) the storage of one table."""

    @abc.abstractmethod
    def execute_path(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition | None = None,
        limit: int | None = None,
    ) -> list[tuple[Tuple, ...]]:
        """Execute a join path and return joining networks of tuples.

        Parameters
        ----------
        path:
            Table names, in join order.  ``len(path) == len(edges) + 1``.
        edges:
            ``edges[i]`` is the foreign key joining ``path[i]`` and
            ``path[i+1]`` (in either direction).
        selections:
            Optional keyword selections per path position.
        limit:
            Stop once this many result rows are produced (top-k early
            termination, Section 2.2.5).

        Returns
        -------
        A list of tuples of :class:`Tuple`, aligned with ``path``.
        """

    def insert(self, table_name: str, row: dict[str, Any]) -> Tuple:
        """Insert one row, keeping a live inverted index consistent.

        Shared here (over the storage primitives) so no backend can forget
        the index-maintenance hook and drift from a from-scratch rebuild.
        """
        tup = self.relation(table_name).insert(
            {name: normalize_value(value) for name, value in row.items()}
        )
        self._fold_mutation(f"row|{table_name}|{tup.key!r}|{tup.values!r}")
        if self.index is not None:
            self.index.add_tuple(self.schema.table(table_name), tup)
        if self._statistics is not None:
            self._statistics.observe_insert(self, table_name, tup)
        return tup

    def add_table(self, table: Table) -> RelationView:
        """Add a table to the schema and create its storage.

        When an index exists it is kept consistent with a from-scratch
        rebuild: the new table's schema terms, tuple count and any
        pre-existing rows become visible without ``build_indexes()``.
        """
        self.schema.add_table(table)
        relation = self._create_storage(table)
        self._fold_mutation(f"table|{table.name}")
        if self.index is not None:
            self.index.register_table(table, relation)
        return relation

    # -- lifecycle ----------------------------------------------------------

    @property
    def is_persistent(self) -> bool:
        """True when this *instance* stores rows beyond the process lifetime.

        Defaults to the class-level ``persistent`` flag; backends whose
        durability depends on configuration (e.g. SQLite's ``":memory:"``
        mode) refine it.  Dataset builders use this plus :meth:`has_rows` to
        skip regeneration.
        """
        return self.persistent

    def has_rows(self) -> bool:
        """True when at least one stored table is non-empty."""
        return any(len(self.relation(name)) for name in self.schema.table_names)

    def set_metadata(self, key: str, value: str) -> None:
        """Store a backend-scoped key/value pair (e.g. a dataset fingerprint).

        Persistent backends keep metadata alongside the rows so it survives
        reopens; the in-memory default lives and dies with the instance.
        Keys starting with ``_`` are reserved for backend bookkeeping (the
        mutation digest, the store nonce) — colliding with them would corrupt
        the content-fingerprint chain, so they are rejected here.
        """
        if key.startswith("_"):
            raise ValueError(f"metadata key {key!r} is reserved (leading underscore)")
        self._set_internal_metadata(key, value)

    def _set_internal_metadata(self, key: str, value: str) -> None:
        """The unguarded write path, shared with backend bookkeeping keys."""
        self._metadata[key] = value
        self._content_fingerprint = None

    def get_metadata(self, key: str) -> str | None:
        return self._metadata.get(key)

    def metadata_values(self, prefix: str) -> list[str]:
        """Values of every metadata key starting with ``prefix``, key-sorted."""
        return [
            value
            for key, value in sorted(self._metadata.items())
            if key.startswith(prefix)
        ]

    # -- content identity ----------------------------------------------------

    def _content_seed(self) -> str:
        """Base identity the content fingerprint hashes over.

        A dataset built by the generators carries its full generation
        fingerprint in metadata (one key per dataset — several datasets may
        coexist in one store); two stores holding the same datasets therefore
        share cached work.  Hand-built stores get a store-scoped nonce
        instead, so stores with coincidentally equal shapes never alias.
        """
        datasets = self.metadata_values("dataset_fingerprint")
        if datasets:
            return "|".join(datasets)
        nonce = self.get_metadata("_content_nonce")
        if nonce is None:
            nonce = uuid.uuid4().hex
            self._set_internal_metadata("_content_nonce", nonce)
        return nonce

    def _fold_mutation(self, event: str) -> None:
        """Extend the content digest chain with one mutation event.

        A chain hash (not a running hasher) so persistent backends can store
        the current hex value and resume the chain after a reopen.  Two
        stores that applied the same mutation sequence — e.g. two builds of
        the same deterministic dataset — share the digest, so they also share
        cache entries; stores that diverged, even with equal row counts, do
        not.
        """
        self._content_digest = hashlib.sha256(
            (self._content_digest + event).encode("utf-8")
        ).hexdigest()
        self._content_fingerprint = None

    def content_fingerprint(self) -> str:
        """Digest identifying the current stored content.

        The key of everything derived from the rows — persisted index
        postings, cached interpretation results.  Hashes the seed identity,
        the mutation-digest chain and the per-table row counts: every
        API-level mutation (insert, add_table) extends the chain, including
        mutations that leave row counts unchanged between two stores; the
        counts additionally catch out-of-band row insertions/removals in a
        reopened persistent file.  (Out-of-band *equal-count* edits behind
        the backend's back are outside the API contract and not detected.)
        """
        if self._content_fingerprint is None:
            payload = json.dumps(
                {
                    "backend": self.name,
                    "seed": self._content_seed(),
                    "digest": self._content_digest,
                    "counts": {
                        name: len(self.relation(name))
                        for name in sorted(self.schema.table_names)
                    },
                },
                sort_keys=True,
            )
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            self._content_fingerprint = digest[:32]
        return self._content_fingerprint

    # -- derived-result cache hooks ------------------------------------------

    def cached_result_get(self, fingerprint: str, key: str) -> str | None:
        """Fetch a persisted derived-result payload (None = no persistence)."""
        return None

    def cached_result_put(self, fingerprint: str, key: str, payload: str) -> None:
        """Persist a derived-result payload; entries for other fingerprints
        may be purged (the default in-memory engines persist nothing).

        Puts may be buffered: durability is only required after
        :meth:`cached_result_flush` (or a backend commit point)."""

    def cached_result_flush(self) -> None:
        """Make buffered :meth:`cached_result_put` payloads durable.

        Called once per pipeline run rather than per put, so persistent
        backends pay one commit per query instead of one per interpretation.
        """

    def cached_result_scan(
        self, fingerprint: str, like_pattern: str
    ) -> list[tuple[str, str]]:
        """Enumerate persisted ``(key, payload)`` pairs matching a SQL-LIKE
        pattern under one fingerprint (empty = no persistence).

        The semantic result cache uses this to recover its per-entry plan
        metadata (``...#plan`` keys) after a process restart; backends
        without persistent storage keep the empty default.
        """
        return []

    def close(self) -> None:
        """Release backend resources (no-op for in-memory storage)."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- data loading (shared) ----------------------------------------------

    def insert_many(self, table_name: str, rows: Iterable[dict[str, Any]]) -> list[Tuple]:
        return [self.insert(table_name, row) for row in rows]

    def copy_into(self, other: "StorageBackend") -> "StorageBackend":
        """Bulk-copy every stored row into ``other`` (same schema assumed)."""
        for table in self.schema:
            other.insert_many(
                table.name, (tup.as_dict() for tup in self.relation(table.name))
            )
        return other

    # -- indexing (shared) ---------------------------------------------------

    def build_indexes(self) -> InvertedIndex:
        """Build the inverted index and exact-match join indexes a-priori.

        Also collects the planner-statistics catalog in the same pass budget
        (one extra scan per relation) — persistent backends that reload a
        persisted index reload persisted statistics instead of calling this.
        """
        for fk in self.schema.foreign_keys:
            self.relation(fk.source).create_index(fk.source_attr)
            if fk.target_attr != self.schema.table(fk.target).primary_key:
                self.relation(fk.target).create_index(fk.target_attr)
        self.index = InvertedIndex(self.tokenizer).build(self)
        self._collect_statistics()
        return self.index

    def require_index(self) -> InvertedIndex:
        if self.index is None:
            self.build_indexes()
        assert self.index is not None
        return self.index

    # -- statistics ----------------------------------------------------------

    def total_tuples(self) -> int:
        return sum(len(self.relation(name)) for name in self.schema.table_names)

    def _collect_statistics(self):
        """(Re)scan every relation into a fresh statistics catalog."""
        from repro.db.stats import StatisticsCatalog

        self._statistics = StatisticsCatalog.collect(self)
        self._cardinality_estimator = None
        return self._statistics

    def statistics_catalog(self, collect: bool = True):
        """The planner-statistics catalog (see :mod:`repro.db.stats`).

        With ``collect`` (the default) a missing catalog is collected on the
        spot; ``collect=False`` only reports what already exists — the
        planner's own access path, so planning never triggers a scan.
        """
        if self._statistics is None and collect:
            self._collect_statistics()
        return self._statistics

    def cardinality_estimator(self):
        """The backend's estimator over the current catalog (None = no stats)."""
        if self._statistics is None:
            return None
        if (
            self._cardinality_estimator is None
            or self._cardinality_estimator.catalog is not self._statistics
        ):
            from repro.db.stats import CardinalityEstimator

            self._cardinality_estimator = CardinalityEstimator(self._statistics)
        return self._cardinality_estimator

    def plan_estimator(self):
        """The estimator the *planner* may use: gated by ``cost_planning``."""
        if not self.cost_planning:
            return None
        return self.cardinality_estimator()

    def estimated_path_rows(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition | None = None,
        limit: int | None = None,
    ) -> float | None:
        """Estimated result rows of one path spec, without executing it.

        ``0.0`` for provably empty specs, ``None`` on any estimator gap
        (missing statistics, cost planning disabled, invalid spec — errors
        surface at execution time, never during estimation).  The top-k
        executor sizes its first batch with this.
        """
        estimator = self.plan_estimator()
        if estimator is None:
            return None
        try:
            plan = self.plan_path_spec(path, edges, selections, limit)
        except Exception:
            return None
        if plan is None:
            return 0.0
        return estimator.estimate(plan)

    def observe_estimate(self, estimated: float, actual: int) -> None:
        """Feed one estimated-vs-actual row count into estimator calibration."""
        estimator = self.cardinality_estimator()
        if estimator is not None:
            estimator.observe(estimated, actual)

    # -- selection (shared) --------------------------------------------------

    def select(self, table_name: str, selections: Sequence[Selection]) -> list[Tuple]:
        """Tuples of one table satisfying *all* keyword containments."""
        relation = self.relation(table_name)
        if not selections:
            return list(relation)
        keys = self.selection_keys(table_name, selections)
        return [t for t in (relation.get(k) for k in sorted(keys, key=repr)) if t is not None]

    def selection_keys(
        self, table_name: str, selections: Sequence[Selection]
    ) -> set[Any]:
        """Primary keys of tuples satisfying *all* keyword containments.

        Containment is token-based (the tokenizer's notion of "contains", not
        SQL LIKE substring matching), answered from the inverted index — the
        semantics every backend must share.
        """
        self.relation(table_name)  # validates table
        index = self.require_index()
        keys: set[Any] | None = None
        for attribute, terms in selections:
            attr_keys = index.candidate_tuple_keys(terms, table_name, attribute)
            keys = attr_keys if keys is None else keys & attr_keys
            if not keys:
                return set()
        return keys if keys is not None else set()

    # -- join-path execution (shared validation + derived queries) -----------

    def _validate_path(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition,
        limit: int | None = None,
    ) -> None:
        if len(path) != len(edges) + 1:
            raise ValueError("path/edges arity mismatch")
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        for position, table_name in enumerate(path):
            self.relation(table_name)  # validates table
            for attribute, _terms in selections.get(position, ()):
                if not self.schema.table(table_name).has_attribute(attribute):
                    raise UnknownTableError(f"{table_name}.{attribute}")

    def resolve_key_filters(
        self, path: Sequence[str], selections: SelectionsByPosition
    ) -> dict[int, set[Any]] | None:
        """Per-position primary-key sets of the selections, via the index.

        ``None`` means some position matched nothing — the whole path result
        is provably empty and no execution needs to happen.  Out-of-range
        positions and empty selection lists are skipped, matching the
        nested-loop engine's behavior.  Shared here because resolution runs
        entirely over the inverted index, so every backend — including the
        in-memory one — resolves identically.
        """
        key_filters: dict[int, set[Any]] = {}
        for position in sorted(selections):
            if not 0 <= position < len(path):
                continue  # the nested-loop engine ignores out-of-range slots
            position_selections = list(selections[position])
            if not position_selections:
                continue
            keys = self.selection_keys(path[position], position_selections)
            if not keys:
                return None
            key_filters[position] = keys
        return key_filters

    def plan_path_spec(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition | None = None,
        limit: int | None = None,
    ):
        """The :class:`~repro.db.backends.sql.PathPlan` one ``execute_path``
        call would run under, *without executing anything*.

        ``None`` means the result is provably empty (a selection matched no
        keys).  Planning only needs the schema and the inverted index, so it
        works on every backend — which is what lets the semantic result
        cache compare plans for subsumption independent of the storage
        engine.  Raises like :meth:`execute_path` on invalid specs.
        """
        from repro.db.backends.sql import plan_path

        selections = selections or {}
        self._validate_path(path, edges, selections, limit)
        key_filters = self.resolve_key_filters(path, selections)
        if key_filters is None:
            return None
        return plan_path(path, edges, key_filters, limit)

    @staticmethod
    def _edge_attrs(
        edge: ForeignKey, current_table: str, next_table: str
    ) -> tuple[str, str]:
        """``(bound attr on current, probe attr on next)`` for one join hop."""
        if edge.source == current_table and edge.target == next_table:
            return edge.source_attr, edge.target_attr
        if edge.source == next_table and edge.target == current_table:
            return edge.target_attr, edge.source_attr
        raise ValueError(
            f"foreign key {edge} does not connect {current_table!r} and {next_table!r}"
        )

    #: True when :meth:`execute_paths_batched` can serve several join paths
    #: with fewer statements than one per path (e.g. a SQL ``UNION ALL``).
    #: The generic fallback below keeps the contract on every backend.
    supports_batched_execution: ClassVar[bool] = False

    def execute_paths_batched(
        self,
        specs: Sequence[PathSpec],
        limit: int | None = None,
    ) -> BatchedExecution:
        """Execute several join paths, preferably in fewer statements.

        ``limit`` applies *per spec* (each path's top-k cap), exactly as in
        :meth:`execute_path`.  Results are attributed back to their spec by
        position, and must be identical — rows, order, truncation — to
        executing each spec sequentially; backends without a native batch
        strategy inherit this per-path fallback.
        """
        rows = [
            self.execute_path(path, edges, selections, limit=limit)
            for path, edges, selections in specs
        ]
        return BatchedExecution(rows=rows, statements=len(specs))

    def execute_paths_streamed(
        self,
        specs: Sequence[PathSpec],
        limit: int | None = None,
    ) -> StreamedExecution:
        """Execute several join paths as one :class:`RowStream` cursor.

        The streaming face of :meth:`execute_paths_batched`: pairs stream in
        ascending spec order, rows within a spec identical (content, order,
        truncation) to the list-returning call, so a fully drained stream is
        byte-for-byte the batched result.  This generic fallback materializes
        through ``execute_paths_batched`` *lazily* — nothing executes until
        the first row is pulled, so a consumer that never starts (e.g. a
        fully cache-served query) costs zero statements — and reports rows
        left unconsumed at close time as ``rows_short_circuited``.  Backends
        with real cursors (SQLite) override this to never materialize at all.
        """
        specs = list(specs)
        execution = StreamedExecution(stream=RowStream(iter(())))

        def generate() -> Iterator[tuple[int, tuple[Tuple, ...]]]:
            executed = self.execute_paths_batched(specs, limit=limit)
            execution.statements = executed.statements
            execution.batched_indexes = list(executed.batched_indexes)
            execution.fallbacks.update(executed.fallbacks)
            execution.shard_rows.update(executed.shard_rows)
            execution.scatter_slots.update(executed.scatter_slots)
            produced = sum(len(rows) for rows in executed.rows)
            delivered = 0
            try:
                for index, rows in enumerate(executed.rows):
                    for network in rows:
                        # Count *before* yielding: a consumer that takes this
                        # row and then closes leaves the generator suspended
                        # at the yield, so a post-yield increment would book
                        # the last delivered row as short-circuited.
                        delivered += 1
                        yield index, network
            finally:
                execution.rows_short_circuited += produced - delivered

        execution.stream = RowStream(generate())
        return execution

    def count_path(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition | None = None,
    ) -> int:
        """Number of result rows of a join path."""
        return len(self.execute_path(path, edges, selections))

    def has_results(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition | None = None,
    ) -> bool:
        """True iff the join path yields at least one result row.

        DivQ assigns zero probability to interpretations with empty results
        (Section 4.4.2); this is the early-terminating check it uses.
        """
        return bool(self.execute_path(path, edges, selections, limit=1))
