"""The storage-backend contract.

:class:`StorageBackend` makes explicit the interface the rest of the system
(interpretation execution in ``core/``, the baselines, the DivQ/FreeQ stacks)
implicitly programmed against when there was only the in-memory engine:

* a :class:`~repro.db.schema.Schema` plus per-table *relations* that can be
  scanned, point-looked-up by primary key and exact-matched on an attribute,
* row insertion that keeps a live :class:`~repro.db.index.InvertedIndex`
  consistent,
* a-priori index construction (``build_indexes``), and
* execution of a *join path with keyword selections* — the SQL statement a
  candidate network corresponds to (Section 2.2.6) — with an optional LIMIT
  for top-k early termination.

Backends differ only in *where rows live and who executes the joins*:
:class:`~repro.db.backends.memory.MemoryBackend` keeps dict-backed relations
and runs nested-loop joins in Python; :class:`~repro.db.backends.sqlite.
SQLiteBackend` persists rows to a SQLite file and pushes joins, selections
and LIMIT down to SQL.  Everything above this interface is backend-agnostic,
so adding e.g. a Postgres backend is a one-file job (see
``docs/architecture.md``).
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar, Iterable, Protocol, Sequence, runtime_checkable

from repro.db.errors import UnknownTableError
from repro.db.index import InvertedIndex
from repro.db.schema import ForeignKey, Schema, Table
from repro.db.table import Tuple
from repro.db.tokenizer import DEFAULT_TOKENIZER, Tokenizer

#: One selection: all of ``terms`` must be contained in ``attribute``'s value.
#: ``(attribute, terms)``
Selection = tuple[str, tuple[str, ...]]

#: Per-position selections of a join path.
SelectionsByPosition = dict[int, Sequence[Selection]]


@runtime_checkable
class RelationView(Protocol):
    """What a backend's per-table handle must support.

    The in-memory :class:`~repro.db.table.Relation` is the reference
    implementation; SQLite exposes the same surface over stored tables.  The
    inverted index, the data graph and the baselines only ever use this
    protocol, never backend internals.
    """

    table: Table

    def insert(self, row: dict[str, Any]) -> Tuple: ...

    def create_index(self, attribute: str) -> None: ...

    def get(self, key: Any) -> Tuple | None: ...

    def lookup(self, attribute: str, value: Any) -> list[Tuple]: ...

    def __len__(self) -> int: ...

    def __iter__(self): ...


class StorageBackend(abc.ABC):
    """Abstract base of every storage engine.

    Subclasses implement row storage (:meth:`relation`, :meth:`insert`,
    :meth:`add_table`) and join execution (:meth:`execute_path`); selection,
    statistics and the derived conveniences are shared here so all backends
    agree on semantics by construction.
    """

    #: Registry key, e.g. ``"memory"`` or ``"sqlite"``.
    name: ClassVar[str] = "abstract"
    #: True when rows survive process restarts (used by dataset builders to
    #: skip regeneration when a populated store already exists).
    persistent: ClassVar[bool] = False

    def __init__(self, schema: Schema, tokenizer: Tokenizer = DEFAULT_TOKENIZER):
        self.schema = schema
        self.tokenizer = tokenizer
        self.index: InvertedIndex | None = None
        self._metadata: dict[str, str] = {}

    # -- storage contract (backend-specific) -------------------------------

    @abc.abstractmethod
    def relation(self, table_name: str) -> RelationView:
        """The stored rows of one table; raises UnknownTableError."""

    @abc.abstractmethod
    def _create_storage(self, table: Table) -> RelationView:
        """Create (or attach to) the storage of one table."""

    @abc.abstractmethod
    def execute_path(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition | None = None,
        limit: int | None = None,
    ) -> list[tuple[Tuple, ...]]:
        """Execute a join path and return joining networks of tuples.

        Parameters
        ----------
        path:
            Table names, in join order.  ``len(path) == len(edges) + 1``.
        edges:
            ``edges[i]`` is the foreign key joining ``path[i]`` and
            ``path[i+1]`` (in either direction).
        selections:
            Optional keyword selections per path position.
        limit:
            Stop once this many result rows are produced (top-k early
            termination, Section 2.2.5).

        Returns
        -------
        A list of tuples of :class:`Tuple`, aligned with ``path``.
        """

    def insert(self, table_name: str, row: dict[str, Any]) -> Tuple:
        """Insert one row, keeping a live inverted index consistent.

        Shared here (over the storage primitives) so no backend can forget
        the index-maintenance hook and drift from a from-scratch rebuild.
        """
        tup = self.relation(table_name).insert(row)
        if self.index is not None:
            self.index.add_tuple(self.schema.table(table_name), tup)
        return tup

    def add_table(self, table: Table) -> RelationView:
        """Add a table to the schema and create its storage.

        When an index exists it is kept consistent with a from-scratch
        rebuild: the new table's schema terms, tuple count and any
        pre-existing rows become visible without ``build_indexes()``.
        """
        self.schema.add_table(table)
        relation = self._create_storage(table)
        if self.index is not None:
            self.index.register_table(table, relation)
        return relation

    # -- lifecycle ----------------------------------------------------------

    @property
    def is_persistent(self) -> bool:
        """True when this *instance* stores rows beyond the process lifetime.

        Defaults to the class-level ``persistent`` flag; backends whose
        durability depends on configuration (e.g. SQLite's ``":memory:"``
        mode) refine it.  Dataset builders use this plus :meth:`has_rows` to
        skip regeneration.
        """
        return self.persistent

    def has_rows(self) -> bool:
        """True when at least one stored table is non-empty."""
        return any(len(self.relation(name)) for name in self.schema.table_names)

    def set_metadata(self, key: str, value: str) -> None:
        """Store a backend-scoped key/value pair (e.g. a dataset fingerprint).

        Persistent backends keep metadata alongside the rows so it survives
        reopens; the in-memory default lives and dies with the instance.
        """
        self._metadata[key] = value

    def get_metadata(self, key: str) -> str | None:
        return self._metadata.get(key)

    def close(self) -> None:
        """Release backend resources (no-op for in-memory storage)."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- data loading (shared) ----------------------------------------------

    def insert_many(self, table_name: str, rows: Iterable[dict[str, Any]]) -> list[Tuple]:
        return [self.insert(table_name, row) for row in rows]

    def copy_into(self, other: "StorageBackend") -> "StorageBackend":
        """Bulk-copy every stored row into ``other`` (same schema assumed)."""
        for table in self.schema:
            other.insert_many(
                table.name, (tup.as_dict() for tup in self.relation(table.name))
            )
        return other

    # -- indexing (shared) ---------------------------------------------------

    def build_indexes(self) -> InvertedIndex:
        """Build the inverted index and exact-match join indexes a-priori."""
        for fk in self.schema.foreign_keys:
            self.relation(fk.source).create_index(fk.source_attr)
            if fk.target_attr != self.schema.table(fk.target).primary_key:
                self.relation(fk.target).create_index(fk.target_attr)
        self.index = InvertedIndex(self.tokenizer).build(self)
        return self.index

    def require_index(self) -> InvertedIndex:
        if self.index is None:
            self.build_indexes()
        assert self.index is not None
        return self.index

    # -- statistics ----------------------------------------------------------

    def total_tuples(self) -> int:
        return sum(len(self.relation(name)) for name in self.schema.table_names)

    # -- selection (shared) --------------------------------------------------

    def select(self, table_name: str, selections: Sequence[Selection]) -> list[Tuple]:
        """Tuples of one table satisfying *all* keyword containments."""
        relation = self.relation(table_name)
        if not selections:
            return list(relation)
        keys = self.selection_keys(table_name, selections)
        return [t for t in (relation.get(k) for k in sorted(keys, key=repr)) if t is not None]

    def selection_keys(
        self, table_name: str, selections: Sequence[Selection]
    ) -> set[Any]:
        """Primary keys of tuples satisfying *all* keyword containments.

        Containment is token-based (the tokenizer's notion of "contains", not
        SQL LIKE substring matching), answered from the inverted index — the
        semantics every backend must share.
        """
        self.relation(table_name)  # validates table
        index = self.require_index()
        keys: set[Any] | None = None
        for attribute, terms in selections:
            attr_keys = index.candidate_tuple_keys(terms, table_name, attribute)
            keys = attr_keys if keys is None else keys & attr_keys
            if not keys:
                return set()
        return keys if keys is not None else set()

    # -- join-path execution (shared validation + derived queries) -----------

    def _validate_path(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition,
        limit: int | None = None,
    ) -> None:
        if len(path) != len(edges) + 1:
            raise ValueError("path/edges arity mismatch")
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        for position, table_name in enumerate(path):
            self.relation(table_name)  # validates table
            for attribute, _terms in selections.get(position, ()):
                if not self.schema.table(table_name).has_attribute(attribute):
                    raise UnknownTableError(f"{table_name}.{attribute}")

    @staticmethod
    def _edge_attrs(
        edge: ForeignKey, current_table: str, next_table: str
    ) -> tuple[str, str]:
        """``(bound attr on current, probe attr on next)`` for one join hop."""
        if edge.source == current_table and edge.target == next_table:
            return edge.source_attr, edge.target_attr
        if edge.source == next_table and edge.target == current_table:
            return edge.target_attr, edge.source_attr
        raise ValueError(
            f"foreign key {edge} does not connect {current_table!r} and {next_table!r}"
        )

    def count_path(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition | None = None,
    ) -> int:
        """Number of result rows of a join path."""
        return len(self.execute_path(path, edges, selections))

    def has_results(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition | None = None,
    ) -> bool:
        """True iff the join path yields at least one result row.

        DivQ assigns zero probability to interpretations with empty results
        (Section 4.4.2); this is the early-terminating check it uses.
        """
        return bool(self.execute_path(path, edges, selections, limit=1))
