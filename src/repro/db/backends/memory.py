"""The in-memory storage engine (the reference backend).

Dict-backed relations with exact-match indexes, nested-loop join execution in
Python.  This is the engine the reproduction originally shipped as
``repro.db.Database``; it remains the default backend and the semantic
reference every other backend is tested against.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.db.backends.base import SelectionsByPosition, StorageBackend
from repro.db.errors import UnknownTableError
from repro.db.schema import ForeignKey, Schema, Table
from repro.db.table import Relation, Tuple
from repro.db.tokenizer import DEFAULT_TOKENIZER, Tokenizer


class MemoryBackend(StorageBackend):
    """An in-memory relational database instance."""

    name = "memory"
    persistent = False

    def __init__(self, schema: Schema, tokenizer: Tokenizer = DEFAULT_TOKENIZER):
        super().__init__(schema, tokenizer)
        self._relations: dict[str, Relation] = {}
        for table in schema:
            self._create_storage(table)

    # -- data loading -----------------------------------------------------

    def relation(self, table_name: str) -> Relation:
        try:
            return self._relations[table_name]
        except KeyError:
            raise UnknownTableError(table_name) from None

    def _create_storage(self, table: Table) -> Relation:
        relation = Relation(table)
        self._relations[table.name] = relation
        return relation

    # -- join-path execution ---------------------------------------------------

    def execute_path(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition | None = None,
        limit: int | None = None,
    ) -> list[tuple[Tuple, ...]]:
        """Nested-loop execution of a join path (see the base-class contract)."""
        selections = selections or {}
        self._validate_path(path, edges, selections, limit)

        base = self.select(path[0], list(selections.get(0, ())))
        partials: list[tuple[Tuple, ...]] = [(t,) for t in base]
        for position in range(1, len(path)):
            if not partials:
                return []
            edge = edges[position - 1]
            next_table = path[position]
            allowed_keys: set[Any] | None = None
            position_selections = list(selections.get(position, ()))
            if position_selections:
                allowed_keys = self.selection_keys(next_table, position_selections)
                if not allowed_keys:
                    return []
            partials = self._extend(partials, path[position - 1], next_table, edge, allowed_keys)
        if limit is not None:
            return partials[:limit]
        return partials

    def _extend(
        self,
        partials: list[tuple[Tuple, ...]],
        current_table: str,
        next_table: str,
        edge: ForeignKey,
        allowed_keys: set[Any] | None,
    ) -> list[tuple[Tuple, ...]]:
        """Join each partial result with matching tuples of ``next_table``."""
        relation = self.relation(next_table)
        bound_attr, probe_attr = self._edge_attrs(edge, current_table, next_table)
        results: list[tuple[Tuple, ...]] = []
        for partial in partials:
            bound_value = partial[-1].get(bound_attr)
            if bound_value is None:
                continue
            for match in relation.lookup(probe_attr, bound_value):
                if allowed_keys is not None and match.key not in allowed_keys:
                    continue
                results.append(partial + (match,))
        return results
