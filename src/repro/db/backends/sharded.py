"""Hash-partitioned SQLite storage across attached database files.

:class:`ShardedSQLiteBackend` (registry name ``sqlite-sharded``) splits
every relation's rows across *N* shard databases attached to one catalog
file (``ATTACH``): row ``r`` of table ``t`` lives in the partition
``shard{hash(pk) % N}."t"``, where the hash is a deterministic digest of the
primary key's ``repr()`` so a reopened store routes every key to the same
partition.  The catalog (main) database holds no rows — only the shared
side tables (metadata, persisted index postings, the result cache) and the
shard-layout record that makes mismatched reopens fail fast.

Execution is **scatter-gather** over the shared planner/compiler layer
(:mod:`repro.db.backends.sql`): every :class:`~repro.db.backends.sql.
PathPlan` compiles once per shard under a :class:`~repro.db.backends.sql.
ShardedSQLiteDialect` — the scatter slot (position 0) reads that shard's
partition, every other slot joins an all-shards ``UNION ALL`` subselect, so
the per-shard result streams are disjoint and their union is complete.  Each
statement projects its ORDER BY keys, the gather step merges the streams
under exactly those keys and truncates at the plan's limit, which keeps the
rows, order and truncation byte-identical to the unsharded backend (pinned
by ``tests/test_sharded_backend.py``).  On file-backed stores the scatter
fans out over readers leased from the inherited read-connection pool (each
with every partition ATTACHed, sized ``shards × read_pool_size``) on a
small thread pool, and the *streamed* gather prefetches per-shard cursor
chunks on producer threads when the pool allows more than one gather's
worth of readers; a ``":memory:"`` store (whose attached shards exist only
inside the one connection) degrades to serial scatter transparently.

Insertion order — what the in-memory engine's scans and the unsharded
backend's ``rowid`` provide — is preserved by an explicit ``_rowseq``
column every partition carries: a store-global monotone sequence assigned at
insert time, used for scans and as the base order term of unselected scatter
slots.
"""

from __future__ import annotations

import hashlib
import heapq
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.db.backends import sql as sqlc
from repro.db.backends.base import StreamedExecution, normalize_value
from repro.db.backends.sql import (
    CompiledStatement,
    PathPlan,
    PlanCompiler,
    ShardedSQLiteDialect,
)
from repro.db.backends.sqlite import (
    SQLiteBackend,
    SQLiteRelation,
    _LockedConnection,
)
from repro.db.errors import DatabaseError
from repro.db.schema import Schema, Table
from repro.db.table import Tuple
from repro.db.tokenizer import DEFAULT_TOKENIZER, Tokenizer

#: The hidden per-partition column carrying the store-global insertion order.
ROWSEQ_COLUMN = "_rowseq"


class _EndOfStream:
    """Queue sentinel ending one prefetched shard stream.

    Carries the producer's error, if any, so the consumer re-raises it in
    its own thread instead of losing it inside the scatter pool.
    """

    __slots__ = ("error",)

    def __init__(self, error: BaseException | None = None):
        self.error = error


def merge_shard_streams(
    streams: "Iterable[Iterable[tuple]]", key_width: int
) -> Iterator[tuple[tuple, int, tuple]]:
    """K-way merge of per-shard row streams under their projected order keys.

    Every stream must already be sorted by its leading ``key_width`` columns
    (the ORDER BY keys each scatter member projects as ``__o0..``); the merge
    yields ``(key, shard index, raw row)`` in global ``(key, shard)`` order.
    Ties on the full key resolve to the lower shard index — exactly what the
    former stable materialize-then-sort gather produced — and since the heap
    holds at most one row per stream, raw rows are never compared.  Works for
    lists (the parallel scatter) and lazy cursors (the streamed gather)
    alike; callers owning lazy sources must close them on early exit —
    ``heapq.merge`` does not.
    """
    def decorate(shard: int, rows: "Iterable[tuple]") -> Iterator[tuple]:
        # A real function, not a genexp inside the comprehension: a genexp
        # would close over the loop variable and stamp every row with the
        # *last* shard index once evaluated lazily.
        for row in rows:
            yield tuple(row[:key_width]), shard, row

    return heapq.merge(
        *(decorate(shard, rows) for shard, rows in enumerate(streams))
    )


def shard_of_key(key: Any, shards: int) -> int:
    """The partition of one primary key — deterministic across processes.

    Python's ``hash()`` is salted per process for strings, so the routing
    digest comes from ``repr()`` + SHA-256 instead.  Keys that compare equal
    under SQLite's storage semantics must hash equal, so the key is first
    pushed through the shared storage normalization (bools are ints) and
    integral floats collapse to their int (``3.0 IS 3`` inside SQLite, but
    ``repr`` would split them across shards).
    """
    key = normalize_value(key)
    if isinstance(key, float) and key.is_integer():
        key = int(key)
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:8]
    return int(digest, 16) % shards


class ShardedSQLiteRelation(SQLiteRelation):
    """One logical table over its hash partitions.

    Point reads route by key hash; scans and attribute lookups read the
    all-shards union (ordered by ``_rowseq``, i.e. insertion order) — the
    same observable surface as an unsharded :class:`SQLiteRelation`.
    """

    def __init__(self, backend: "ShardedSQLiteBackend", table: Table):
        self._shards = backend.shards
        self._shard_dialect: ShardedSQLiteDialect = backend.dialect
        super().__init__(backend, table)
        #: Next global insertion-sequence value (lazy: resumes the stored
        #: maximum on a reopened store).
        self._next_rowseq: int | None = None

    def _prepare_point_statements(self) -> None:
        """Per-partition INSERT/point-get statements (routed by key hash)."""
        dialect = self._shard_dialect
        self._partition_inserts = [
            sqlc.insert_sql(
                dialect,
                self.table,
                source=dialect.partition_source(self.table.name, shard),
                extra_columns=(ROWSEQ_COLUMN,),
            )
            for shard in range(self._shards)
        ]
        self._partition_gets = [
            sqlc.select_where_sql(
                dialect,
                self.table,
                self._pk,
                source=dialect.partition_source(self.table.name, shard),
            )
            for shard in range(self._shards)
        ]

    def _take_rowseq(self) -> int:
        if self._next_rowseq is None:
            highest = -1
            for shard in range(self._shards):
                source = self._shard_dialect.partition_source(self.table.name, shard)
                row = self._conn.execute(
                    sqlc.max_column_sql(ROWSEQ_COLUMN, source)
                ).fetchone()
                if row[0] is not None:
                    highest = max(highest, row[0])
            self._next_rowseq = highest + 1
        value = self._next_rowseq
        self._next_rowseq += 1
        return value

    def _store_row(self, key: Any, cells: list[Any]) -> None:
        shard = shard_of_key(key, self._shards)
        self._conn.execute(self._partition_inserts[shard], [*cells, self._take_rowseq()])

    def get(self, key: Any) -> Tuple | None:
        with self._backend._lease_read_connection() as conn:
            row = conn.execute(
                self._partition_gets[shard_of_key(key, self._shards)], (key,)
            ).fetchone()
        return self._to_tuple(row) if row is not None else None

    def _index_ddl(self, attribute: str) -> list[str]:
        dialect: ShardedSQLiteDialect = self._backend.dialect
        return [
            sqlc.create_index_ddl(
                dialect,
                self.table,
                attribute,
                source=dialect.quote(self.table.name),
                schema_prefix=dialect.shard_schema(shard),
            )
            for shard in range(self._shards)
        ]


class ShardedSQLiteBackend(SQLiteBackend):
    """SQLite storage hash-partitioned across attached shard databases.

    ``path`` names the catalog database; the partitions live next to it as
    ``<path>.shard0 .. <path>.shard{N-1}`` (for ``":memory:"`` each shard is
    an attached in-memory database, private to the connection).  The shard
    count is recorded in the catalog's metadata on first open, and a reopen
    with a different ``shards`` value — or pointing ``--backend sqlite`` at
    a sharded file, or this backend at a plain file — fails fast with
    :class:`DatabaseError` instead of silently reading half a store.
    """

    name = "sqlite-sharded"
    persistent = True
    supports_sharding = True

    #: Default partition count when none is requested.
    DEFAULT_SHARDS = 2

    def __init__(
        self,
        schema: Schema,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        path: str | Path | None = None,
        persist_index: bool = True,
        shards: int | None = None,
        read_pool_size: int | None = None,
    ):
        shards = self.DEFAULT_SHARDS if shards is None else shards
        if shards < 1:
            raise ValueError("shards must be positive")
        self.shards = shards
        self._shard_compilers_cache: list[PlanCompiler] | None = None
        self._scatter_pool_instance: ThreadPoolExecutor | None = None
        #: Cached per-table row counts feeding the scatter-position chooser
        #: (a COUNT(*) over all partitions per miss; invalidated on insert).
        self._table_counts: dict[str, int] = {}
        super().__init__(
            schema,
            tokenizer,
            path=path,
            persist_index=persist_index,
            read_pool_size=read_pool_size,
        )

    def _make_dialect(self) -> ShardedSQLiteDialect:
        return ShardedSQLiteDialect(self.shards)

    # -- shard layout --------------------------------------------------------

    def shard_paths(self) -> list[str]:
        """The database file of every partition, in shard order."""
        if self.path == ":memory:":
            return [":memory:"] * self.shards
        return [f"{self.path}.shard{shard}" for shard in range(self.shards)]

    def _prepare_storage(self) -> None:
        """Validate the stored shard layout, then ATTACH the partitions.

        Validation runs entirely against the catalog *before* the first
        ATTACH (which would create missing shard files as empty databases):
        a rejected open leaves no debris on disk, and an established store
        whose partition file vanished — e.g. only the catalog was copied as
        a backup — fails fast instead of silently serving a partial dataset.
        """
        stored = self.get_metadata("_shard_count")
        if stored is None:
            if self._catalog_holds_rows():
                raise DatabaseError(
                    f"store at {self.path!r} is a plain (unsharded) SQLite "
                    f"store; open it with the 'sqlite' backend"
                )
        elif int(stored) != self.shards:
            raise DatabaseError(
                f"store at {self.path!r} was built with {stored} shard(s); "
                f"reopen it with shards={stored}, not {self.shards}"
            )
        elif self.is_persistent:
            missing = [
                shard_path
                for shard_path in self.shard_paths()
                if not Path(shard_path).exists()
            ]
            if missing:
                raise DatabaseError(
                    f"store at {self.path!r} is missing partition file(s) "
                    f"{', '.join(repr(p) for p in missing)}; restore them "
                    f"(a sharded store is the catalog plus every shard file)"
                )
        for shard, shard_path in enumerate(self.shard_paths()):
            self._conn.execute(
                sqlc.attach_sql(self.dialect.shard_schema(shard)), (shard_path,)
            )
        if stored is None:
            self._conn.execute(sqlc.SideTableSQL.META_DDL)
            self._conn.execute(
                sqlc.SideTableSQL.META_UPSERT, ("_shard_count", str(self.shards))
            )
            self._conn.commit()

    def _configure_journal_mode(self) -> None:
        """WAL for the catalog *and* every attached partition.

        ``PRAGMA journal_mode`` is per database file, not per connection, so
        the inherited catalog flip alone would leave the shard files — where
        every row actually lives — on the rollback journal.  Runs after
        :meth:`_prepare_storage` has validated the layout and ATTACHed the
        shards (a rejected open leaves no ``-wal`` debris, as that method
        promises).
        """
        super()._configure_journal_mode()
        if self.is_persistent:
            for shard in range(self.shards):
                self._conn.execute(
                    f"PRAGMA {self.dialect.shard_schema(shard)}.journal_mode=WAL"
                )

    def _catalog_holds_rows(self) -> bool:
        """True when the main database stores schema tables itself."""
        for table in self.schema:
            row = self._conn.execute(
                sqlc.TABLE_EXISTS_SQL, (table.name,)
            ).fetchone()
            if row is not None:
                return True
        return False

    # -- storage management --------------------------------------------------

    def _storage_ddl(self, table: Table) -> list[str]:
        rowseq = f"{self.dialect.quote(ROWSEQ_COLUMN)} INTEGER"
        return [
            sqlc.create_table_ddl(
                self.dialect,
                table,
                source=self.dialect.partition_source(table.name, shard),
                extra_columns=(rowseq,),
            )
            for shard in range(self.shards)
        ]

    def _physical_columns(self, table: Table) -> list[tuple[str, list[str]]]:
        expected = [*table.attribute_names, ROWSEQ_COLUMN]
        return [
            (self.dialect.shard_schema(shard), expected)
            for shard in range(self.shards)
        ]

    def _make_relation(self, table: Table) -> ShardedSQLiteRelation:
        return ShardedSQLiteRelation(self, table)

    # -- scatter-gather execution --------------------------------------------

    def _statements_per_plan(self) -> int:
        return self.shards

    def _shard_compilers(self) -> list[PlanCompiler]:
        """One compiler per scatter member, each under its shard's dialect."""
        if self._shard_compilers_cache is None:
            self._shard_compilers_cache = [
                PlanCompiler(
                    self.schema, ShardedSQLiteDialect(self.shards, scatter_shard=shard)
                )
                for shard in range(self.shards)
            ]
        return self._shard_compilers_cache

    # -- read-connection pool overrides --------------------------------------

    def _read_pool_enabled(self) -> bool:
        """File-backed sharded stores always pool their readers.

        ``read_pool_size=1`` still pools here: the capacity below collapses
        to one connection per shard — exactly the legacy dedicated-reader
        layout the scatter has fanned out over since PR 4 — so the control
        arm keeps its parallel scatter.  ``":memory:"`` stores own their
        attached shards inside the single main connection and cannot pool.
        """
        return (
            self.is_persistent
            and not self._closed
            and (self.shards > 1 or self._read_pool_size > 1)
        )

    def _read_pool_capacity(self) -> int:
        """Connections the pool may open: per-shard cursors × pool size.

        A streamed gather leases one connection per shard at once
        (``lease_many``), so the capacity scales with the shard count —
        ``read_pool_size`` then says how many such gathers (or that many
        independent point reads per shard) may run concurrently.
        """
        return self.shards * max(1, self._read_pool_size)

    def _configure_reader(self, reader: _LockedConnection) -> None:
        """Every pooled reader ATTACHes all partitions, so any reader can
        run any scatter member's statement."""
        super()._configure_reader(reader)
        for shard, shard_path in enumerate(self.shard_paths()):
            reader.execute(
                sqlc.attach_sql(self.dialect.shard_schema(shard)), (shard_path,)
            )

    def configure_read_pool(self, size: int | None) -> None:
        changed = size is not None and size != self._read_pool_size
        super().configure_read_pool(size)
        if changed:
            # The scatter pool's worker count scales with the pool size;
            # rebuild it lazily at the new width.
            with self._lock:
                if self._scatter_pool_instance is not None:
                    self._scatter_pool_instance.shutdown(wait=True)
                    self._scatter_pool_instance = None

    # -- scatter execution ----------------------------------------------------

    def _scatter(self, statements: list[CompiledStatement]) -> list[list[tuple]]:
        """Run one statement per shard; returns raw rows in shard order.

        File-backed stores fan out on the scatter pool, each task leasing a
        pooled reader for its one statement (readers only ever SELECT, so
        they need no cross-connection serialization — SQLite's file locking
        plus the commit below give them a consistent view).  ``":memory:"``
        stores own their attached shards inside the single main connection,
        so they execute serially there.
        """
        if not self.is_persistent or self.shards == 1:
            with self._lock:
                return [
                    list(self._conn.execute(s.sql, s.params)) for s in statements
                ]
        # Everything inserted so far must be visible to the readers.
        self._conn.commit()
        pool = self._scatter_pool()
        futures = [pool.submit(self._fetch_all, s) for s in statements]
        return [future.result() for future in futures]

    def _fetch_all(self, statement: CompiledStatement) -> list[tuple]:
        """One scatter member's rows, on a reader leased for the statement.

        Single leases never wait while holding a connection, so scatter
        tasks cannot deadlock the pool however many queries fan out at once.
        """
        with self._lease_read_connection() as reader:
            with reader.lock:  # one in-flight statement per connection
                cursor = reader.execute(statement.sql, statement.params)
                try:
                    return cursor.fetchall()
                finally:
                    cursor.close()

    def _scatter_pool(self) -> ThreadPoolExecutor:
        """The backend-owned shard fan-out pool.

        Deliberately *not* the :class:`~repro.server.QueryServer` worker
        pool: a query worker blocking on shard subtasks queued behind other
        queries on the same pool would deadlock under load.  The server's
        engine pool keys on the shard count instead, so every sharded engine
        brings its own fan-out lanes.  Sized to the read pool's capacity
        (floor: one worker per shard) so concurrent gathers' scatter tasks
        and streamed-prefetch producers don't starve each other.
        """
        with self._lock:
            if self._scatter_pool_instance is None:
                workers = max(self.shards, min(32, self._read_pool_capacity()))
                self._scatter_pool_instance = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-shard"
                )
            return self._scatter_pool_instance

    def _prepare_plan(self, plan: PathPlan) -> PathPlan:
        """Pick the most selective partitioned slot as the scatter position.

        The scatter slot reads one partition per member (probes can use the
        per-partition indexes directly); every other slot joins an all-shards
        union subselect SQLite cannot always push probes into.  Any slot is
        *correct* — each result network has exactly one tuple per slot, so
        per-shard streams stay disjoint and complete under any choice, and
        the ORDER BY terms never change — so the chooser minimizes the
        slot's estimated *post-filter* cardinality: a slot whose selections
        resolved to a primary-key set costs ``len(keys)`` however large its
        relation (the signal PR 5 flagged as better than raw row counts),
        and unfiltered slots fall back to catalog row counts, then to a
        ``COUNT(*)``.  Ties keep the lowest position, i.e. the historical
        slot-0 default.  With ``cost_planning`` off the raw-row-count
        chooser of PR 5 is kept bit-for-bit — the control arm the planner
        benchmarks compare against.
        """
        plan = super()._prepare_plan(plan)  # annotate estimate, reorder joins
        if len(plan.path) < 2:
            return plan
        if self.cost_planning:
            filters = plan.key_filter_map()
            catalog = self.statistics_catalog(collect=False)
            cards: list[float] = []
            for slot, name in enumerate(plan.path):
                keys = filters.get(slot)
                if keys is not None:
                    cards.append(float(len(keys)))
                    continue
                rows = catalog.rows(name) if catalog is not None else None
                cards.append(
                    float(rows) if rows is not None else float(self._table_count(name))
                )
        else:
            cards = [float(self._table_count(name)) for name in plan.path]
        best = min(range(len(plan.path)), key=lambda slot: (cards[slot], slot))
        if best == plan.scatter_position:
            return plan
        return replace(plan, scatter_position=best)

    def _scatter_slot_label(self, plan: PathPlan) -> str:
        """The ``--explain`` name of the plan's chosen scatter slot."""
        slot = plan.scatter_position
        table = plan.path[slot]
        keys = plan.key_filter_map().get(slot)
        if keys is not None:
            detail = f"{len(keys)} selection keys"
        else:
            detail = f"{self._table_count(table)} rows"
        label = f"t{slot} ({table}, {detail})"
        if slot != 0 and self.cost_planning:
            label += " [cost-chosen over default t0]"
        return label

    def _table_count(self, table_name: str) -> int:
        count = self._table_counts.get(table_name)
        if count is None:
            count = len(self.relation(table_name))
            self._table_counts[table_name] = count
        return count

    def insert(self, table_name: str, row: dict[str, Any]) -> Tuple:
        self._table_counts.pop(table_name, None)
        return super().insert(table_name, row)

    def _run_plan(
        self, plan: PathPlan, shard_rows: dict[int, int] | None = None
    ) -> list[tuple[Tuple, ...]]:
        """Scatter one path plan across the shards and gather in plan order.

        Every member statement projects its ORDER BY keys (``__o0..``), so
        the gather is a k-way :func:`merge_shard_streams` over exactly the
        keys SQLite ordered by — types agree per column across shards, and
        the key tuple is a total order (each slot contributes its tuple's
        identity), so merged rows reproduce the unsharded statement's order
        bit-for-bit and the merge can truncate at the plan's limit instead
        of sorting everything first.
        """
        compilers = self._shard_compilers()
        statements = [
            compilers[shard].compile_path(plan, project_order_keys=True)
            for shard in range(self.shards)
        ]
        per_shard = self._scatter(statements)
        relations = [self.relation(name) for name in plan.path]
        width = len(plan.path)
        results: list[tuple[Tuple, ...]] = []
        for _key, shard, row in merge_shard_streams(per_shard, width):
            network = self._decode_network(relations, row, offset=width)
            if not plan.keeps(network):
                continue
            if shard_rows is not None:
                shard_rows[shard] = shard_rows.get(shard, 0) + 1
            results.append(network)
            if plan.limit is not None and len(results) >= plan.limit:
                break
        return results

    def _run_union(
        self,
        members: list[tuple[int, PathPlan]],
        shard_rows: dict[int, int] | None = None,
    ) -> dict[int, list[tuple[Tuple, ...]]]:
        """Scatter the tagged UNION ALL and gather per spec.

        Each shard runs the same tagged statement over its partition of the
        scatter slot; the gather k-way-merges the streams under
        ``(discriminator, projected order keys)`` — the statements' global
        ORDER BY — and re-applies each spec's limit (a per-shard LIMIT is
        only an upper bound on the merged stream).
        """
        compilers = self._shard_compilers()
        statements = [
            compilers[shard].compile_union(members) for shard in range(self.shards)
        ]
        ord_width, _data_width = self.compiler.union_widths(members)
        per_shard = self._scatter(statements)
        member_relations = {
            index: [self.relation(name) for name in plan.path]
            for index, plan in members
        }
        limits = {index: plan.limit for index, plan in members}
        grouped: dict[int, list[tuple[Tuple, ...]]] = {
            index: [] for index, _plan in members
        }
        for _key, shard, row in merge_shard_streams(per_shard, 1 + ord_width):
            index = row[0]
            if limits[index] is not None and len(grouped[index]) >= limits[index]:
                continue
            grouped[index].append(
                self._decode_network(
                    member_relations[index], row, offset=1 + ord_width
                )
            )
            if shard_rows is not None:
                shard_rows[shard] = shard_rows.get(shard, 0) + 1
        return grouped

    # -- streamed scatter-gather ---------------------------------------------

    #: Row chunks each prefetch producer may buffer ahead of the merge
    #: (beyond the one chunk it holds while a full queue blocks it): deep
    #: enough to overlap shard fetches with merge/decode work, shallow
    #: enough that an early-stopping consumer leaves little behind.
    PREFETCH_DEPTH = 2

    @contextmanager
    def _shard_stream_sources(
        self, statements: list[CompiledStatement], execution: StreamedExecution
    ) -> Iterator[list[Iterator[tuple]]]:
        """Per-shard row streams of one streamed scatter, cleanup guaranteed.

        Three shapes, chosen by store and pool configuration:

        * pool disabled (``":memory:"`` owns its shards inside the main
          connection): serial lazy cursors interleaving on the writer —
          the pre-pool path, bit-for-bit;
        * ``read_pool_size=1`` (the control arm): one reader per shard,
          leased **atomically** for the merge's lifetime (incremental
          leasing could deadlock two gathers each holding half the pool),
          each serving one serial lazy cursor — the legacy dedicated-reader
          layout;
        * ``read_pool_size>1``: true parallel prefetch — one producer per
          shard on the scatter pool, each leasing its own reader and
          pushing row chunks into a bounded queue while the consumer
          merges (:meth:`_prefetch_shard_streams`).

        All three yield streams in shard order with identical row order, so
        the gather's merge — and therefore the query result — is
        byte-identical across them.
        """
        pool = self._reader_pool()
        if pool is None:
            sources = [
                self._iter_cursor(self._conn, statement, execution)
                for statement in statements
            ]
            try:
                yield sources
            finally:
                # heapq.merge never closes its sources; release every shard
                # cursor explicitly, however early the consumer stopped.
                for source in sources:
                    source.close()
            return
        self._conn.commit()  # everything inserted so far must be visible
        if self._read_pool_size <= 1:
            with pool.lease_many(len(statements)) as readers:
                sources = [
                    self._iter_cursor(readers[shard], statement, execution)
                    for shard, statement in enumerate(statements)
                ]
                try:
                    yield sources
                finally:
                    for source in sources:
                        source.close()
            return
        with self._prefetch_shard_streams(statements, execution) as sources:
            yield sources

    @contextmanager
    def _prefetch_shard_streams(
        self, statements: list[CompiledStatement], execution: StreamedExecution
    ) -> Iterator[list[Iterator[tuple]]]:
        """Producer-threaded per-shard streams: parallel cursor prefetch.

        One producer per shard runs on the scatter pool, leases a pooled
        reader and ``fetchmany``-chunks its cursor into a bounded queue;
        the consumer's merge pulls from the queue-backed streams, so shard
        fetches overlap each other *and* the merge/decode work.  Closing:
        the stop event flips, the queues are drained once to unblock any
        producer mid-``put``, and every producer exits on its next flag
        check — producers never block indefinitely and are joined before
        the context exits, with the prefetch overrun (produced but never
        merged) booked as short-circuited.  Producer errors travel through
        the queue sentinel and re-raise in the consumer's thread.
        """
        pool = self._scatter_pool()
        stop = threading.Event()
        queues: list[queue.Queue] = [
            queue.Queue(maxsize=self.PREFETCH_DEPTH) for _ in statements
        ]
        produced = [0] * len(statements)
        delivered = [0] * len(statements)

        def offer(shard: int, item: Any) -> bool:
            while not stop.is_set():
                try:
                    queues[shard].put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def produce(shard: int, statement: CompiledStatement) -> None:
            failure: BaseException | None = None
            try:
                with self._lease_read_connection() as reader:
                    with reader.lock:
                        cursor = reader.execute(statement.sql, statement.params)
                        try:
                            while not stop.is_set():
                                rows = cursor.fetchmany(self.STREAM_CHUNK)
                                if not rows:
                                    break
                                produced[shard] += len(rows)
                                if not offer(shard, rows):
                                    break
                        finally:
                            cursor.close()
            except BaseException as exc:  # noqa: BLE001 — re-raised consumer-side
                failure = exc
            offer(shard, _EndOfStream(failure))

        def shard_stream(shard: int) -> Iterator[tuple]:
            while True:
                item = queues[shard].get()
                if isinstance(item, _EndOfStream):
                    if item.error is not None:
                        raise item.error
                    return
                for row in item:
                    delivered[shard] += 1
                    yield row

        futures = [
            pool.submit(produce, shard, statement)
            for shard, statement in enumerate(statements)
        ]
        try:
            yield [shard_stream(shard) for shard in range(len(statements))]
        finally:
            stop.set()
            for shard_queue in queues:
                try:
                    while True:
                        shard_queue.get_nowait()
                except queue.Empty:
                    pass
            for future in futures:
                future.result()  # producers exit on the stop flag; no raise
            execution.rows_short_circuited += sum(produced) - sum(delivered)

    def _stream_plan(
        self, plan: PathPlan, execution: StreamedExecution
    ) -> "Iterator[tuple[Tuple, ...]]":
        """One plan as a lazy k-way merge over per-shard cursor streams."""
        compilers = self._shard_compilers()
        statements = [
            compilers[shard].compile_path(plan, project_order_keys=True)
            for shard in range(self.shards)
        ]
        execution.statements += self.shards
        relations = [self.relation(name) for name in plan.path]
        width = len(plan.path)
        with self._shard_stream_sources(statements, execution) as sources:
            produced = 0
            for _key, shard, row in merge_shard_streams(sources, width):
                network = self._decode_network(relations, row, offset=width)
                if not plan.keeps(network):
                    continue
                execution.shard_rows[shard] = (
                    execution.shard_rows.get(shard, 0) + 1
                )
                yield network
                produced += 1
                if plan.limit is not None and produced >= plan.limit:
                    break

    def _stream_union(
        self, members: list[tuple[int, PathPlan]], execution: StreamedExecution
    ) -> "Iterator[tuple[int, tuple]]":
        """The tagged UNION ALL as a lazy merge of per-shard cursor streams."""
        compilers = self._shard_compilers()
        statements = [
            compilers[shard].compile_union(members) for shard in range(self.shards)
        ]
        ord_width, _data_width = self.compiler.union_widths(members)
        execution.statements += self.shards
        member_relations = {
            index: [self.relation(name) for name in plan.path]
            for index, plan in members
        }
        limits = {index: plan.limit for index, plan in members}
        counts = {index: 0 for index, _plan in members}
        with self._shard_stream_sources(statements, execution) as sources:
            for _key, shard, row in merge_shard_streams(sources, 1 + ord_width):
                index = row[0]
                if limits[index] is not None and counts[index] >= limits[index]:
                    continue  # per-shard LIMIT overshoot beyond the true cap
                network = self._decode_network(
                    member_relations[index], row, offset=1 + ord_width
                )
                counts[index] += 1
                execution.shard_rows[shard] = (
                    execution.shard_rows.get(shard, 0) + 1
                )
                yield index, network

    # -- lifecycle -----------------------------------------------------------

    def _close_connections(self) -> None:
        if self._scatter_pool_instance is not None:
            self._scatter_pool_instance.shutdown(wait=True)
            self._scatter_pool_instance = None
        super()._close_connections()  # closes the read pool, then the writer
