"""The SQL planner/compiler layer shared by the SQL-speaking backends.

Join-path execution compiles in three explicit steps instead of hand-wired
string building inside each backend:

1. **Planning** (:func:`plan_path` / :func:`plan_batch`): resolved
   per-position primary-key filters are split into *inline* predicates
   (bound ``pk IN (...)`` parameters) and *post* filters (applied in Python
   after the fetch), honoring the statement's parameter budget.  Batch
   planning additionally decides which specs can share one tagged ``UNION
   ALL`` statement and records a human-readable *fallback reason* for every
   spec that cannot (surfaced by ``--explain``).
2. **Compilation** (:class:`PlanCompiler`): a :class:`PathPlan` — the
   backend-neutral IR of one join path — becomes a
   :class:`CompiledStatement` (SQL text + bound parameters).  All physical
   naming goes through a :class:`SQLiteDialect`, so the same compiler emits
   plain single-file statements and per-shard member statements
   (:class:`ShardedSQLiteDialect` rewrites table sources and insertion-order
   terms) without the plans changing.
3. **Execution** stays in the backend: it owns connections, decodes result
   rows and applies the plan's post filters.

The relation-level CRUD statements and the ``_repro_*`` side-table
statements (persisted index postings, result cache, metadata) live here too,
so a backend contains **no inline SQL text building** — the compiler layer
is the single place SQL comes from, which is what makes sharding (and a
future Postgres dialect) a dialect/executor concern instead of a rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Protocol, Sequence

from repro.db.schema import ForeignKey, Schema, Table

#: Above this many candidate keys per position the ``pk IN (...)`` predicate
#: is applied in Python instead of SQL (SQLite caps bound parameters per
#: statement; historically SQLITE_MAX_VARIABLE_NUMBER = 999).
MAX_INLINE_KEYS = 500

#: Budget for *all* inline keys of one statement, across positions (and, for
#: a batched statement, across all of its members).
MAX_TOTAL_INLINE_KEYS = 900


def quote_identifier(identifier: str) -> str:
    """Quote an identifier for SQLite (tables/attributes are data here)."""
    return '"' + identifier.replace('"', '""') + '"'


# -- the IR -------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledStatement:
    """One executable statement: SQL text plus its bound parameters."""

    sql: str
    params: tuple[Any, ...] = ()


@dataclass(frozen=True)
class PathPlan:
    """The plan of one join path with resolved keyword selections.

    ``inline_filters`` hold the per-position key sets small enough to bind as
    SQL parameters (already repr-sorted, so compiled statements are
    deterministic); ``post_filters`` hold the oversized sets the executor
    applies in Python after the fetch.  ``limit`` is the per-path top-k cap —
    the compiler only pushes it down to SQL when no post filter exists
    (otherwise SQL could truncate rows the post filter would have kept).
    ``scatter_position`` is a physical hint for partitioned dialects: the
    join slot whose table reads one partition per scatter member (any slot is
    correct — every network has exactly one tuple there, so per-shard results
    stay disjoint and complete; the sharded backend picks the most selective
    one).  Unpartitioned dialects ignore it, and it never affects the
    statement's ORDER BY, so the row order is identical for every choice.

    ``join_order`` is the second physical hint: the order join slots are
    *introduced* in the FROM/JOIN clauses (``None`` = path order).  It must
    be a connected permutation of the slots — each entry adjacent to an
    already-introduced one — so every FK edge still appears in exactly one
    ON clause.  Projection, WHERE and ORDER BY are untouched, and the ORDER
    BY tuple is a total order over result networks, so every valid order
    returns byte-identical rows (inner joins commute; see
    ``tests/test_plan_rewrites``).  ``estimated_rows`` is the cost model's
    calibrated cardinality estimate (``None`` when statistics are missing or
    cost planning is off) — an annotation for sizing and ``--explain``,
    never a semantic input.
    """

    path: tuple[str, ...]
    edges: tuple[ForeignKey, ...]
    inline_filters: tuple[tuple[int, tuple[Any, ...]], ...]
    post_filters: tuple[tuple[int, frozenset], ...]
    limit: int | None
    scatter_position: int = 0
    join_order: tuple[int, ...] | None = None
    estimated_rows: float | None = None

    @property
    def filtered_positions(self) -> frozenset[int]:
        """Positions with *any* selection filter — they sort by key repr."""
        return frozenset(
            position for position, _keys in self.inline_filters
        ) | frozenset(position for position, _keys in self.post_filters)

    @property
    def sql_limit(self) -> int | None:
        """The LIMIT the statement may carry (None when post-filtering)."""
        return self.limit if not self.post_filters else None

    def keeps(self, network: Sequence) -> bool:
        """Apply the post filters to one decoded result network."""
        return all(
            network[position].key in keys for position, keys in self.post_filters
        )

    # -- subsumption ---------------------------------------------------------

    def key_filter_map(self) -> dict[int, frozenset]:
        """All key filters per position, inline and post merged back together.

        The inline/post split is a physical parameter-budget decision; the
        *logical* filter of a position is the union of whichever side it
        landed on (the planner never splits one position across both).
        """
        merged = {position: frozenset(keys) for position, keys in self.inline_filters}
        for position, keys in self.post_filters:
            merged[position] = frozenset(keys)
        return merged

    def order_signature(self) -> tuple[str, ...]:
        """The abstract per-slot ORDER BY shape this plan compiles to.

        Mirrors ``PlanCompiler.order_terms``: slot 0 sorts by insertion
        order when unfiltered and by key ``repr()`` when filtered; every
        later slot always sorts by key ``repr()``.  Two plans with equal
        signatures produce rows in a *comparable* order — filtering one
        plan's rows down to the other's keys preserves the other's row
        sequence exactly.
        """
        filtered = self.filtered_positions
        return tuple(
            "insert" if i == 0 and 0 not in filtered else "key-repr"
            for i in range(len(self.path))
        )

    def residual_filters(self, other: "PathPlan") -> dict[int, frozenset] | None:
        """The filters to re-apply when this plan's rows answer ``other``.

        ``None`` means no subsumption: the plans differ in join network or
        ORDER BY shape, or this plan is *narrower* somewhere (its rows may be
        missing networks ``other`` needs).  Otherwise the returned mapping
        holds, per position, the key sets of ``other`` that are strictly
        tighter than (or absent from) this plan — applying them to this
        plan's rows, in order, yields exactly ``other``'s rows (limits
        aside; completeness under a LIMIT is the caller's check).
        """
        if self.path != other.path or self.edges != other.edges:
            return None
        if self.order_signature() != other.order_signature():
            return None
        mine, theirs = self.key_filter_map(), other.key_filter_map()
        for position, keys in mine.items():
            other_keys = theirs.get(position)
            if other_keys is None or not other_keys <= keys:
                return None  # cached plan is narrower here: rows may be missing
        return {
            position: keys
            for position, keys in theirs.items()
            if keys != mine.get(position)
        }

    def subsumes(self, other: "PathPlan") -> bool:
        """True when every result network of ``other`` is among this plan's
        rows (ignoring limits): same join network, same ORDER BY shape, and
        this plan's key filters are a superset (or equal, or absent) at every
        position."""
        return self.residual_filters(other) is not None


#: One member of a tagged UNION ALL batch: ``(spec index, plan)``.
UnionMember = tuple[int, PathPlan]


@dataclass(frozen=True)
class BatchPlan:
    """How one ``execute_paths_batched`` call splits across statements.

    ``members`` share a single tagged ``UNION ALL`` statement; every spec in
    ``fallbacks`` executes through its own :class:`PathPlan` (with a fresh
    parameter budget, which is what lets it inline what the shared statement
    could not), annotated with the human-readable reason it left the batch.
    """

    members: tuple[UnionMember, ...]
    fallbacks: tuple[tuple[int, PathPlan, str], ...]


# -- planning -----------------------------------------------------------------


def _split_key_filters(
    key_filters: Mapping[int, set],
    max_inline_keys: int,
    inline_budget: int,
) -> tuple[tuple[tuple[int, tuple], ...], tuple[tuple[int, frozenset], ...], int]:
    """Split resolved filters into inline/post sets under the budget.

    Returns ``(inline, post, budget_left)``.  Positions are visited in
    ascending order so parameter order (and hence the compiled SQL) is
    deterministic for equal plans.
    """
    inline: list[tuple[int, tuple]] = []
    post: list[tuple[int, frozenset]] = []
    for position in sorted(key_filters):
        keys = key_filters[position]
        if len(keys) > min(max_inline_keys, inline_budget):
            post.append((position, frozenset(keys)))
            continue
        inline_budget -= len(keys)
        inline.append((position, tuple(sorted(keys, key=repr))))
    return tuple(inline), tuple(post), inline_budget


def plan_path(
    path: Sequence[str],
    edges: Sequence[ForeignKey],
    key_filters: Mapping[int, set],
    limit: int | None,
    *,
    max_inline_keys: int | None = None,
    inline_budget: int | None = None,
) -> PathPlan:
    """Plan one join path (validated, with selections already resolved)."""
    if max_inline_keys is None:
        max_inline_keys = MAX_INLINE_KEYS
    if inline_budget is None:
        inline_budget = MAX_TOTAL_INLINE_KEYS
    inline, post, _left = _split_key_filters(key_filters, max_inline_keys, inline_budget)
    return PathPlan(
        path=tuple(path),
        edges=tuple(edges),
        inline_filters=inline,
        post_filters=post,
        limit=limit,
    )


class Estimator(Protocol):
    """What the planner needs from a cardinality model (see ``db/stats``)."""

    def estimate(self, plan: PathPlan) -> float | None: ...

    def slot_cardinalities(self, plan: PathPlan) -> list[float] | None: ...


def plan_batch(
    resolved: Sequence[tuple[int, Sequence[str], Sequence[ForeignKey], Mapping[int, set]]],
    limit: int | None,
    *,
    max_inline_keys: int | None = None,
    inline_budget: int | None = None,
    estimator: Estimator | None = None,
) -> BatchPlan:
    """Split resolved specs between one shared UNION ALL and solo fallbacks.

    ``resolved`` holds ``(spec index, path, edges, key_filters)`` for every
    spec that survived validation and is not provably empty.  A spec leaves
    the shared statement when one of its key sets exceeds the per-predicate
    inline cap, or — if the surviving specs together blow the statement-wide
    parameter budget — when it is evicted as one of the most *expensive*
    members (largest estimated result rows, falling back to inline-key count
    when the estimator has no answer; historically eviction was blind spec
    order).  Either way it gets its own :class:`PathPlan` (fresh budget —
    solo statements can post-filter, shared ones cannot) and a reason string
    for ``--explain``.
    """
    if max_inline_keys is None:
        max_inline_keys = MAX_INLINE_KEYS
    if inline_budget is None:
        inline_budget = MAX_TOTAL_INLINE_KEYS
    members: list[UnionMember] = []
    fallbacks: list[tuple[int, PathPlan, str]] = []
    sized: list[tuple[int, Sequence[str], Sequence[ForeignKey], Mapping[int, set], int]] = []
    for index, path, edges, key_filters in resolved:
        inline_keys = sum(len(keys) for keys in key_filters.values())
        oversized = any(len(keys) > max_inline_keys for keys in key_filters.values())
        if oversized:
            solo = plan_path(
                path,
                edges,
                key_filters,
                limit,
                max_inline_keys=max_inline_keys,
                inline_budget=inline_budget,
            )
            reason = f"selection key set exceeds the {max_inline_keys}-key inline cap"
            fallbacks.append((index, solo, reason))
            continue
        sized.append((index, path, edges, key_filters, inline_keys))
    total_keys = sum(entry[4] for entry in sized)
    evicted: dict[int, str] = {}
    if total_keys > inline_budget:
        # Cost-aware eviction: drop the most expensive members first until
        # the rest fit the budget, so the cheap (and typically best-ranked)
        # specs keep sharing one statement.
        overflow = total_keys
        costed: list[tuple[float, str, int, int]] = []
        for index, path, edges, key_filters, inline_keys in sized:
            if inline_keys == 0:
                continue  # keyless members consume no budget: never evicted
            estimate = None
            if estimator is not None:
                estimate = estimator.estimate(
                    plan_path(
                        path,
                        edges,
                        key_filters,
                        limit,
                        max_inline_keys=max_inline_keys,
                        inline_budget=inline_keys,
                    )
                )
            if estimate is not None:
                cost, cost_label = estimate, f"~{estimate:.1f} estimated rows"
            else:
                cost, cost_label = float(inline_keys), f"{inline_keys} inline keys"
            costed.append((cost, cost_label, inline_keys, index))
        costed.sort(key=lambda entry: (-entry[0], -entry[2], -entry[3]))
        remaining = total_keys
        for cost, cost_label, inline_keys, index in costed:
            if remaining <= inline_budget:
                break
            remaining -= inline_keys
            evicted[index] = (
                f"UNION ALL parameter budget exhausted "
                f"({overflow} keys over the {inline_budget}-key budget); "
                f"evicted most expensive first ({cost_label})"
            )
    for index, path, edges, key_filters, inline_keys in sized:
        if index in evicted:
            solo = plan_path(
                path,
                edges,
                key_filters,
                limit,
                max_inline_keys=max_inline_keys,
                inline_budget=inline_budget,
            )
            fallbacks.append((index, solo, evicted[index]))
            continue
        members.append(
            (
                index,
                plan_path(
                    path,
                    edges,
                    key_filters,
                    limit,
                    max_inline_keys=max_inline_keys,
                    inline_budget=inline_keys or 1,  # already fits: inline all
                ),
            )
        )
    return BatchPlan(members=tuple(members), fallbacks=tuple(fallbacks))


# -- cost-based rewrites ------------------------------------------------------
#
# Every rewrite below is *physical*: it may change which partition scatters,
# the FROM/JOIN introduction order, or batch membership — never projection,
# WHERE, ORDER BY or LIMIT.  The compiled ORDER BY tuple is a total order
# over result networks, so rewritten plans return byte-identical rows; the
# parity suites in tests/test_plan_rewrites.py pin exactly that, and any
# estimator gap (``None``) keeps the unrewritten plan.


def annotate_estimate(plan: PathPlan, estimator: Estimator | None) -> PathPlan:
    """Attach the cost model's row estimate to a plan (no-op on a gap)."""
    if estimator is None:
        return plan
    estimate = estimator.estimate(plan)
    if estimate is None:
        return plan
    return replace(plan, estimated_rows=estimate)


def reorder_joins(plan: PathPlan, estimator: Estimator | None) -> PathPlan:
    """Greedy cost-based join introduction order over the path chain.

    Starts at the slot with the smallest estimated post-filter cardinality
    and repeatedly extends toward whichever chain neighbor is cheaper — the
    classic smallest-relation-first heuristic, restricted to connected
    orders so every FK edge keeps exactly one ON clause.  Returns the plan
    unchanged when the estimator has a gap or the default order already
    wins (``join_order`` stays ``None``: the rewrite is provably absent).
    """
    if estimator is None or len(plan.path) < 2:
        return plan
    cards = estimator.slot_cardinalities(plan)
    if cards is None:
        return plan  # estimator gap: keep the unrewritten plan
    n = len(plan.path)
    start = min(range(n), key=lambda slot: (cards[slot], slot))
    order = [start]
    left, right = start - 1, start + 1
    while left >= 0 or right < n:
        if right >= n or (left >= 0 and (cards[left], left) <= (cards[right], right)):
            order.append(left)
            left -= 1
        else:
            order.append(right)
            right += 1
    if order == list(range(n)):
        return plan
    return replace(plan, join_order=tuple(order))


# -- dialects -----------------------------------------------------------------


class SQLiteDialect:
    """Physical naming + ordering hooks for a single-file SQLite store."""

    name = "sqlite"

    def quote(self, identifier: str) -> str:
        return quote_identifier(identifier)

    def table_source(
        self,
        table_name: str,
        position: int | None = None,
        scatter_position: int | None = None,
    ) -> str:
        """The FROM/JOIN source of a logical table.

        ``position`` is the join slot (``None`` for relation-level CRUD);
        the sharded dialect resolves the scatter slot — ``scatter_position``
        when the plan carries one, its own default otherwise — to one
        partition and every other slot to an all-shards union.
        """
        return self.quote(table_name)

    def insertion_order_term(self, alias: str, table_name: str) -> str:
        """The expression reproducing insertion order for one alias."""
        return f"{alias}.rowid"

    def sort_key_term(self, expression: str) -> str:
        """Python ``repr()`` ordering of one key expression (see backend)."""
        return f"repro_repr({expression})"


class ShardedSQLiteDialect(SQLiteDialect):
    """One shard's view of a hash-partitioned store.

    Every logical table is partitioned across ``shards`` attached databases
    (``shard0.. shardN-1``).  A statement compiled under this dialect is the
    *scatter member* of shard ``scatter_shard``: the scatter slot (position
    0 — every result network has its base tuple in exactly one partition, so
    the per-shard results are disjoint and complete) reads that shard's
    partition directly, while every other slot joins against an all-shards
    ``UNION ALL`` subselect.  Insertion order comes from the explicit
    ``_rowseq`` column partitions carry (a view over attached files has no
    usable ``rowid``), which preserves the unsharded backend's global
    insertion order exactly.
    """

    name = "sqlite-sharded"

    #: The join slot that scatters across partitions.
    scatter_position = 0

    def __init__(self, shards: int, scatter_shard: int | None = None):
        if shards < 1:
            raise ValueError("shards must be positive")
        self.shards = shards
        self.scatter_shard = scatter_shard

    def shard_schema(self, shard: int) -> str:
        """The ATTACH alias of one shard database."""
        return f"shard{shard}"

    def partition_source(self, table_name: str, shard: int) -> str:
        """One shard's partition of a logical table."""
        return f"{self.quote(self.shard_schema(shard))}.{self.quote(table_name)}"

    def union_source(self, table_name: str) -> str:
        """All partitions of a logical table as one FROM-able subselect."""
        arms = " UNION ALL ".join(
            f"SELECT * FROM {self.partition_source(table_name, shard)}"
            for shard in range(self.shards)
        )
        return f"({arms})"

    def table_source(
        self,
        table_name: str,
        position: int | None = None,
        scatter_position: int | None = None,
    ) -> str:
        target = self.scatter_position if scatter_position is None else scatter_position
        if position == target and self.scatter_shard is not None:
            return self.partition_source(table_name, self.scatter_shard)
        return self.union_source(table_name)

    def insertion_order_term(self, alias: str, table_name: str) -> str:
        return f'{alias}.{self.quote("_rowseq")}'


# -- compilation --------------------------------------------------------------


class PlanCompiler:
    """Compiles :class:`PathPlan` IR into SQL under one dialect."""

    def __init__(self, schema: Schema, dialect: SQLiteDialect):
        self.schema = schema
        self.dialect = dialect

    # -- schema lookups ------------------------------------------------------

    def columns(self, table_name: str) -> list[str]:
        return list(self.schema.table(table_name).attribute_names)

    def primary_key(self, table_name: str) -> str:
        return self.schema.table(table_name).primary_key

    # -- join-path pieces ----------------------------------------------------

    def join_lines(self, plan: PathPlan) -> list[str]:
        """``FROM``/``JOIN`` clauses of one join path (aliases ``t0..tN``).

        Aliases always name the plan's *slot* (``t{i}`` = ``plan.path[i]``),
        so projection, predicates and ORDER BY never care about the physical
        introduction order: a ``plan.join_order`` only permutes which slot
        anchors the FROM clause and which FK edge each JOIN line consumes.
        """
        dialect = self.dialect
        scatter = plan.scatter_position
        order = plan.join_order or tuple(range(len(plan.path)))
        if sorted(order) != list(range(len(plan.path))):
            raise ValueError(
                f"join order {order!r} is not a permutation of the "
                f"{len(plan.path)} join slots"
            )
        first = order[0]
        lines = [
            f"FROM {dialect.table_source(plan.path[first], first, scatter)} "
            f"AS t{first}"
        ]
        introduced = {first}
        for slot in order[1:]:
            if slot - 1 in introduced:
                anchor = slot - 1
            elif slot + 1 in introduced:
                anchor = slot + 1
            else:
                raise ValueError(
                    f"join order {order!r} is not connected at slot {slot}"
                )
            bound_attr, probe_attr = _edge_attrs(
                plan.edges[min(slot, anchor)], plan.path[anchor], plan.path[slot]
            )
            lines.append(
                f"JOIN {dialect.table_source(plan.path[slot], slot, scatter)} "
                f"AS t{slot} "
                f"ON t{anchor}.{dialect.quote(bound_attr)} "
                f"= t{slot}.{dialect.quote(probe_attr)}"
            )
            introduced.add(slot)
        return lines

    def inline_predicates(self, plan: PathPlan) -> tuple[list[str], list[Any]]:
        """``pk IN (...)`` predicates + bound parameters per filtered slot."""
        predicates: list[str] = []
        params: list[Any] = []
        for position, keys in plan.inline_filters:
            pk = self.primary_key(plan.path[position])
            placeholders = ", ".join("?" for _ in keys)
            predicates.append(
                f"t{position}.{self.dialect.quote(pk)} IN ({placeholders})"
            )
            params.extend(keys)
        return predicates, params

    def order_terms(self, plan: PathPlan) -> list[str]:
        """Per-slot ORDER BY terms reproducing the in-memory nested-loop order.

        The base table scans in insertion order unless selected (then keys
        are sorted by ``repr()``), and every join probe returns matches
        sorted by ``repr()`` — so ``limit`` truncates to the same rows on
        every backend and every dialect.  The batched compiler (and the
        sharded gather step) reuse these terms verbatim, which is what keeps
        batched, sharded and sequential row order in lockstep.
        """
        filtered = plan.filtered_positions
        terms = []
        for i, table_name in enumerate(plan.path):
            if i == 0 and 0 not in filtered:
                terms.append(self.dialect.insertion_order_term("t0", table_name))
            else:
                pk = self.dialect.quote(self.primary_key(table_name))
                terms.append(self.dialect.sort_key_term(f"t{i}.{pk}"))
        return terms

    # -- whole statements ----------------------------------------------------

    def compile_path(
        self, plan: PathPlan, *, project_order_keys: bool = False
    ) -> CompiledStatement:
        """One join path as a single SELECT.

        With ``project_order_keys`` the statement's leading columns are the
        plan's order terms (``__o0..``) — the sharded executor projects them
        so per-shard result streams can merge in Python under exactly the
        statement's ORDER BY.
        """
        order_terms = self.order_terms(plan)
        select_list: list[str] = []
        if project_order_keys:
            select_list.extend(
                f"{term} AS __o{i}" for i, term in enumerate(order_terms)
            )
        for i, table_name in enumerate(plan.path):
            select_list.extend(
                f"t{i}.{self.dialect.quote(column)}"
                for column in self.columns(table_name)
            )
        lines = ["SELECT " + ", ".join(select_list)]
        lines.extend(self.join_lines(plan))
        predicates, params = self.inline_predicates(plan)
        if predicates:
            lines.append("WHERE " + " AND ".join(predicates))
        lines.append("ORDER BY " + ", ".join(order_terms))
        if plan.sql_limit is not None:
            lines.append("LIMIT ?")
            params.append(plan.sql_limit)
        return CompiledStatement("\n".join(lines), tuple(params))

    def union_widths(self, members: Sequence[UnionMember]) -> tuple[int, int]:
        """``(order-key width, data width)`` all members NULL-pad to."""
        ord_width = max(len(plan.path) for _i, plan in members)
        data_width = max(
            sum(len(self.columns(name)) for name in plan.path)
            for _i, plan in members
        )
        return ord_width, data_width

    def compile_union(self, members: Sequence[UnionMember]) -> CompiledStatement:
        """Many join paths as one tagged ``UNION ALL`` statement.

        Each member becomes one compound-select arm ``SELECT <spec index>,
        <order keys>, <columns> FROM ... [ORDER BY ... LIMIT ?]``,
        NULL-padded to a common width; the leading discriminator column
        attributes every result row back to its spec, and the member-local
        ORDER BY/LIMIT (plus a global ORDER BY over discriminator + order
        keys) reproduces exactly the rows, order and truncation of a
        sequential per-path statement.
        """
        ord_width, data_width = self.union_widths(members)
        params: list[Any] = []
        selects: list[str] = []
        for index, plan in members:
            order_terms = self.order_terms(plan)
            select_list = [f"{index} AS __b"]
            select_list.extend(
                f"{term} AS __o{i}" for i, term in enumerate(order_terms)
            )
            select_list.extend(
                f"NULL AS __o{i}" for i in range(len(order_terms), ord_width)
            )
            columns = 0
            for i, table_name in enumerate(plan.path):
                names = self.columns(table_name)
                select_list.extend(
                    f"t{i}.{self.dialect.quote(column)}" for column in names
                )
                columns += len(names)
            select_list.extend("NULL" for _ in range(columns, data_width))
            lines = ["SELECT " + ", ".join(select_list)]
            lines.extend(self.join_lines(plan))
            predicates, member_params = self.inline_predicates(plan)
            params.extend(member_params)
            if predicates:
                lines.append("WHERE " + " AND ".join(predicates))
            if plan.sql_limit is not None:
                # The per-spec top-k cap must truncate in this member's own
                # order, inside the member (a compound LIMIT would be global).
                lines.append("ORDER BY " + ", ".join(order_terms))
                lines.append("LIMIT ?")
                params.append(plan.sql_limit)
                selects.append("SELECT * FROM (\n" + "\n".join(lines) + "\n)")
            else:
                selects.append("\n".join(lines))
        # Global order: discriminator first, then each member's own order
        # keys (ordinals 2..ord_width+1); members never compare against each
        # other, so the mixed rowid/repr types across members are harmless.
        statement = "\nUNION ALL\n".join(selects) + "\nORDER BY " + ", ".join(
            str(ordinal) for ordinal in range(1, ord_width + 2)
        )
        return CompiledStatement(statement, tuple(params))


def _edge_attrs(
    edge: ForeignKey, current_table: str, next_table: str
) -> tuple[str, str]:
    """``(bound attr on current, probe attr on next)`` for one join hop."""
    if edge.source == current_table and edge.target == next_table:
        return edge.source_attr, edge.target_attr
    if edge.source == next_table and edge.target == current_table:
        return edge.target_attr, edge.source_attr
    raise ValueError(
        f"foreign key {edge} does not connect {current_table!r} and {next_table!r}"
    )


# -- relation-level statements ------------------------------------------------


def create_table_ddl(
    dialect: SQLiteDialect,
    table: Table,
    *,
    source: str | None = None,
    extra_columns: Sequence[str] = (),
) -> str:
    """``CREATE TABLE IF NOT EXISTS`` for one logical table (or partition).

    ``extra_columns`` are raw column definitions appended after the schema
    attributes (the sharded backend adds its ``_rowseq`` ordering column).
    """
    source = source or dialect.table_source(table.name)
    columns = [dialect.quote(name) for name in table.attribute_names]
    columns.extend(extra_columns)
    return (
        f"CREATE TABLE IF NOT EXISTS {source} "
        f"({', '.join(columns)}, PRIMARY KEY ({dialect.quote(table.primary_key)}))"
    )


def create_index_ddl(
    dialect: SQLiteDialect,
    table: Table,
    attribute: str,
    *,
    source: str | None = None,
    schema_prefix: str = "",
) -> str:
    """``CREATE INDEX IF NOT EXISTS`` on one attribute.

    ``schema_prefix`` places the index in an attached database (SQLite
    indexes live in the schema of their table; the index *name* carries the
    prefix, the table reference must be schema-less).
    """
    index_name = dialect.quote(f"ix_{table.name}_{attribute}")
    if schema_prefix:
        index_name = f"{dialect.quote(schema_prefix)}.{index_name}"
    source = source or dialect.quote(table.name)
    return (
        f"CREATE INDEX IF NOT EXISTS {index_name} "
        f"ON {source} ({dialect.quote(attribute)})"
    )


def insert_sql(
    dialect: SQLiteDialect,
    table: Table,
    *,
    source: str | None = None,
    extra_columns: Sequence[str] = (),
) -> str:
    """Positional ``INSERT`` over the schema attributes (+ extras)."""
    source = source or dialect.table_source(table.name)
    columns = [dialect.quote(name) for name in table.attribute_names]
    columns.extend(dialect.quote(name) for name in extra_columns)
    placeholders = ", ".join("?" for _ in columns)
    return f"INSERT INTO {source} ({', '.join(columns)}) VALUES ({placeholders})"


def select_where_sql(
    dialect: SQLiteDialect,
    table: Table,
    attribute: str,
    *,
    source: str | None = None,
) -> str:
    """All schema columns of rows with ``attribute IS ?`` (point query)."""
    source = source or dialect.table_source(table.name)
    select_list = ", ".join(dialect.quote(name) for name in table.attribute_names)
    return (
        f"SELECT {select_list} FROM {source} "
        f"WHERE {dialect.quote(attribute)} IS ?"
    )


def scan_sql(
    dialect: SQLiteDialect,
    table: Table,
    *,
    source: str | None = None,
    keys_only: bool = False,
) -> str:
    """Full scan (all columns or just the primary key) in insertion order."""
    source = source or dialect.table_source(table.name)
    names = [table.primary_key] if keys_only else list(table.attribute_names)
    select_list = ", ".join(f"t0.{dialect.quote(name)}" for name in names)
    order = dialect.insertion_order_term("t0", table.name)
    return f"SELECT {select_list} FROM {source} AS t0 ORDER BY {order}"


def count_sql(
    dialect: SQLiteDialect, table: Table, *, source: str | None = None
) -> str:
    source = source or dialect.table_source(table.name)
    return f"SELECT COUNT(*) FROM {source}"


def table_info_sql(table_name: str, *, schema_prefix: str = "") -> str:
    """``PRAGMA table_info`` of one physical table (schema verification).

    ``schema_prefix`` targets a table inside an attached database (the
    pragma itself is what gets qualified: ``PRAGMA "shard0".table_info``).
    """
    prefix = f"{quote_identifier(schema_prefix)}." if schema_prefix else ""
    return f"PRAGMA {prefix}table_info({quote_identifier(table_name)})"


def attach_sql(alias: str) -> str:
    """``ATTACH DATABASE ? AS <alias>`` (the file path binds as a parameter)."""
    return f"ATTACH DATABASE ? AS {quote_identifier(alias)}"


def max_column_sql(column: str, source: str) -> str:
    """``SELECT MAX(column)`` of one physical table (sequence resumption)."""
    return f"SELECT MAX({quote_identifier(column)}) FROM {source}"


#: Does a table of this name exist in the main database?  (Backend-mixup
#: guard: a plain store opened through the sharded backend must fail fast.)
TABLE_EXISTS_SQL = "SELECT name FROM sqlite_master WHERE type = 'table' AND name = ?"


# -- side-table statements ----------------------------------------------------


class SideTableSQL:
    """Every ``_repro_*`` side-table statement, in one place.

    The side tables persist derived state next to the rows: backend metadata
    (``_repro_meta``), inverted-index postings (``_repro_index_*``), planner
    statistics (``_repro_stats_*``) and the cross-session result cache
    (``_repro_result_cache``).  Postings keys are
    stored as JSON arrays; every index/cache row carries a ``schema_key`` so
    several datasets coexisting in one file keep independent persisted state
    instead of overwriting each other's on every alternation.
    """

    META_DDL = (
        "CREATE TABLE IF NOT EXISTS _repro_meta (key TEXT PRIMARY KEY, value TEXT)"
    )
    META_UPSERT = "INSERT OR REPLACE INTO _repro_meta (key, value) VALUES (?, ?)"
    META_SELECT = "SELECT value FROM _repro_meta WHERE key = ?"
    META_SELECT_ALL = "SELECT key, value FROM _repro_meta ORDER BY key"

    #: Suffixes of the index side tables (used by the drop/replace loops).
    INDEX_TABLE_NAMES = ("postings", "attr_stats", "table_counts", "schema_terms", "meta")

    INDEX_TABLES_DDL = (
        "CREATE TABLE IF NOT EXISTS _repro_index_meta ("
        "schema_key TEXT, key TEXT, value TEXT, PRIMARY KEY (schema_key, key))",
        "CREATE TABLE IF NOT EXISTS _repro_index_postings ("
        "schema_key TEXT, term TEXT, tbl TEXT, attr TEXT, occurrences INTEGER, keys TEXT)",
        "CREATE TABLE IF NOT EXISTS _repro_index_attr_stats ("
        "schema_key TEXT, tbl TEXT, attr TEXT, total_tokens INTEGER, cell_count INTEGER)",
        "CREATE TABLE IF NOT EXISTS _repro_index_table_counts ("
        "schema_key TEXT, tbl TEXT, tuples INTEGER, PRIMARY KEY (schema_key, tbl))",
        "CREATE TABLE IF NOT EXISTS _repro_index_schema_terms ("
        "schema_key TEXT, term TEXT, tbl TEXT)",
    )

    INDEX_META_SELECT = (
        "SELECT key, value FROM _repro_index_meta WHERE schema_key = ?"
    )
    INDEX_POSTINGS_SELECT = (
        "SELECT term, tbl, attr, occurrences, keys "
        "FROM _repro_index_postings WHERE schema_key = ?"
    )
    INDEX_ATTR_STATS_SELECT = (
        "SELECT tbl, attr, total_tokens, cell_count "
        "FROM _repro_index_attr_stats WHERE schema_key = ?"
    )
    INDEX_TABLE_COUNTS_SELECT = (
        "SELECT tbl, tuples FROM _repro_index_table_counts WHERE schema_key = ?"
    )
    INDEX_SCHEMA_TERMS_SELECT = (
        "SELECT term, tbl FROM _repro_index_schema_terms WHERE schema_key = ?"
    )

    INDEX_POSTINGS_INSERT = (
        "INSERT INTO _repro_index_postings "
        "(schema_key, term, tbl, attr, occurrences, keys) VALUES (?, ?, ?, ?, ?, ?)"
    )
    INDEX_ATTR_STATS_INSERT = (
        "INSERT INTO _repro_index_attr_stats "
        "(schema_key, tbl, attr, total_tokens, cell_count) VALUES (?, ?, ?, ?, ?)"
    )
    INDEX_TABLE_COUNTS_INSERT = (
        "INSERT INTO _repro_index_table_counts (schema_key, tbl, tuples) "
        "VALUES (?, ?, ?)"
    )
    INDEX_SCHEMA_TERMS_INSERT = (
        "INSERT INTO _repro_index_schema_terms (schema_key, term, tbl) "
        "VALUES (?, ?, ?)"
    )
    INDEX_META_INSERT = (
        "INSERT INTO _repro_index_meta (schema_key, key, value) VALUES (?, ?, ?)"
    )

    @staticmethod
    def index_delete(name: str) -> str:
        """Delete one schema's rows from one index side table."""
        return f"DELETE FROM _repro_index_{name} WHERE schema_key = ?"

    @staticmethod
    def index_drop(name: str) -> str:
        return f"DROP TABLE IF EXISTS _repro_index_{name}"

    #: Suffixes of the planner-statistics side tables (drop/replace loops).
    STATS_TABLE_NAMES = ("tables", "attrs", "meta")

    STATS_TABLES_DDL = (
        "CREATE TABLE IF NOT EXISTS _repro_stats_meta ("
        "schema_key TEXT, key TEXT, value TEXT, PRIMARY KEY (schema_key, key))",
        "CREATE TABLE IF NOT EXISTS _repro_stats_tables ("
        "schema_key TEXT, tbl TEXT, tuples INTEGER, PRIMARY KEY (schema_key, tbl))",
        "CREATE TABLE IF NOT EXISTS _repro_stats_attrs ("
        "schema_key TEXT, tbl TEXT, attr TEXT, distinct_values INTEGER, "
        "max_frequency INTEGER, PRIMARY KEY (schema_key, tbl, attr))",
    )

    STATS_META_SELECT = (
        "SELECT key, value FROM _repro_stats_meta WHERE schema_key = ?"
    )
    STATS_TABLES_SELECT = (
        "SELECT tbl, tuples FROM _repro_stats_tables WHERE schema_key = ?"
    )
    STATS_ATTRS_SELECT = (
        "SELECT tbl, attr, distinct_values, max_frequency "
        "FROM _repro_stats_attrs WHERE schema_key = ?"
    )

    STATS_META_INSERT = (
        "INSERT INTO _repro_stats_meta (schema_key, key, value) VALUES (?, ?, ?)"
    )
    STATS_TABLES_INSERT = (
        "INSERT INTO _repro_stats_tables (schema_key, tbl, tuples) VALUES (?, ?, ?)"
    )
    STATS_ATTRS_INSERT = (
        "INSERT INTO _repro_stats_attrs "
        "(schema_key, tbl, attr, distinct_values, max_frequency) "
        "VALUES (?, ?, ?, ?, ?)"
    )

    @staticmethod
    def stats_delete(name: str) -> str:
        """Delete one schema's rows from one statistics side table."""
        return f"DELETE FROM _repro_stats_{name} WHERE schema_key = ?"

    @staticmethod
    def stats_drop(name: str) -> str:
        return f"DROP TABLE IF EXISTS _repro_stats_{name}"

    RESULT_CACHE_DDL = (
        "CREATE TABLE IF NOT EXISTS _repro_result_cache ("
        "schema_key TEXT, fingerprint TEXT, cache_key TEXT, payload TEXT, "
        "PRIMARY KEY (fingerprint, cache_key))"
    )
    RESULT_CACHE_SELECT = (
        "SELECT payload FROM _repro_result_cache "
        "WHERE fingerprint = ? AND cache_key = ?"
    )
    #: Enumerate one fingerprint's entries whose key matches a LIKE pattern
    #: (the semantic cache scans the ``%#plan`` metadata entries this way).
    RESULT_CACHE_SCAN = (
        "SELECT cache_key, payload FROM _repro_result_cache "
        "WHERE fingerprint = ? AND cache_key LIKE ? ORDER BY cache_key"
    )
    RESULT_CACHE_PURGE = (
        "DELETE FROM _repro_result_cache WHERE schema_key = ? AND fingerprint != ?"
    )
    RESULT_CACHE_UPSERT = (
        "INSERT OR REPLACE INTO _repro_result_cache "
        "(schema_key, fingerprint, cache_key, payload) VALUES (?, ?, ?, ?)"
    )
    RESULT_CACHE_DROP = "DROP TABLE IF EXISTS _repro_result_cache"
