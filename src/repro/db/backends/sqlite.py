"""A persistent SQLite storage engine.

Rows live in a SQLite database (a file on disk or ``":memory:"``), so
datasets survive process restarts and never need re-generation.  The inverted
index is *persisted* alongside the rows (``_repro_index_*`` side tables):
``build_indexes()`` on a reopened store loads the stored postings — validated
against the store's content fingerprint — instead of re-scanning and
re-tokenizing every stored table, so cold opens cost one side-table read.
Join-path execution — the hot path of interpretation materialization — is
pushed down to real SQL: one ``SELECT ... JOIN ... WHERE pk IN (...) LIMIT
k`` statement per candidate network, with keyword selections resolved to
primary-key sets through the inverted index first so containment keeps the
tokenizer's semantics (not SQL ``LIKE`` substring matching) and stays
bit-identical to the in-memory engine.

Every SQL statement this backend runs comes out of the shared
planner/compiler layer (:mod:`repro.db.backends.sql`): this module owns
connection management, row decoding and the execution seams
(:meth:`SQLiteBackend._run_plan` / :meth:`SQLiteBackend._run_union`) that
the sharded backend overrides with scatter-gather — it builds no SQL text of
its own.

File-backed stores serve reads through a **read-connection pool**
(:class:`_ReadConnectionPool`): the single locked writer connection keeps
DDL, inserts and side-table flushes serialized, while every read-only
execution path (:meth:`SQLiteBackend._run_plan` / ``_run_union``, the
streamed variants, relation point lookups) leases a per-thread reader
connection, so concurrent queries exploit WAL's readers-don't-block
property *inside* one process instead of only across forked server
workers.  ``read_pool_size`` caps the pool (default
:data:`SQLiteBackend.DEFAULT_READ_POOL_SIZE`); ``1`` disables it and
restores the single-connection path bit-for-bit.  The writer→readers
visibility barrier is the write epoch: every writer commit bumps it, and
because pooled readers run in WAL mode with every read transaction closed
at cursor end, a reader's next statement always observes at least the
epoch's committed state — streamed and batched execution stay
byte-identical to sequential single-connection runs.

Standard library only (``sqlite3``); no new dependencies.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.db.backends import sql as sqlc
from repro.db.backends.base import (
    BatchedExecution,
    PathSpec,
    RowStream,
    SelectionsByPosition,
    StorageBackend,
    StreamedExecution,
    normalize_value,
)
from repro.db.backends.sql import (
    CompiledStatement,
    PathPlan,
    PlanCompiler,
    SideTableSQL,
    SQLiteDialect,
)
from repro.db.errors import (
    DatabaseError,
    IntegrityError,
    UnknownAttributeError,
    UnknownTableError,
)
from repro.db.index import InvertedIndex
from repro.db.schema import ForeignKey, Schema, Table
from repro.db.table import Tuple
from repro.db.tokenizer import DEFAULT_TOKENIZER, Tokenizer


#: One serialization lock per database *file*, shared by every backend
#: instance (and hence every engine) opened on that file in this process.
#: Python's ``sqlite3`` permits cross-thread connection sharing only when the
#: caller serializes use, and two connections on one file can deadlock each
#: other mid-commit (both holding read locks, both upgrading) — the classic
#: flush-on-close race between two engines sharing a store.  A per-path
#: re-entrant lock removes both hazards inside the process; ``PRAGMA
#: busy_timeout`` covers contention from other processes.  Entries are
#: refcounted and dropped when the last backend on a path closes, so
#: long-lived processes opening many distinct files don't accumulate locks.
_FILE_LOCKS: dict[str, tuple[threading.RLock, int]] = {}
_FILE_LOCKS_GUARD = threading.Lock()


def _like_matches(like_pattern: str, value: str) -> bool:
    """SQL ``LIKE`` semantics over the pending-puts buffer (``%``/``_``
    wildcards, everything else literal), so a scan sees buffered entries
    exactly as the side-table ``LIKE`` would after a flush."""
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in like_pattern
    )
    return re.fullmatch(regex, value, flags=re.DOTALL) is not None


def _acquire_lock_for(path: str, instance: Any | None = None) -> threading.RLock:
    """The process-wide lock of one database file (per *instance* for
    ``":memory:"``).

    Every ``:memory:`` connection is its own private database, so its lock
    must not be shared across backends through the path registry — but it
    *must* be shared across call sites of one backend.  Historically this
    function handed out a fresh ``RLock`` on every ``:memory:`` call, which
    was invisible while ``__init__`` was the single acquisition but would
    silently stop serializing the moment a second call site appeared (the
    read pool's lazy init, a subclass hook).  The lock is therefore cached
    on the owning ``instance``: repeated acquisition for one backend
    returns the same object.  Pinned by ``tests/test_read_pool.py``.
    """
    if instance is not None:
        cached = getattr(instance, "_acquired_lock", None)
        if cached is not None:
            return cached
    if path == ":memory:":
        lock = threading.RLock()
    else:
        resolved = os.path.abspath(path)
        with _FILE_LOCKS_GUARD:
            lock, refs = _FILE_LOCKS.get(resolved, (None, 0))
            if lock is None:
                lock = threading.RLock()
            _FILE_LOCKS[resolved] = (lock, refs + 1)
    if instance is not None:
        instance._acquired_lock = lock
    return lock


def _release_lock_for(path: str) -> None:
    """Drop one reference; the registry entry dies with the last backend."""
    if path == ":memory:":
        return
    resolved = os.path.abspath(path)
    with _FILE_LOCKS_GUARD:
        entry = _FILE_LOCKS.get(resolved)
        if entry is None:
            return
        lock, refs = entry
        if refs <= 1:
            del _FILE_LOCKS[resolved]
        else:
            _FILE_LOCKS[resolved] = (lock, refs - 1)


class _LockedConnection:
    """A ``sqlite3.Connection`` facade serializing statement execution.

    Every statement, commit and close acquires the file's lock, so one
    connection is safe to share across the server's worker threads and two
    connections on one file cannot interleave write transactions.  Callers
    needing multi-statement atomicity (batch compile + fetch, the side-table
    rewrites) hold the same re-entrant lock around the whole sequence.
    """

    def __init__(
        self,
        conn: sqlite3.Connection,
        lock: threading.RLock,
        on_commit: Callable[[], None] | None = None,
    ):
        self._conn = conn
        self.lock = lock
        self._on_commit = on_commit

    @property
    def in_transaction(self) -> bool:
        """True while this connection holds an open write transaction."""
        return self._conn.in_transaction

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> sqlite3.Cursor:
        with self.lock:
            return self._conn.execute(sql, parameters)

    def executemany(self, sql: str, rows: Iterable[Sequence[Any]]) -> sqlite3.Cursor:
        with self.lock:
            return self._conn.executemany(sql, rows)

    def commit(self) -> None:
        with self.lock:
            self._conn.commit()
        if self._on_commit is not None:
            # Outside the lock: the hook (the backend's write-epoch bump)
            # must never extend the serialized section.
            self._on_commit()

    def close(self) -> None:
        with self.lock:
            self._conn.close()

    def create_function(self, *args: Any, **kwargs: Any) -> None:
        with self.lock:
            self._conn.create_function(*args, **kwargs)


class _ReadConnectionPool:
    """Leased read-only connections over one WAL database file.

    ``lease()`` hands out an idle reader (opening one lazily while fewer
    than ``size`` exist, waiting otherwise); ``lease_many(n)`` acquires
    *n* readers atomically — the sharded streamed gather needs one cursor
    per shard at once, and leasing them incrementally could deadlock two
    gathers each holding half of the pool.  Single leases never wait while
    holding a connection, so the pool is deadlock-free by construction.

    Each reader is a :class:`_LockedConnection` with a *private* lock (one
    in-flight statement per connection — Python's ``sqlite3`` requirement),
    not the backend's per-file lock: that lock keeps serializing the writer
    connection only.  Counters (``leases``, ``waits``,
    ``peak_concurrency``) feed ``--explain``, ``GET /stats`` and the bench
    reports.
    """

    def __init__(self, size: int, open_connection: Callable[[], "_LockedConnection"]):
        if size < 1:
            raise ValueError("read pool size must be positive")
        self.size = size
        self._open = open_connection
        self._idle: list[_LockedConnection] = []
        self._opened = 0
        self._active = 0
        self._closed = False
        self._cond = threading.Condition()
        #: Total connections handed out over the pool's lifetime.
        self.leases = 0
        #: Lease attempts that had to wait for a connection to free up.
        self.waits = 0
        #: Highest number of simultaneously leased connections observed.
        self.peak_concurrency = 0

    def _take(self, count: int) -> list[_LockedConnection]:
        if count > self.size:
            raise ValueError(
                f"cannot lease {count} connections from a pool of {self.size}"
            )
        with self._cond:
            if len(self._idle) + (self.size - self._opened) < count:
                self.waits += 1
                while len(self._idle) + (self.size - self._opened) < count:
                    if self._closed:
                        raise DatabaseError("read pool is closed")
                    self._cond.wait()
            if self._closed:
                raise DatabaseError("read pool is closed")
            taken: list[_LockedConnection] = []
            try:
                while len(taken) < count:
                    if self._idle:
                        taken.append(self._idle.pop())
                    else:
                        taken.append(self._open())
                        self._opened += 1
            except BaseException:
                self._idle.extend(taken)
                self._cond.notify_all()
                raise
            self.leases += count
            self._active += count
            if self._active > self.peak_concurrency:
                self.peak_concurrency = self._active
            return taken

    def _give_back(self, conns: list[_LockedConnection]) -> None:
        with self._cond:
            self._active -= len(conns)
            if self._closed:
                for conn in conns:
                    conn.close()
            else:
                self._idle.extend(conns)
            self._cond.notify_all()

    @contextmanager
    def lease(self) -> Iterator[_LockedConnection]:
        """One reader for the duration of the block."""
        conn = self._take(1)[0]
        try:
            yield conn
        finally:
            self._give_back([conn])

    @contextmanager
    def lease_many(self, count: int) -> Iterator[list[_LockedConnection]]:
        """``count`` readers, acquired atomically, for the block's duration."""
        conns = self._take(count)
        try:
            yield conns
        finally:
            self._give_back(conns)

    def stats(self) -> dict[str, int]:
        with self._cond:
            return {
                "size": self.size,
                "leases": self.leases,
                "waits": self.waits,
                "peak_concurrency": self.peak_concurrency,
            }

    def close(self) -> None:
        """Close idle readers; leased ones close on return (see
        :meth:`_give_back`)."""
        with self._cond:
            self._closed = True
            for conn in self._idle:
                conn.close()
            self._idle.clear()
            self._cond.notify_all()


#: Relation-level normalization for direct ``RelationView.insert`` calls
#: (backend-level inserts already normalize in the shared base path).
_normalize = normalize_value


class SQLiteRelation:
    """Per-table handle over stored rows (the ``RelationView`` protocol).

    Mirrors :class:`repro.db.table.Relation` semantics — auto-assigned
    primary keys, ``None`` for missing attributes, insertion-order scans —
    on top of a SQLite table.  All statements come pre-compiled from the
    backend's dialect, so the sharded subclass only swaps physical sources.
    """

    def __init__(self, backend: "SQLiteBackend", table: Table):
        self.table = table
        self._backend = backend
        self._conn = backend._conn
        self._dialect = backend.dialect
        self._columns = list(table.attribute_names)
        self._pk = table.primary_key
        self._pk_index = self._columns.index(self._pk)
        # Set-oriented reads (scan/keys/count/lookup) compile against the
        # dialect's logical table source, which is valid on every dialect
        # (the sharded one resolves it to an all-partitions union).
        self._scan_sql = sqlc.scan_sql(self._dialect, table)
        self._keys_sql = sqlc.scan_sql(self._dialect, table, keys_only=True)
        self._count_sql = sqlc.count_sql(self._dialect, table)
        self._prepare_point_statements()
        # Cached row count for O(1) auto-key assignment (lazy; kept in sync
        # by insert).  ``None`` until the first auto-keyed insert.
        self._row_count: int | None = None

    def _prepare_point_statements(self) -> None:
        """Precompile the single-row INSERT/point-get statements.

        Split out because these target one *physical* table: relations that
        route rows (the sharded partition relation) override this together
        with :meth:`_store_row`/:meth:`get`, so no dialect ever holds a
        statement it cannot execute.
        """
        self._insert_sql = sqlc.insert_sql(self._dialect, self.table)
        self._get_sql = sqlc.select_where_sql(self._dialect, self.table, self._pk)

    # -- mutation --------------------------------------------------------

    def insert(self, row: dict[str, Any]) -> Tuple:
        """Insert a row; unknown attributes are rejected, missing ones are None."""
        for name in row:
            if not self.table.has_attribute(name):
                raise UnknownAttributeError(self.table.name, name)
        key = _normalize(row.get(self._pk))
        if key is None:
            key = self._next_key()
        values = tuple(
            (name, _normalize(row.get(name)) if name != self._pk else key)
            for name in self._columns
        )
        try:
            self._store_row(key, [value for _name, value in values])
        except sqlite3.IntegrityError:
            raise IntegrityError(
                f"duplicate primary key {key!r} in table {self.table.name!r}"
            ) from None
        except sqlite3.Error as exc:
            # e.g. a value type SQLite cannot store: surface it through the
            # package's own error hierarchy, not a raw sqlite3 exception.
            raise DatabaseError(
                f"cannot store row in table {self.table.name!r}: {exc}"
            ) from None
        if self._row_count is not None:
            self._row_count += 1
        return Tuple(self.table.name, key, values)

    def _store_row(self, key: Any, cells: list[Any]) -> None:
        """Physically insert one normalized row (the sharded override routes
        it to the key's partition)."""
        self._conn.execute(self._insert_sql, cells)

    def _next_key(self) -> int:
        """Auto-assign a key the way the in-memory Relation does."""
        if self._row_count is None:
            self._row_count = len(self)
        key = self._row_count
        while self.get(key) is not None:
            key += 1
        return key

    def create_index(self, attribute: str) -> None:
        """Build an exact-match index on ``attribute`` (CREATE INDEX)."""
        if not self.table.has_attribute(attribute):
            raise UnknownAttributeError(self.table.name, attribute)
        for statement in self._index_ddl(attribute):
            self._conn.execute(statement)

    def _index_ddl(self, attribute: str) -> list[str]:
        return [sqlc.create_index_ddl(self._dialect, self.table, attribute)]

    # -- access ----------------------------------------------------------

    def _to_tuple(self, row: Sequence[Any]) -> Tuple:
        values = tuple(zip(self._columns, row))
        return Tuple(self.table.name, row[self._pk_index], values)

    def get(self, key: Any) -> Tuple | None:
        with self._backend._lease_read_connection() as conn:
            row = conn.execute(self._get_sql, (key,)).fetchone()
        return self._to_tuple(row) if row is not None else None

    def lookup(self, attribute: str, value: Any) -> list[Tuple]:
        """All tuples with ``attribute == value`` (SQL point query)."""
        if not self.table.has_attribute(attribute):
            return []
        with self._backend._lease_read_connection() as conn:
            cursor = conn.execute(
                sqlc.select_where_sql(self._dialect, self.table, attribute),
                (value,),
            )
            matches = [self._to_tuple(row) for row in cursor.fetchall()]
        matches.sort(key=lambda t: repr(t.key))
        return matches

    def scan(self) -> Iterator[Tuple]:
        with self._backend._lease_read_connection() as conn:
            rows = conn.execute(self._scan_sql).fetchall()
        for row in rows:
            yield self._to_tuple(row)

    def keys(self) -> Iterable[Any]:
        with self._backend._lease_read_connection() as conn:
            cursor = conn.execute(self._keys_sql)
            return [row[0] for row in cursor.fetchall()]

    def __len__(self) -> int:
        with self._backend._lease_read_connection() as conn:
            return conn.execute(self._count_sql).fetchone()[0]

    def __iter__(self) -> Iterator[Tuple]:
        return self.scan()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.table.name}, {len(self)} rows)"


class SQLiteBackend(StorageBackend):
    """Storage backend persisting rows in a SQLite database.

    Durability: bulk loading runs in one transaction committed by
    ``build_indexes()``; inserts after the index build commit immediately;
    ``commit()`` / ``close()`` (or the context manager) flush anything else.
    """

    name = "sqlite"
    persistent = True
    supports_read_pool = True

    #: Reader connections a file-backed store may hold when none is asked
    #: for explicitly.  Sized for the default server worker count; ``1``
    #: disables the pool entirely (the single-connection control arm).
    DEFAULT_READ_POOL_SIZE = 4

    def __init__(
        self,
        schema: Schema,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        path: str | Path | None = None,
        persist_index: bool = True,
        read_pool_size: int | None = None,
    ):
        super().__init__(schema, tokenizer)
        self.path = str(path) if path is not None else ":memory:"
        if read_pool_size is not None and read_pool_size < 1:
            raise ValueError("read_pool_size must be positive")
        self._read_pool_size = (
            self.DEFAULT_READ_POOL_SIZE if read_pool_size is None else read_pool_size
        )
        self._read_pool: _ReadConnectionPool | None = None
        #: Bumped on every writer commit — the writer→readers visibility
        #: barrier's ordering hook (see the module docstring).
        self._write_epoch = 0
        #: Persist inverted-index postings into side tables so cold opens
        #: load instead of re-scanning (False forces the rebuild path — the
        #: engine benchmark uses it to measure the difference).
        self.persist_index = persist_index
        self.dialect = self._make_dialect()
        self.compiler = PlanCompiler(schema, self.dialect)
        self._index_dirty = False
        self._stats_dirty = False
        self._result_cache_ready = False
        self._result_cache_purged_for: str | None = None
        #: Result-cache puts buffered until the next flush/commit/close (see
        #: :meth:`cached_result_put`).
        self._pending_results: dict[tuple[str, str], str] = {}
        self._relations: dict[str, SQLiteRelation] = {}
        self._closed = False
        self._lock = _acquire_lock_for(self.path, self)
        try:
            # ``check_same_thread=False`` + the per-file lock: the server
            # shares one backend across its worker threads, with every
            # statement serialized by ``_LockedConnection``.
            self._conn = _LockedConnection(
                sqlite3.connect(self.path, check_same_thread=False),
                self._lock,
                on_commit=self._bump_write_epoch,
            )
        except sqlite3.Error as exc:
            _release_lock_for(self.path)
            raise DatabaseError(f"cannot open {self.path!r}: {exc}") from None
        try:
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=10000")
            # Exposes Python's repr() for ORDER BY, so join results sort
            # exactly like the in-memory engine's repr()-keyed lookups — for
            # every key type, not just the int/str common case.
            self._conn.create_function("repro_repr", 1, repr, deterministic=True)
            self._prepare_storage()  # hook: sharded backends ATTACH here
            # After validation on purpose: a rejected open (schema mismatch,
            # sharded file through the plain backend) must not have flipped
            # the journal mode or left ``-wal``/``-shm`` debris behind.
            self._configure_journal_mode()
            for table in schema:
                self._create_storage(table)
            # Resume the mutation-digest chain of a reopened store.
            stored_digest = self.get_metadata("_content_digest")
            if stored_digest is not None:
                self._content_digest = stored_digest
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            _release_lock_for(self.path)
            raise DatabaseError(f"cannot open {self.path!r}: {exc}") from None
        except DatabaseError:
            # e.g. a schema/file mismatch: don't leak the open connection.
            self._conn.close()
            _release_lock_for(self.path)
            raise

    def _make_dialect(self) -> SQLiteDialect:
        """The dialect all of this backend's statements compile under."""
        return SQLiteDialect()

    def _prepare_storage(self) -> None:
        """Connection-level setup before table storage exists.

        The sharded backend ATTACHes its partitions here; this plain backend
        only refuses files those partitions belong to — half a sharded store
        read through the unsharded engine would silently look empty.
        """
        if self.get_metadata("_shard_count") is not None:
            raise DatabaseError(
                f"store at {self.path!r} is hash-partitioned (built by the "
                f"'sqlite-sharded' backend); open it with that backend"
            )

    def _configure_journal_mode(self) -> None:
        """Flip file-backed storage to WAL (``:memory:`` has no journal).

        Under the default rollback journal, an open read cursor holds the
        file's shared lock, so a *second process* (or any sibling connection
        outside this backend's per-file lock) serializes behind every cold
        streamed query.  WAL lets readers proceed while a writer commits —
        the property the TCP server's multi-worker mode depends on, where
        several forked processes serve one store concurrently.  The mode is
        persistent (stored in the database header), so reopened stores stay
        WAL without re-running this.
        """
        if self.path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")

    @property
    def is_persistent(self) -> bool:
        """True when rows are stored in a file that outlives the process."""
        return self.path != ":memory:"

    # -- read-connection pool ------------------------------------------------

    def _bump_write_epoch(self) -> None:
        """Writer-commit hook: advance the readers' visibility barrier.

        The epoch orders writer commits against subsequent reads: a read
        leased after the bump runs on a WAL reader whose previous read
        transaction ended at cursor close, so its next statement observes
        at least this commit.  The counter itself is the testable /
        observable handle for that ordering (``tests/test_read_pool.py``
        pins inserted-rows-become-visible against it).
        """
        self._write_epoch += 1

    @property
    def write_epoch(self) -> int:
        """Number of writer commits since this backend opened."""
        return self._write_epoch

    def _read_pool_enabled(self) -> bool:
        """Whether reads should lease pooled connections right now."""
        return self._read_pool_size > 1 and self.is_persistent and not self._closed

    def _read_pool_capacity(self) -> int:
        """Connections the pool may open (the sharded override scales it)."""
        return self._read_pool_size

    def _reader_pool(self) -> _ReadConnectionPool | None:
        """The lazily-built pool, or ``None`` while reads stay on the writer."""
        if not self._read_pool_enabled():
            return None
        pool = self._read_pool
        if pool is None:
            with self._lock:
                pool = self._read_pool
                if pool is None:
                    pool = _ReadConnectionPool(
                        self._read_pool_capacity(), self._open_reader
                    )
                    self._read_pool = pool
        return pool

    def _open_reader(self) -> _LockedConnection:
        """One new pooled reader, configured like the writer's read side."""
        try:
            reader = _LockedConnection(
                sqlite3.connect(self.path, check_same_thread=False),
                threading.RLock(),
            )
        except sqlite3.Error as exc:
            raise DatabaseError(
                f"cannot open read connection for {self.path!r}: {exc}"
            ) from None
        try:
            self._configure_reader(reader)
        except sqlite3.Error as exc:
            reader.close()
            raise DatabaseError(
                f"cannot configure read connection for {self.path!r}: {exc}"
            ) from None
        return reader

    def _configure_reader(self, reader: _LockedConnection) -> None:
        """Session setup every reader needs (the sharded override ATTACHes).

        ``repro_repr`` is per connection, not per file — without it a pooled
        reader could not run the compiler's ORDER BY terms at all.
        """
        reader.execute("PRAGMA busy_timeout=10000")
        reader.create_function("repro_repr", 1, repr, deterministic=True)

    @contextmanager
    def _lease_read_connection(self) -> Iterator[_LockedConnection]:
        """The connection one read-only statement cycle should run on.

        Yields a pooled reader when the pool is enabled and the writer holds
        no open transaction; otherwise the writer connection itself — during
        bulk loading (everything before ``build_indexes()`` commits) reads
        *must* see the uncommitted rows (auto-key duplicate probes, the
        index build's scans), and with the pool disabled this degrades to
        exactly the legacy single-connection path.  The dirty check races
        benignly with writers: either serialization order is legal, and a
        read routed to the writer just serializes on the per-file lock as
        every read did before the pool.
        """
        pool = self._reader_pool()
        if pool is None or self._conn.in_transaction:
            yield self._conn
            return
        with pool.lease() as reader:
            yield reader

    def configure_read_pool(self, size: int | None) -> None:
        """Resize the read pool (``1`` disables it; ``None`` keeps it).

        The engine applies :attr:`EngineConfig.read_pool_size` through this
        after construction, mirroring ``cost_planning``.  An existing pool
        is discarded so the next read rebuilds one at the new size; leased
        connections finish their statement and close on return.
        """
        if size is None:
            return
        if size < 1:
            raise ValueError("read_pool_size must be positive")
        with self._lock:
            if size == self._read_pool_size:
                return
            self._read_pool_size = size
            if self._read_pool is not None:
                self._read_pool.close()
                self._read_pool = None

    def read_pool_stats(self) -> dict[str, int] | None:
        """Pool counters for ``--explain`` / ``GET /stats`` (None: disabled)."""
        if not self._read_pool_enabled():
            return None
        pool = self._read_pool
        if pool is None:  # enabled, but nothing has leased yet
            return {
                "size": self._read_pool_capacity(),
                "leases": 0,
                "waits": 0,
                "peak_concurrency": 0,
            }
        return pool.stats()

    # -- storage management ------------------------------------------------

    def _create_storage(self, table: Table) -> SQLiteRelation:
        for statement in self._storage_ddl(table):
            self._conn.execute(statement)
        self._verify_columns(table)
        relation = self._make_relation(table)
        self._relations[table.name] = relation
        return relation

    def _storage_ddl(self, table: Table) -> list[str]:
        return [sqlc.create_table_ddl(self.dialect, table)]

    def _make_relation(self, table: Table) -> SQLiteRelation:
        return SQLiteRelation(self, table)

    def _verify_columns(self, table: Table) -> None:
        """Fail fast when a pre-existing file disagrees with the schema."""
        for schema_prefix, expected in self._physical_columns(table):
            cursor = self._conn.execute(
                sqlc.table_info_sql(table.name, schema_prefix=schema_prefix)
            )
            stored = [row[1] for row in cursor.fetchall()]
            if stored != expected:
                where = f" in {schema_prefix!r}" if schema_prefix else ""
                raise DatabaseError(
                    f"stored table {table.name!r}{where} has columns "
                    f"{stored}, schema expects {expected}"
                )

    def _physical_columns(self, table: Table) -> list[tuple[str, list[str]]]:
        """``(schema prefix, expected column list)`` per physical table."""
        return [("", table.attribute_names)]

    def _set_internal_metadata(self, key: str, value: str) -> None:
        """Persist a key/value pair in a side table next to the rows.

        The write path under the public :meth:`set_metadata` (which adds the
        reserved-key guard in the base class).
        """
        with self._lock:
            self._conn.execute(SideTableSQL.META_DDL)
            self._conn.execute(SideTableSQL.META_UPSERT, (key, value))
            self._conn.commit()
        # Metadata feeds the content fingerprint (dataset fingerprint /
        # nonce); like the base class, drop the cached digest.
        self._content_fingerprint = None

    def _persist_content_digest(self) -> None:
        """Stage the current mutation digest for the next commit.

        Unlike :meth:`set_metadata` this neither commits nor invalidates the
        fingerprint cache — callers fold it into their own commit points
        (``build_indexes``/``insert``/``commit``/``close``).
        """
        if not self._content_digest:
            return
        self._conn.execute(SideTableSQL.META_DDL)
        self._conn.execute(
            SideTableSQL.META_UPSERT, ("_content_digest", self._content_digest)
        )

    def get_metadata(self, key: str) -> str | None:
        try:
            cursor = self._conn.execute(SideTableSQL.META_SELECT, (key,))
        except sqlite3.OperationalError:  # metadata table never created
            return None
        row = cursor.fetchone()
        return row[0] if row is not None else None

    def metadata_values(self, prefix: str) -> list[str]:
        try:
            cursor = self._conn.execute(SideTableSQL.META_SELECT_ALL)
        except sqlite3.OperationalError:  # metadata table never created
            return []
        return [value for key, value in cursor.fetchall() if key.startswith(prefix)]

    def commit(self) -> None:
        """Flush pending writes (rows, digest, buffered puts) to the file."""
        with self._lock:
            self._persist_content_digest()
            self.cached_result_flush()  # drains buffered puts, then commits

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._persist_content_digest()
            if self._index_dirty and self.index is not None and self.persist_index:
                # Post-build mutations left the stored postings stale; re-save
                # so the next cold open stays on the fast path.  (Even without
                # this, correctness holds: the stale save carries the
                # pre-mutation fingerprint and would be rejected on load.)
                self._save_persisted_index(self.index)
            if self._stats_dirty and self._statistics is not None and self.persist_index:
                self._save_persisted_stats()
            self.cached_result_flush()  # drains buffered puts, then commits
            self._close_connections()
        _release_lock_for(self.path)

    def _close_connections(self) -> None:
        """Close every connection this backend opened (pool, then writer)."""
        if self._read_pool is not None:
            self._read_pool.close()
            self._read_pool = None
        self._conn.close()

    # -- data loading -----------------------------------------------------

    def relation(self, table_name: str) -> SQLiteRelation:
        try:
            return self._relations[table_name]
        except KeyError:
            raise UnknownTableError(table_name) from None

    def insert(self, table_name: str, row: dict[str, Any]) -> Tuple:
        with self._lock:
            tup = super().insert(table_name, row)
            if self.index is not None:
                self._index_dirty = True
                if self._statistics is not None:
                    # The base insert already folded the tuple into the
                    # catalog; the *stored* copy is now stale.
                    self._stats_dirty = True
                # Post-build inserts are rare and interactive: make each one
                # (and the advanced mutation digest) durable immediately.
                # Bulk loading (before build_indexes()) stays in one
                # transaction and is committed by build_indexes().
                self._persist_content_digest()
                self._conn.commit()
        return tup

    def add_table(self, table: Table):
        relation = super().add_table(table)
        if self.index is not None:
            self._index_dirty = True
        return relation

    def build_indexes(self):
        self._persist_content_digest()  # durable alongside the bulk-loaded rows
        loaded = self._load_persisted_index()
        if loaded is not None:
            # Fast cold open: exact-match join indexes are CREATE INDEX IF
            # NOT EXISTS (no-ops on a reopened store), postings come from the
            # side tables — no table scan, no re-tokenization.
            for fk in self.schema.foreign_keys:
                self.relation(fk.source).create_index(fk.source_attr)
                if fk.target_attr != self.schema.table(fk.target).primary_key:
                    self.relation(fk.target).create_index(fk.target_attr)
            self.index = loaded
            self._index_dirty = False
            restored = self._load_persisted_stats()
            if restored is not None:
                # Same fast path for the planner statistics: the stored
                # catalog carries the fingerprint it was collected under,
                # so a match means no relation scan is needed either.
                self._statistics = restored
                self._cardinality_estimator = None
                self._stats_dirty = False
            else:
                self._collect_statistics()
                if self.persist_index:
                    self._save_persisted_stats()
            self._conn.commit()
            return self.index
        index = super().build_indexes()  # also collects planner statistics
        if self.persist_index:
            self._save_persisted_index(index)
            self._save_persisted_stats()
        self._conn.commit()  # durability checkpoint after bulk loading
        return index

    # -- inverted-index persistence ----------------------------------------

    def _schema_key(self) -> str:
        """Digest identifying this backend's view of the file.

        Datasets are namespaced by table names, so several may coexist in one
        file; everything persisted for *this* schema's index and caches is
        scoped by this key.
        """
        joined = "|".join(sorted(self.schema.table_names))
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]

    def _index_signature(self) -> dict[str, str]:
        """What stored postings must have been built under to be reusable."""
        return {
            "fingerprint": self.content_fingerprint(),
            "tokenizer": self.tokenizer.signature(),
        }

    def _load_persisted_index(self) -> InvertedIndex | None:
        """Postings from the side tables, or None when absent/stale."""
        if not self.persist_index:
            return None
        schema_key = self._schema_key()
        try:
            meta = dict(
                self._conn.execute(SideTableSQL.INDEX_META_SELECT, (schema_key,))
            )
        except sqlite3.OperationalError:  # side tables never created
            return None
        expected = self._index_signature()
        if any(meta.get(key) != value for key, value in expected.items()):
            return None  # stale (store mutated) or different tokenizer
        try:
            alpha = float(meta["alpha"])
            state = {
                "postings": [
                    (term, tbl, attr, occurrences, json.loads(keys))
                    for term, tbl, attr, occurrences, keys in self._conn.execute(
                        SideTableSQL.INDEX_POSTINGS_SELECT, (schema_key,)
                    )
                ],
                "attribute_stats": list(
                    self._conn.execute(
                        SideTableSQL.INDEX_ATTR_STATS_SELECT, (schema_key,)
                    )
                ),
                "table_tuple_counts": list(
                    self._conn.execute(
                        SideTableSQL.INDEX_TABLE_COUNTS_SELECT, (schema_key,)
                    )
                ),
                "schema_terms": list(
                    self._conn.execute(
                        SideTableSQL.INDEX_SCHEMA_TERMS_SELECT, (schema_key,)
                    )
                ),
            }
        except (sqlite3.Error, KeyError, ValueError):
            return None  # corrupt side tables: fall back to a rebuild
        return InvertedIndex.restore(state, tokenizer=self.tokenizer, alpha=alpha)

    def _save_persisted_index(self, index: InvertedIndex) -> None:
        """Write postings + fingerprint into the side tables (best effort).

        Tuple keys must survive a JSON round trip (int/str primary keys do);
        stores with exotic key types simply skip persistence and keep the
        rebuild path.  Only this schema's rows are replaced — coexisting
        datasets keep theirs.
        """
        state = index.export_state()
        schema_key = self._schema_key()
        try:
            posting_rows = [
                (schema_key, term, tbl, attr, occurrences, json.dumps(keys))
                for term, tbl, attr, occurrences, keys in state["postings"]
            ]
        except (TypeError, ValueError):
            return
        if any(
            not all(isinstance(k, (int, str)) and not isinstance(k, bool) for k in keys)
            for _t, _tb, _a, _o, keys in state["postings"]
        ):
            return  # a JSON round trip would change the key type
        meta = dict(self._index_signature(), alpha=repr(index.alpha))
        with self._lock:  # delete+insert must not interleave with a sibling's
            try:
                self._write_index_state(schema_key, posting_rows, state, meta)
            except sqlite3.Error:
                # Pre-existing side tables with a foreign column set (older
                # code, outside tools): CREATE IF NOT EXISTS kept the old
                # shape.  Drop and rebuild them; if that fails too, skip
                # persistence — it is an optimization and must never make the
                # store unusable.  (No rollback: build_indexes may hold
                # uncommitted bulk-loaded rows.)
                try:
                    for name in SideTableSQL.INDEX_TABLE_NAMES:
                        self._conn.execute(SideTableSQL.index_drop(name))
                    self._write_index_state(schema_key, posting_rows, state, meta)
                except sqlite3.Error:
                    return
            self._conn.commit()
        self._index_dirty = False

    def _write_index_state(
        self,
        schema_key: str,
        posting_rows: list[tuple],
        state: dict[str, list[tuple]],
        meta: dict[str, str],
    ) -> None:
        """Replace this schema's rows in the index side tables (no commit)."""
        for statement in SideTableSQL.INDEX_TABLES_DDL:
            self._conn.execute(statement)
        for name in SideTableSQL.INDEX_TABLE_NAMES:
            self._conn.execute(SideTableSQL.index_delete(name), (schema_key,))
        self._conn.executemany(SideTableSQL.INDEX_POSTINGS_INSERT, posting_rows)
        self._conn.executemany(
            SideTableSQL.INDEX_ATTR_STATS_INSERT,
            [(schema_key, *row) for row in state["attribute_stats"]],
        )
        self._conn.executemany(
            SideTableSQL.INDEX_TABLE_COUNTS_INSERT,
            [(schema_key, *row) for row in state["table_tuple_counts"]],
        )
        self._conn.executemany(
            SideTableSQL.INDEX_SCHEMA_TERMS_INSERT,
            [(schema_key, *row) for row in state["schema_terms"]],
        )
        self._conn.executemany(
            SideTableSQL.INDEX_META_INSERT,
            [(schema_key, key, value) for key, value in sorted(meta.items())],
        )

    # -- planner-statistics persistence --------------------------------------

    def persisted_stats_fingerprint(self) -> str | None:
        """Fingerprint the stored statistics were collected under, if any.

        ``repro stats`` compares this against the live content fingerprint
        to report staleness; ``None`` means no catalog is stored for this
        schema.
        """
        try:
            meta = dict(
                self._conn.execute(
                    SideTableSQL.STATS_META_SELECT, (self._schema_key(),)
                )
            )
        except sqlite3.OperationalError:  # side tables never created
            return None
        return meta.get("fingerprint")

    def _load_persisted_stats(self):
        """The stored statistics catalog, or None when absent/stale/corrupt."""
        if not self.persist_index:
            return None
        from repro.db.stats import StatisticsCatalog

        schema_key = self._schema_key()
        try:
            meta = dict(
                self._conn.execute(SideTableSQL.STATS_META_SELECT, (schema_key,))
            )
        except sqlite3.OperationalError:  # side tables never created
            return None
        if meta.get("fingerprint") != self.content_fingerprint():
            return None  # stale: the store mutated since collection
        state: dict = {"tables": {}}
        try:
            for tbl, tuples in self._conn.execute(
                SideTableSQL.STATS_TABLES_SELECT, (schema_key,)
            ):
                state["tables"][tbl] = {"rows": int(tuples), "attributes": {}}
            for tbl, attr, distinct, max_frequency in self._conn.execute(
                SideTableSQL.STATS_ATTRS_SELECT, (schema_key,)
            ):
                state["tables"][tbl]["attributes"][attr] = [
                    int(distinct),
                    int(max_frequency),
                ]
        except (sqlite3.Error, KeyError, TypeError, ValueError):
            return None  # corrupt side tables: fall back to recollection
        if not state["tables"]:
            return None  # meta without rows: a half-written save
        return StatisticsCatalog.restore(self.schema, state)

    def _save_persisted_stats(self) -> None:
        """Write the catalog + fingerprint into side tables (best effort).

        Mirrors :meth:`_save_persisted_index`: scoped to this schema's key,
        lock-guarded so the delete+insert cannot interleave with a sibling
        engine's, and dropped-and-rebuilt once when a pre-existing foreign
        table shape rejects the statements — persistence is an optimization
        and must never make the store unusable.
        """
        catalog = self._statistics
        if catalog is None:
            return
        schema_key = self._schema_key()
        table_rows = [
            (schema_key, name, rows) for name, rows in catalog.iter_rows()
        ]
        attr_rows = [
            (schema_key, tbl, attr, distinct, max_frequency)
            for tbl, attr, distinct, max_frequency in catalog.iter_attributes()
        ]
        meta = {"fingerprint": self.content_fingerprint()}
        with self._lock:  # delete+insert must not interleave with a sibling's
            try:
                self._write_stats_state(schema_key, table_rows, attr_rows, meta)
            except sqlite3.Error:
                try:
                    for name in SideTableSQL.STATS_TABLE_NAMES:
                        self._conn.execute(SideTableSQL.stats_drop(name))
                    self._write_stats_state(schema_key, table_rows, attr_rows, meta)
                except sqlite3.Error:
                    return
            self._conn.commit()
        self._stats_dirty = False

    def _write_stats_state(
        self,
        schema_key: str,
        table_rows: list[tuple],
        attr_rows: list[tuple],
        meta: dict[str, str],
    ) -> None:
        """Replace this schema's rows in the stats side tables (no commit)."""
        for statement in SideTableSQL.STATS_TABLES_DDL:
            self._conn.execute(statement)
        for name in SideTableSQL.STATS_TABLE_NAMES:
            self._conn.execute(SideTableSQL.stats_delete(name), (schema_key,))
        self._conn.executemany(SideTableSQL.STATS_TABLES_INSERT, table_rows)
        self._conn.executemany(SideTableSQL.STATS_ATTRS_INSERT, attr_rows)
        self._conn.executemany(
            SideTableSQL.STATS_META_INSERT,
            [(schema_key, key, value) for key, value in sorted(meta.items())],
        )

    # -- derived-result cache ----------------------------------------------

    def cached_result_get(self, fingerprint: str, key: str) -> str | None:
        with self._lock:
            pending = self._pending_results.get((fingerprint, key))
            if pending is not None:
                return pending
            try:
                cursor = self._conn.execute(
                    SideTableSQL.RESULT_CACHE_SELECT, (fingerprint, key)
                )
                row = cursor.fetchone()
            except sqlite3.Error:  # table never created, or a foreign shape
                return None
            return row[0] if row is not None else None

    def cached_result_scan(
        self, fingerprint: str, like_pattern: str
    ) -> list[tuple[str, str]]:
        """Persisted + buffered ``(key, payload)`` pairs under one
        fingerprint whose key matches ``like_pattern`` (see the base hook).

        Pending buffered puts are included (and win over persisted rows of
        the same key) so a scan sees everything a later flush would make
        durable — the semantic cache may recover plan metadata in the same
        run that recorded it.
        """
        with self._lock:
            found: dict[str, str] = {}
            try:
                cursor = self._conn.execute(
                    SideTableSQL.RESULT_CACHE_SCAN, (fingerprint, like_pattern)
                )
                found.update((key, payload) for key, payload in cursor.fetchall())
            except sqlite3.Error:  # table never created, or a foreign shape
                pass
            for (pending_fp, key), payload in self._pending_results.items():
                if pending_fp == fingerprint and _like_matches(like_pattern, key):
                    found[key] = payload
            return sorted(found.items())

    def cached_result_put(self, fingerprint: str, key: str, payload: str) -> None:
        # Buffered in Python, not SQL: an open write transaction per put
        # would span the whole pipeline run and starve every other
        # connection on the file (the flush-on-close race).  The side table
        # is written in one short lock-guarded transaction at flush time.
        with self._lock:
            self._pending_results[(fingerprint, key)] = payload

    def _write_cached_result(self, fingerprint: str, key: str, payload: str) -> None:
        if not self._result_cache_ready:
            self._conn.execute(SideTableSQL.RESULT_CACHE_DDL)
            self._result_cache_ready = True
        schema_key = self._schema_key()
        if self._result_cache_purged_for != fingerprint:
            # This schema's entries under any other fingerprint are
            # unreachable (the store content changed); purge them so the
            # cache cannot grow unboundedly.  Scoped to the schema so
            # coexisting datasets keep their still-valid entries; once per
            # fingerprint per connection, not per put.
            self._conn.execute(
                SideTableSQL.RESULT_CACHE_PURGE, (schema_key, fingerprint)
            )
            self._result_cache_purged_for = fingerprint
        self._conn.execute(
            SideTableSQL.RESULT_CACHE_UPSERT,
            (schema_key, fingerprint, key, payload),
        )

    def cached_result_flush(self) -> None:
        """Write + commit every buffered put in one guarded transaction.

        Holding the file's lock across the whole write-set keeps the
        transaction short and un-interleaved: two engines flushing the same
        file serialize here instead of deadlocking mid-commit.  Best-effort
        like every cache write — a foreign-shaped pre-existing table is
        dropped and rebuilt once, then the batch is abandoned.
        """
        with self._lock:
            pending, self._pending_results = self._pending_results, {}
            try:
                for (fingerprint, key), payload in pending.items():
                    self._write_cached_result(fingerprint, key, payload)
            except sqlite3.Error:
                try:
                    self._conn.execute(SideTableSQL.RESULT_CACHE_DROP)
                    self._result_cache_ready = False
                    self._result_cache_purged_for = None
                    for (fingerprint, key), payload in pending.items():
                        self._write_cached_result(fingerprint, key, payload)
                except sqlite3.Error:
                    pass
            self._conn.commit()

    # -- join-path execution ---------------------------------------------------

    def execute_path(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: SelectionsByPosition | None = None,
        limit: int | None = None,
    ) -> list[tuple[Tuple, ...]]:
        """SQL pushdown execution of a join path (see the base-class contract).

        The whole candidate network becomes one SELECT: FK joins run inside
        SQLite, keyword selections become primary-key IN-predicates resolved
        through the inverted index, and ``limit`` becomes SQL ``LIMIT``.
        """
        selections = selections or {}
        self._validate_path(path, edges, selections, limit)
        if limit == 0:
            return []

        key_filters = self._resolve_key_filters(path, selections)
        if key_filters is None:
            return []
        return self._run_plan(
            self._prepare_plan(sqlc.plan_path(path, edges, key_filters, limit))
        )

    def _prepare_plan(self, plan: PathPlan) -> PathPlan:
        """Backend-physical plan adjustments before compilation.

        The cost pass: annotate the plan with its estimated cardinality and
        reorder its join introduction greedily by estimated slot size.  Both
        rewrites are no-ops when statistics are missing or ``cost_planning``
        is off (``plan_estimator()`` returns ``None``).  The sharded backend
        extends this with its per-plan scatter-position choice.
        """
        estimator = self.plan_estimator()
        if estimator is None:
            return plan
        plan = sqlc.annotate_estimate(plan, estimator)
        return sqlc.reorder_joins(plan, estimator)

    def _scatter_slot_label(self, plan: PathPlan) -> str | None:
        """Human-readable name of the plan's scatter slot (sharded only)."""
        return None

    def _plan_label(self, plan: PathPlan) -> str | None:
        """Summary of the cost pass's choices on one plan (``--explain``)."""
        parts: list[str] = []
        if plan.estimated_rows is not None:
            parts.append(f"~{plan.estimated_rows:.1f} rows estimated")
        if plan.join_order is not None:
            chosen = ">".join(f"t{slot}" for slot in plan.join_order)
            default = ">".join(f"t{slot}" for slot in range(len(plan.path)))
            parts.append(f"join order {chosen} (default {default})")
        return ", ".join(parts) if parts else None

    def _run_plan(
        self, plan: PathPlan, shard_rows: dict[int, int] | None = None
    ) -> list[tuple[Tuple, ...]]:
        """Execute one compiled path plan: fetch, decode, post-filter.

        ``shard_rows``, when given, accumulates per-shard row attribution —
        a no-op here (one unsharded statement), filled in by the sharded
        scatter-gather override.
        """
        statement = self.compiler.compile_path(plan)
        relations = [self.relation(name) for name in plan.path]
        results: list[tuple[Tuple, ...]] = []
        with self._lease_read_connection() as conn:
            with conn.lock:  # statement + fetch: one serialized read cycle
                cursor = conn.execute(statement.sql, statement.params)
                try:
                    for row in cursor:
                        network = self._decode_network(relations, row)
                        if not plan.keeps(network):
                            continue
                        results.append(network)
                        if plan.limit is not None and len(results) >= plan.limit:
                            break
                finally:
                    # Reset before the lease releases: a cursor left open by
                    # the early break would pin this reader's WAL snapshot
                    # into the next lease.
                    cursor.close()
        return results

    def _decode_network(
        self, relations: Sequence[SQLiteRelation], row: Sequence[Any], offset: int = 0
    ) -> tuple[Tuple, ...]:
        """One result row back into a joining network of tuples."""
        network: list[Tuple] = []
        for relation in relations:
            width = len(relation._columns)
            network.append(relation._to_tuple(row[offset : offset + width]))
            offset += width
        return tuple(network)

    def _resolve_key_filters(
        self, path: Sequence[str], selections: SelectionsByPosition
    ) -> dict[int, set[Any]] | None:
        """Per-position primary-key sets of the selections, via the index.

        ``None`` means some position matched nothing — the whole path result
        is provably empty and no SQL needs to run.  Resolution itself is
        backend-independent and shared on the base class.
        """
        return self.resolve_key_filters(path, selections)

    # -- batched join-path execution ---------------------------------------

    supports_batched_execution = True

    def _statements_per_plan(self) -> int:
        """Physical statements one plan (or shared union) costs to run."""
        return 1

    def execute_paths_batched(
        self,
        specs: Sequence[PathSpec],
        limit: int | None = None,
    ) -> BatchedExecution:
        """Execute many join paths in one tagged ``UNION ALL`` statement.

        Planning (:func:`repro.db.backends.sql.plan_batch`) decides which
        specs share the statement: specs whose selections are provably empty
        never reach SQL, and specs whose inline-key footprint exceeds the
        statement's parameter budget fall back to their own plan — the
        reason travels back on ``BatchedExecution.fallbacks`` so ``--explain``
        can show it.  ``statements`` reports the physical statement count
        either way (the sharded backend multiplies it by its shard fan-out).
        """
        specs = list(specs)
        rows_per_spec: list[list[tuple[Tuple, ...]] | None] = [None] * len(specs)
        statements = 0
        fallbacks: dict[int, str] = {}
        shard_rows: dict[int, int] = {}
        scatter_slots: dict[int, str] = {}
        estimated_rows: dict[int, float] = {}
        plan_labels: dict[int, str] = {}
        solo, members = self._plan_specs(
            specs, rows_per_spec, fallbacks, scatter_slots,
            estimated_rows, plan_labels, limit,
        )
        for index, solo_plan in solo:
            rows_per_spec[index] = self._run_plan(solo_plan, shard_rows)
            statements += self._statements_per_plan()
        if members:
            for index, rows in self._run_union(members, shard_rows).items():
                rows_per_spec[index] = rows
            statements += self._statements_per_plan()
        return BatchedExecution(
            rows=[rows if rows is not None else [] for rows in rows_per_spec],
            statements=statements,
            batched_indexes=[index for index, _plan in members],
            fallbacks=fallbacks,
            shard_rows=shard_rows,
            scatter_slots=scatter_slots,
            estimated_rows=estimated_rows,
            plan_labels=plan_labels,
        )

    def _plan_specs(
        self,
        specs: Sequence[PathSpec],
        rows_per_spec: list,
        fallbacks: dict[int, str],
        scatter_slots: dict[int, str],
        estimated_rows: dict[int, float],
        plan_labels: dict[int, str],
        limit: int | None,
    ) -> tuple[list[tuple[int, PathPlan]], list[tuple[int, PathPlan]]]:
        """The shared planning front half of batched and streamed execution.

        Validates every spec, marks the provably-empty ones directly in
        ``rows_per_spec``, splits the rest between solo plans (budget
        fallbacks — the reason lands in ``fallbacks`` — plus the union-of-one
        case, which brings tagging overhead and no statement saving) and the
        members of one shared ``UNION ALL`` statement.  Every returned plan
        has been through :meth:`_prepare_plan`, with its chosen scatter slot
        named in ``scatter_slots`` (sharding backends only).
        """
        resolved: list[tuple[int, Sequence[str], Sequence[ForeignKey], dict]] = []
        for index, (path, edges, selections) in enumerate(specs):
            selections = selections or {}
            self._validate_path(path, edges, selections, limit)
            if limit == 0:
                rows_per_spec[index] = []
                continue
            key_filters = self._resolve_key_filters(path, selections)
            if key_filters is None:
                rows_per_spec[index] = []  # provably empty, no SQL at all
                continue
            resolved.append((index, path, edges, key_filters))
        batch = sqlc.plan_batch(resolved, limit, estimator=self.plan_estimator())
        solo: list[tuple[int, PathPlan]] = []
        for index, solo_plan, reason in batch.fallbacks:
            # Too selective to inline in the shared statement (_run_plan has
            # the Python-side post-filter machinery for that).
            solo.append((index, self._prepare_plan(solo_plan)))
            fallbacks[index] = reason
        members = [
            (index, self._prepare_plan(plan)) for index, plan in batch.members
        ]
        if len(members) == 1:
            solo.append(members.pop())
        solo.sort(key=lambda item: item[0])
        for index, plan in [*solo, *members]:
            label = self._scatter_slot_label(plan)
            if label is not None:
                scatter_slots[index] = label
            if plan.estimated_rows is not None:
                estimated_rows[index] = plan.estimated_rows
            plan_label = self._plan_label(plan)
            if plan_label is not None:
                plan_labels[index] = plan_label
        return solo, members

    def _run_union(
        self,
        members: list[tuple[int, PathPlan]],
        shard_rows: dict[int, int] | None = None,
    ) -> dict[int, list[tuple[Tuple, ...]]]:
        """Compile + run the UNION ALL statement; rows keyed by spec index."""
        statement = self.compiler.compile_union(members)
        ord_width, _data_width = self.compiler.union_widths(members)
        member_relations = {
            index: [self.relation(name) for name in plan.path]
            for index, plan in members
        }
        grouped: dict[int, list[tuple[Tuple, ...]]] = {
            index: [] for index, _plan in members
        }
        with self._lease_read_connection() as conn:
            with conn.lock:  # statement + fetch: one serialized read cycle
                cursor = conn.execute(statement.sql, statement.params)
                try:
                    for row in cursor:
                        grouped[row[0]].append(
                            self._decode_network(
                                member_relations[row[0]], row, offset=1 + ord_width
                            )
                        )
                finally:
                    cursor.close()
        return grouped

    # -- streamed join-path execution ---------------------------------------

    #: Rows fetched per lock-guarded cursor step of a streamed statement:
    #: small enough that an early-stopping consumer leaves little behind,
    #: large enough that lock churn stays negligible against decode cost.
    STREAM_CHUNK = 64

    def execute_paths_streamed(
        self,
        specs: Sequence[PathSpec],
        limit: int | None = None,
    ) -> StreamedExecution:
        """Stream many join paths through real SQLite cursors.

        Planning is identical to :meth:`execute_paths_batched` — same
        statements, same fallback decisions — but nothing executes until the
        consumer pulls the first row: every statement's cursor opens lazily
        when the stream reaches it (``statements`` counts only opened ones),
        rows are fetched in :data:`STREAM_CHUNK` steps under the connection
        lock and decoded one at a time, and closing the stream mid-iteration
        releases the cursors without fetching the rest.  Spec order is the
        stream order; a fully drained stream is byte-identical to the
        batched rows.
        """
        specs = list(specs)
        rows_per_spec: list[list | None] = [None] * len(specs)
        execution = StreamedExecution(stream=RowStream(iter(())))
        solo, members = self._plan_specs(
            specs, rows_per_spec, execution.fallbacks, execution.scatter_slots,
            execution.estimated_rows, execution.plan_labels, limit,
        )
        execution.batched_indexes = [index for index, _plan in members]
        solo_plans = dict(solo)
        member_indexes = {index for index, _plan in members}

        def generate() -> Iterator[tuple[int, tuple[Tuple, ...]]]:
            union_stream: Iterator[tuple[int, tuple[Tuple, ...]]] | None = None
            lookahead: tuple[int, tuple[Tuple, ...]] | None = None
            exhausted = False
            try:
                for index in sorted([*solo_plans, *member_indexes]):
                    if index in solo_plans:
                        plan_stream = self._stream_plan(solo_plans[index], execution)
                        try:
                            for network in plan_stream:
                                yield index, network
                        finally:
                            plan_stream.close()
                        continue
                    if union_stream is None:
                        union_stream = self._stream_union(members, execution)
                    # The union cursor yields its members in ascending spec
                    # order; drain this member's rows, keep the first row of
                    # the next member as lookahead.
                    while True:
                        if lookahead is None and not exhausted:
                            lookahead = next(union_stream, None)
                            exhausted = lookahead is None
                        if lookahead is None or lookahead[0] != index:
                            break
                        item, lookahead = lookahead, None
                        yield item
            finally:
                if lookahead is not None:
                    # The next member's first row was pulled (and attributed,
                    # e.g. to shard_rows) to detect the boundary but never
                    # reached the consumer: account it like every other
                    # produced-but-unconsumed row.
                    execution.rows_short_circuited += 1
                if union_stream is not None:
                    union_stream.close()

        execution.stream = RowStream(generate())
        return execution

    def _iter_cursor(
        self, conn: _LockedConnection, statement: CompiledStatement,
        execution: StreamedExecution,
    ) -> Iterator[tuple]:
        """Chunked iteration over one statement's cursor, lock held open→close.

        The *connection's* lock is held for the whole life of the cursor:
        Python's ``sqlite3`` requires serialized use of a shared connection,
        and under a rollback journal an open read cursor also holds the
        file's shared lock, where releasing between chunks would let another
        connection's commit interleave and stall into ``database is locked``
        (the two-engines-one-file flush race the first streaming cut hit).
        Which lock that is decides how much actually serializes: on the
        writer connection it is the per-file lock, so one cold streamed
        query per *file* at a time — the pre-pool world, still the shape on
        ``:memory:`` stores and with ``read_pool_size=1``.  A pooled reader
        carries a *private* lock instead, so the hold only pins that reader
        for the stream's lifetime (the lease already guarantees exclusive
        use) and N readers stream N cold queries concurrently under WAL.
        Consumers must drain or close the stream in the thread that opened
        it (the executor does; ``RowStream`` is a context manager for
        everyone else).  Chunked fetching keeps the prefetch overrun —
        booked as short-circuited on close — small.
        """
        with conn.lock:
            cursor = conn.execute(statement.sql, statement.params)
            prefetched = delivered = 0
            try:
                while True:
                    rows = cursor.fetchmany(self.STREAM_CHUNK)
                    if not rows:
                        break
                    prefetched += len(rows)
                    for row in rows:
                        delivered += 1  # before the yield: a close lands there
                        yield row
            finally:
                execution.rows_short_circuited += prefetched - delivered
                cursor.close()

    def _stream_plan(
        self, plan: PathPlan, execution: StreamedExecution
    ) -> "Iterator[tuple[Tuple, ...]]":
        """One plan as a lazy cursor of decoded, post-filtered networks.

        The read lease spans the generator's whole life — acquired at the
        first pull, released (returning the reader to the pool) when the
        consumer drains or closes the stream.
        """
        statement = self.compiler.compile_path(plan)
        relations = [self.relation(name) for name in plan.path]
        execution.statements += self._statements_per_plan()
        produced = 0
        with self._lease_read_connection() as conn:
            rows = self._iter_cursor(conn, statement, execution)
            try:
                for row in rows:
                    network = self._decode_network(relations, row)
                    if not plan.keeps(network):
                        continue
                    yield network
                    produced += 1
                    if plan.limit is not None and produced >= plan.limit:
                        break
            finally:
                rows.close()

    def _stream_union(
        self, members: list[tuple[int, PathPlan]], execution: StreamedExecution
    ) -> Iterator[tuple[int, tuple[Tuple, ...]]]:
        """The tagged UNION ALL as a lazy ``(spec index, network)`` cursor.

        Members carry no post filters by construction (the planner falls
        oversized key sets back to solo plans) and the member-local SQL LIMIT
        is exact on a single file, so decoding is the only Python-side work.
        """
        statement = self.compiler.compile_union(members)
        ord_width, _data_width = self.compiler.union_widths(members)
        member_relations = {
            index: [self.relation(name) for name in plan.path]
            for index, plan in members
        }
        execution.statements += self._statements_per_plan()
        with self._lease_read_connection() as conn:
            rows = self._iter_cursor(conn, statement, execution)
            try:
                for row in rows:
                    yield row[0], self._decode_network(
                        member_relations[row[0]], row, offset=1 + ord_width
                    )
            finally:
                rows.close()
