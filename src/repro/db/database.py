"""The database facade: schema + relations + inverted index + join execution.

:class:`Database` ties the substrate together and provides the one primitive
every schema-based system of the thesis needs at materialization time:
executing a *join path with keyword selections* — i.e. the SQL statement a
candidate network corresponds to (Section 2.2.6) — and returning joining
networks of tuples (JTTs).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.db.errors import UnknownTableError
from repro.db.index import InvertedIndex
from repro.db.schema import ForeignKey, Schema, Table
from repro.db.table import Relation, Tuple
from repro.db.tokenizer import DEFAULT_TOKENIZER, Tokenizer

#: One selection: all of ``terms`` must be contained in ``attribute``'s value.
#: ``(attribute, terms)``
Selection = tuple[str, tuple[str, ...]]


class Database:
    """An in-memory relational database instance."""

    def __init__(self, schema: Schema, tokenizer: Tokenizer = DEFAULT_TOKENIZER):
        self.schema = schema
        self.tokenizer = tokenizer
        self._relations: dict[str, Relation] = {
            table.name: Relation(table) for table in schema
        }
        self.index: InvertedIndex | None = None

    # -- data loading -----------------------------------------------------

    def relation(self, table_name: str) -> Relation:
        try:
            return self._relations[table_name]
        except KeyError:
            raise UnknownTableError(table_name) from None

    def insert(self, table_name: str, row: dict[str, Any]) -> Tuple:
        tup = self.relation(table_name).insert(row)
        if self.index is not None:
            # Keep the inverted index live for post-indexing inserts.
            self.index.add_tuple(self.schema.table(table_name), tup)
        return tup

    def insert_many(self, table_name: str, rows: Iterable[dict[str, Any]]) -> list[Tuple]:
        return [self.insert(table_name, row) for row in rows]

    def add_table(self, table: Table) -> Relation:
        self.schema.add_table(table)
        self._relations[table.name] = Relation(table)
        return self._relations[table.name]

    # -- indexing ----------------------------------------------------------

    def build_indexes(self) -> InvertedIndex:
        """Build the inverted index and exact-match join indexes a-priori."""
        for fk in self.schema.foreign_keys:
            self.relation(fk.source).create_index(fk.source_attr)
            if fk.target_attr != self.schema.table(fk.target).primary_key:
                self.relation(fk.target).create_index(fk.target_attr)
        self.index = InvertedIndex(self.tokenizer).build(self)
        return self.index

    def require_index(self) -> InvertedIndex:
        if self.index is None:
            self.build_indexes()
        assert self.index is not None
        return self.index

    # -- statistics ----------------------------------------------------------

    def total_tuples(self) -> int:
        return sum(len(r) for r in self._relations.values())

    # -- selection ----------------------------------------------------------

    def select(self, table_name: str, selections: Sequence[Selection]) -> list[Tuple]:
        """Tuples of one table satisfying *all* keyword containments."""
        relation = self.relation(table_name)
        if not selections:
            return list(relation)
        index = self.require_index()
        keys: set[Any] | None = None
        for attribute, terms in selections:
            attr_keys = index.candidate_tuple_keys(terms, table_name, attribute)
            keys = attr_keys if keys is None else keys & attr_keys
            if not keys:
                return []
        assert keys is not None
        return [t for t in (relation.get(k) for k in sorted(keys, key=repr)) if t is not None]

    # -- join-path execution ---------------------------------------------------

    def execute_path(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: dict[int, Sequence[Selection]] | None = None,
        limit: int | None = None,
    ) -> list[tuple[Tuple, ...]]:
        """Execute a join path and return joining networks of tuples.

        Parameters
        ----------
        path:
            Table names, in join order.  ``len(path) == len(edges) + 1``.
        edges:
            ``edges[i]`` is the foreign key joining ``path[i]`` and
            ``path[i+1]`` (in either direction).
        selections:
            Optional keyword selections per path position.
        limit:
            Stop once this many result rows are produced (top-k early
            termination, Section 2.2.5).

        Returns
        -------
        A list of tuples of :class:`Tuple`, aligned with ``path``.
        """
        if len(path) != len(edges) + 1:
            raise ValueError("path/edges arity mismatch")
        selections = selections or {}
        for position, table_name in enumerate(path):
            self.relation(table_name)  # validates table
            for attribute, _terms in selections.get(position, ()):
                if not self.schema.table(table_name).has_attribute(attribute):
                    raise UnknownTableError(f"{table_name}.{attribute}")

        base = self.select(path[0], list(selections.get(0, ())))
        partials: list[tuple[Tuple, ...]] = [(t,) for t in base]
        for position in range(1, len(path)):
            if not partials:
                return []
            edge = edges[position - 1]
            next_table = path[position]
            allowed_keys: set[Any] | None = None
            position_selections = list(selections.get(position, ()))
            if position_selections:
                allowed = self.select(next_table, position_selections)
                allowed_keys = {t.key for t in allowed}
                if not allowed_keys:
                    return []
            partials = self._extend(partials, path[position - 1], next_table, edge, allowed_keys)
        if limit is not None:
            return partials[:limit]
        return partials

    def _extend(
        self,
        partials: list[tuple[Tuple, ...]],
        current_table: str,
        next_table: str,
        edge: ForeignKey,
        allowed_keys: set[Any] | None,
    ) -> list[tuple[Tuple, ...]]:
        """Join each partial result with matching tuples of ``next_table``."""
        relation = self.relation(next_table)
        results: list[tuple[Tuple, ...]] = []
        if edge.source == current_table and edge.target == next_table:
            # partial row carries the FK value; look up target by key attr.
            for partial in partials:
                fk_value = partial[-1].get(edge.source_attr)
                if fk_value is None:
                    continue
                for match in relation.lookup(edge.target_attr, fk_value):
                    if allowed_keys is not None and match.key not in allowed_keys:
                        continue
                    results.append(partial + (match,))
        elif edge.source == next_table and edge.target == current_table:
            # target side already bound; find source rows pointing at it.
            for partial in partials:
                bound_value = partial[-1].get(edge.target_attr)
                if bound_value is None:
                    continue
                for match in relation.lookup(edge.source_attr, bound_value):
                    if allowed_keys is not None and match.key not in allowed_keys:
                        continue
                    results.append(partial + (match,))
        else:
            raise ValueError(
                f"foreign key {edge} does not connect {current_table!r} and {next_table!r}"
            )
        return results

    def count_path(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: dict[int, Sequence[Selection]] | None = None,
    ) -> int:
        """Number of result rows of a join path."""
        return len(self.execute_path(path, edges, selections))

    def has_results(
        self,
        path: Sequence[str],
        edges: Sequence[ForeignKey],
        selections: dict[int, Sequence[Selection]] | None = None,
    ) -> bool:
        """True iff the join path yields at least one result row.

        DivQ assigns zero probability to interpretations with empty results
        (Section 4.4.2); this is the early-terminating check it uses.
        """
        return bool(self.execute_path(path, edges, selections, limit=1))
