"""The database facade — compatibility home of the default engine.

Historically this module *was* the storage engine.  The implementation now
lives in :mod:`repro.db.backends`: the contract is
:class:`~repro.db.backends.base.StorageBackend`, the in-memory engine is
:class:`~repro.db.backends.memory.MemoryBackend`, and a persistent SQLite
engine lives in :mod:`repro.db.backends.sqlite`.  ``Database`` remains the
name the rest of the codebase (and downstream users) construct for the
default in-memory engine; it is the memory backend.
"""

from __future__ import annotations

from repro.db.backends.base import Selection, StorageBackend
from repro.db.backends.memory import MemoryBackend

#: The default engine, under its original name.  ``Database(schema)`` and
#: ``MemoryBackend(schema)`` are the same type.
Database = MemoryBackend

__all__ = ["Database", "MemoryBackend", "Selection", "StorageBackend"]
