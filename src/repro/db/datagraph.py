"""Tuple-level data graph (Section 2.2.2).

Data-based keyword-search approaches (BANKS and friends) operate on a graph
whose nodes are database tuples and whose edges are foreign-key links between
tuples.  :class:`DataGraph` materializes that graph from a storage backend
so the BANKS-style baseline can run backward-expanding Steiner-tree search.
"""

from __future__ import annotations

from typing import Any, Iterable

import networkx as nx

from repro.db.backends.base import StorageBackend

#: Node identity in the data graph: ``(table name, primary key)``.
TupleId = tuple[str, Any]


class DataGraph:
    """Undirected tuple graph with unit edge weights.

    The thesis notes edge weights can reflect tuple proximity or PageRank
    style importance; unit weights reproduce the minimality-driven ranking
    (number of joins) the comparisons in Chapter 3 rely on.
    """

    def __init__(self, database: StorageBackend):
        self.database = database
        self.graph = nx.Graph()
        self._build()

    def _build(self) -> None:
        for table in self.database.schema:
            for tup in self.database.relation(table.name):
                self.graph.add_node(tup.uid)
        for fk in self.database.schema.foreign_keys:
            target_relation = self.database.relation(fk.target)
            target_pk = self.database.schema.table(fk.target).primary_key
            use_pk_lookup = fk.target_attr == target_pk
            for tup in self.database.relation(fk.source):
                value = tup.get(fk.source_attr)
                if value is None:
                    continue
                if use_pk_lookup:
                    target = target_relation.get(value)
                    matches = [target] if target is not None else []
                else:
                    matches = target_relation.lookup(fk.target_attr, value)
                for match in matches:
                    self.graph.add_edge(tup.uid, match.uid, weight=1.0)

    # -- queries -----------------------------------------------------------

    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    def edge_count(self) -> int:
        return self.graph.number_of_edges()

    def neighbors(self, node: TupleId) -> Iterable[TupleId]:
        return self.graph.neighbors(node)

    def keyword_nodes(self, term: str) -> set[TupleId]:
        """All tuple ids whose indexed text contains ``term``."""
        index = self.database.require_index()
        nodes: set[TupleId] = set()
        for table, attribute in index.attributes_containing(term):
            for key in index.tuple_keys(term, table, attribute):
                nodes.add((table, key))
        return nodes
