"""Exception hierarchy of the relational substrate."""


class DatabaseError(Exception):
    """Base class for all errors raised by the :mod:`repro.db` engine."""


class UnknownTableError(DatabaseError):
    """A referenced table does not exist in the schema."""

    def __init__(self, table_name: str):
        super().__init__(f"unknown table: {table_name!r}")
        self.table_name = table_name


class UnknownAttributeError(DatabaseError):
    """A referenced attribute does not exist on its table."""

    def __init__(self, table_name: str, attribute_name: str):
        super().__init__(f"unknown attribute: {table_name!r}.{attribute_name!r}")
        self.table_name = table_name
        self.attribute_name = attribute_name


class DuplicateTableError(DatabaseError):
    """A table with the same name was already registered."""

    def __init__(self, table_name: str):
        super().__init__(f"duplicate table: {table_name!r}")
        self.table_name = table_name


class IntegrityError(DatabaseError):
    """A tuple violates a schema constraint (arity, key or foreign key)."""
