"""Inverted index over textual database attributes (Section 2.2.1).

The index maps each normalized term to postings at *attribute* granularity
(which ``table.attribute`` values contain the term, how often, and in which
tuples).  On top of the postings it exposes the keyword statistics used by the
thesis' models:

* ``TF(k, AT)`` — normalized frequency of keyword ``k`` in attribute ``AT``
  (Eq. 3.8's term-frequency component),
* ``ATF(k, AT) = TF + alpha`` — the Attribute Term Frequency estimate of
  ``P(sigma_{k in AT} : k | sigma_{? in AT})`` (Eq. 3.8),
* ``DF`` / ``IDF`` per table — used by the SQAK baseline's TF-IDF scores,
* joint frequencies of keyword combinations within one attribute — the
  keyword-co-occurrence extension DivQ adds in Eq. 4.2.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.db.tokenizer import DEFAULT_TOKENIZER, Tokenizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.db.backends.base import StorageBackend

#: An attribute coordinate: ``(table name, attribute name)``.
AttributeRef = tuple[str, str]


@dataclass
class Posting:
    """Statistics of one term within one attribute."""

    occurrences: int = 0
    tuple_keys: set[Any] = field(default_factory=set)

    @property
    def document_frequency(self) -> int:
        """Number of tuples whose attribute value contains the term."""
        return len(self.tuple_keys)


@dataclass
class AttributeStatistics:
    """Aggregate token statistics of one attribute column."""

    total_tokens: int = 0
    cell_count: int = 0


class InvertedIndex:
    """Term -> attribute postings, built a-priori over a database instance."""

    def __init__(self, tokenizer: Tokenizer = DEFAULT_TOKENIZER, alpha: float = 1e-6):
        self.tokenizer = tokenizer
        #: Smoothing parameter of Eq. 3.8.  The thesis states alpha is
        #: "typically set to 1" for counts-with-smoothing; on normalized
        #: frequencies a small constant keeps unseen events possible without
        #: drowning the signal.
        self.alpha = alpha
        self._postings: dict[str, dict[AttributeRef, Posting]] = defaultdict(dict)
        self._attribute_stats: dict[AttributeRef, AttributeStatistics] = defaultdict(
            AttributeStatistics
        )
        self._table_tuple_counts: dict[str, int] = {}
        self._schema_terms: dict[str, set[str]] = defaultdict(set)

    # -- construction ------------------------------------------------------

    def build(self, database: "StorageBackend") -> "InvertedIndex":
        """Index every textual attribute of a storage backend plus schema terms.

        ``database`` is any :class:`~repro.db.backends.base.StorageBackend`
        (the in-memory engine, SQLite, ...): construction only relies on the
        backend contract — schema iteration and per-table relation scans.
        """
        for table in database.schema:
            self._table_tuple_counts[table.name] = len(database.relation(table.name))
            for term in self.tokenizer.tokens(table.name):
                self._schema_terms[term].add(table.name)
            textual = [a.name for a in table.textual_attributes()]
            relation = database.relation(table.name)
            for tup in relation:
                for attr_name in textual:
                    value = tup.get(attr_name)
                    if value is None:
                        continue
                    self._index_cell(table.name, attr_name, tup.key, str(value))
        return self

    def register_table(self, table, relation=None) -> None:
        """Register a table added after :meth:`build`.

        A from-scratch rebuild would pick up the new table's schema terms and
        tuple count; without this hook an incrementally maintained index
        silently drifts from that rebuild (``tables_matching_schema_term``
        misses the table, IDF sees a zero tuple count).  ``Database.add_table``
        calls this automatically; pass ``relation`` to also index any rows the
        table already holds.
        """
        self._table_tuple_counts.setdefault(table.name, 0)
        for term in self.tokenizer.tokens(table.name):
            self._schema_terms[term].add(table.name)
        if relation is not None:
            for tup in relation:
                self.add_tuple(table, tup)

    def add_tuple(self, table, tup) -> None:
        """Incrementally index one freshly inserted tuple.

        Keeps the index consistent when rows are added after :meth:`build`
        (``Database.insert`` calls this automatically).  ``table`` is the
        :class:`~repro.db.schema.Table` definition; ``tup`` the stored tuple.
        """
        self._table_tuple_counts[table.name] = (
            self._table_tuple_counts.get(table.name, 0) + 1
        )
        for attr in table.textual_attributes():
            value = tup.get(attr.name)
            if value is None:
                continue
            self._index_cell(table.name, attr.name, tup.key, str(value))

    def _index_cell(self, table: str, attribute: str, key: Any, text: str) -> None:
        tokens = self.tokenizer.tokens(text)
        if not tokens:
            return
        ref = (table, attribute)
        stats = self._attribute_stats[ref]
        stats.total_tokens += len(tokens)
        stats.cell_count += 1
        for token in tokens:
            posting = self._postings[token].get(ref)
            if posting is None:
                posting = self._postings[token][ref] = Posting()
            posting.occurrences += 1
            posting.tuple_keys.add(key)

    # -- lookups -------------------------------------------------------------

    def attributes_containing(self, term: str) -> list[AttributeRef]:
        """All ``(table, attribute)`` pairs whose values contain ``term``."""
        return sorted(self._postings.get(term, {}))

    def tables_containing(self, term: str) -> set[str]:
        """Tables that are *non-free* for ``term`` (Section 2.2.3)."""
        return {table for table, _ in self._postings.get(term, {})}

    def posting(self, term: str, table: str, attribute: str) -> Posting | None:
        return self._postings.get(term, {}).get((table, attribute))

    def tuple_keys(self, term: str, table: str, attribute: str) -> set[Any]:
        posting = self.posting(term, table, attribute)
        return set(posting.tuple_keys) if posting else set()

    def tables_matching_schema_term(self, term: str) -> set[str]:
        """Tables whose *name* matches ``term`` (metadata matches, §2.2.7)."""
        return set(self._schema_terms.get(term, ()))

    def vocabulary(self) -> list[str]:
        return sorted(self._postings)

    def attribute_statistics(self, table: str, attribute: str) -> AttributeStatistics:
        return self._attribute_stats.get((table, attribute), AttributeStatistics())

    # -- statistics ------------------------------------------------------------

    def tf(self, term: str, table: str, attribute: str) -> float:
        """Normalized term frequency of ``term`` in the attribute column."""
        posting = self.posting(term, table, attribute)
        if posting is None:
            return 0.0
        total = self._attribute_stats[(table, attribute)].total_tokens
        return posting.occurrences / total if total else 0.0

    def atf(self, term: str, table: str, attribute: str) -> float:
        """Attribute Term Frequency, Eq. 3.8: ``TF(k, AT) + alpha``."""
        return self.tf(term, table, attribute) + self.alpha

    def df(self, term: str, table: str) -> int:
        """Document frequency: tuples of ``table`` containing ``term``."""
        keys: set[Any] = set()
        for (tbl, _attr), posting in self._postings.get(term, {}).items():
            if tbl == table:
                keys |= posting.tuple_keys
        return len(keys)

    def idf(self, term: str, table: str) -> float:
        """Inverse document frequency of ``term`` within ``table``.

        Lucene-style smoothing: ``1 + ln((N + 1) / (df + 1))``, which is what
        the SQAK baseline's scoring uses.
        """
        n = self._table_tuple_counts.get(table, 0)
        df = self.df(term, table)
        return 1.0 + math.log((n + 1) / (df + 1))

    def joint_cell_frequency(
        self, terms: Sequence[str], table: str, attribute: str
    ) -> float:
        """Fraction of cells of the attribute containing *all* of ``terms``.

        This is the keyword-co-occurrence statistic of DivQ (Eq. 4.2): when
        several keywords co-occur in one attribute value (e.g. a first and a
        last name in ``name``), the joint frequency exceeds the product of the
        marginals, so bindings of both keywords to the same attribute win.
        """
        if not terms:
            return 0.0
        cells = self._attribute_stats.get((table, attribute))
        if cells is None or cells.cell_count == 0:
            return 0.0
        key_sets: list[set[Any]] = []
        for term in terms:
            posting = self.posting(term, table, attribute)
            if posting is None:
                return 0.0
            key_sets.append(posting.tuple_keys)
        key_sets.sort(key=len)
        shared = set(key_sets[0])
        for other in key_sets[1:]:
            shared &= other
            if not shared:
                return 0.0
        return len(shared) / cells.cell_count

    def stats_snapshot(self) -> dict[str, Any]:
        """Canonical, comparable view of the full index state.

        Two indexes over the same logical content produce equal snapshots
        regardless of construction order (a-priori build vs. incremental
        maintenance vs. a different storage backend) — the invariant the
        consistency regression tests assert.
        """
        return {
            "postings": {
                term: {
                    ref: (posting.occurrences, tuple(sorted(posting.tuple_keys, key=repr)))
                    for ref, posting in sorted(refs.items())
                }
                for term, refs in sorted(self._postings.items())
            },
            "attribute_stats": {
                ref: (stats.total_tokens, stats.cell_count)
                for ref, stats in sorted(self._attribute_stats.items())
                if stats.total_tokens or stats.cell_count
            },
            "table_tuple_counts": dict(sorted(self._table_tuple_counts.items())),
            "schema_terms": {
                term: tuple(sorted(tables))
                for term, tables in sorted(self._schema_terms.items())
                if tables
            },
        }

    # -- persistence -----------------------------------------------------------

    def export_state(self) -> dict[str, list[tuple]]:
        """Flat, storable view of the index (see :meth:`restore`).

        Four row lists mirroring the internal maps; tuple keys are emitted as
        sorted lists so the representation is deterministic.  Together with
        :meth:`restore` this is what lets persistent backends save postings
        into side tables and reload them on cold open instead of re-scanning
        (and re-tokenizing) every stored row.
        """
        return {
            "postings": [
                (term, table, attribute, posting.occurrences,
                 sorted(posting.tuple_keys, key=repr))
                for term, refs in sorted(self._postings.items())
                for (table, attribute), posting in sorted(refs.items())
            ],
            "attribute_stats": [
                (table, attribute, stats.total_tokens, stats.cell_count)
                for (table, attribute), stats in sorted(self._attribute_stats.items())
                if stats.total_tokens or stats.cell_count
            ],
            "table_tuple_counts": [
                (table, count)
                for table, count in sorted(self._table_tuple_counts.items())
            ],
            "schema_terms": [
                (term, table)
                for term, tables in sorted(self._schema_terms.items())
                for table in sorted(tables)
            ],
        }

    @classmethod
    def restore(
        cls,
        state: dict[str, Iterable[tuple]],
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        alpha: float = 1e-6,
    ) -> "InvertedIndex":
        """Rebuild an index from :meth:`export_state` output.

        The restored index is indistinguishable from a from-scratch build
        over the same content (``stats_snapshot()`` equality), so incremental
        maintenance (``add_tuple`` / ``register_table``) keeps working on it.
        """
        index = cls(tokenizer=tokenizer, alpha=alpha)
        for term, table, attribute, occurrences, keys in state.get("postings", ()):
            posting = Posting(occurrences=occurrences, tuple_keys=set(keys))
            index._postings[term][(table, attribute)] = posting
        for table, attribute, total_tokens, cell_count in state.get(
            "attribute_stats", ()
        ):
            index._attribute_stats[(table, attribute)] = AttributeStatistics(
                total_tokens=total_tokens, cell_count=cell_count
            )
        for table, count in state.get("table_tuple_counts", ()):
            index._table_tuple_counts[table] = count
        for term, table in state.get("schema_terms", ()):
            index._schema_terms[term].add(table)
        return index

    def candidate_tuple_keys(
        self, terms: Iterable[str], table: str, attribute: str
    ) -> set[Any]:
        """Keys of tuples whose attribute value contains all ``terms``."""
        result: set[Any] | None = None
        for term in terms:
            keys = self.tuple_keys(term, table, attribute)
            result = keys if result is None else result & keys
            if not result:
                return set()
        return result or set()
