"""Relational schemas and the schema graph.

A :class:`Schema` is a set of :class:`Table` definitions connected by
:class:`ForeignKey` constraints.  Following Section 2.2.3 / Figure 2.2 of the
thesis, the schema is exposed as an *undirected schema graph* whose nodes are
tables and whose edges are foreign-key relationships; candidate networks and
query templates are connected subtrees of this graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from repro.db.errors import DuplicateTableError, UnknownAttributeError, UnknownTableError


@dataclass(frozen=True)
class Attribute:
    """A column of a table.

    ``textual`` marks attributes whose values participate in the inverted
    index (names, titles, plots, ...); numeric/id attributes are still
    searchable by exact match but are not tokenized.
    """

    name: str
    textual: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint ``source.source_attr -> target.target_attr``."""

    source: str
    source_attr: str
    target: str
    target_attr: str

    def endpoints(self) -> tuple[str, str]:
        return self.source, self.target


class Table:
    """A table definition: name, attributes and primary key.

    Entity tables (e.g. ``actor``) carry textual attributes; relationship
    tables (e.g. ``acts``) typically carry only foreign keys.
    """

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute | str],
        primary_key: str = "id",
    ):
        if not name:
            raise ValueError("table name must be non-empty")
        self.name = name
        self.attributes: dict[str, Attribute] = {}
        for attr in attributes:
            if isinstance(attr, str):
                attr = Attribute(attr)
            if attr.name in self.attributes:
                raise ValueError(f"duplicate attribute {attr.name!r} on table {name!r}")
            self.attributes[attr.name] = attr
        if primary_key not in self.attributes:
            self.attributes[primary_key] = Attribute(primary_key, textual=False)
        self.primary_key = primary_key

    @property
    def attribute_names(self) -> list[str]:
        return list(self.attributes)

    def textual_attributes(self) -> list[Attribute]:
        """Attributes that participate in the inverted index."""
        return [a for a in self.attributes.values() if a.textual]

    def has_attribute(self, name: str) -> bool:
        return name in self.attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {self.attribute_names})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass
class Schema:
    """A relational schema: tables plus foreign keys.

    The schema graph view (:meth:`graph`) is the structure every schema-based
    keyword-search component of the thesis explores.
    """

    tables: dict[str, Table] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def add_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise DuplicateTableError(table.name)
        self.tables[table.name] = table
        self._graph_cache = None
        return table

    def add_foreign_key(self, fk: ForeignKey) -> ForeignKey:
        self._require_attribute(fk.source, fk.source_attr)
        self._require_attribute(fk.target, fk.target_attr)
        self.foreign_keys.append(fk)
        self._graph_cache = None
        return fk

    def link(self, source: str, target: str, source_attr: str | None = None) -> ForeignKey:
        """Convenience: add FK ``source.<target>_id -> target.<pk>``."""
        target_table = self.table(target)
        attr = source_attr or f"{target}_id"
        if not self.table(source).has_attribute(attr):
            self.table(source).attributes[attr] = Attribute(attr, textual=False)
        return self.add_foreign_key(ForeignKey(source, attr, target, target_table.primary_key))

    # -- lookups ---------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def _require_attribute(self, table_name: str, attribute_name: str) -> None:
        table = self.table(table_name)
        if not table.has_attribute(attribute_name):
            raise UnknownAttributeError(table_name, attribute_name)

    @property
    def table_names(self) -> list[str]:
        return list(self.tables)

    def __contains__(self, table_name: str) -> bool:
        return table_name in self.tables

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables.values())

    # -- schema graph ----------------------------------------------------

    _graph_cache: nx.MultiGraph | None = field(default=None, repr=False, compare=False)

    def graph(self) -> nx.MultiGraph:
        """The undirected schema graph (Fig. 2.2).

        Nodes are table names; each foreign key contributes one edge carrying
        the :class:`ForeignKey` under the ``fk`` attribute.  A multigraph is
        used because two tables may be connected by several distinct foreign
        keys (e.g. ``movie.director_id`` and ``movie.producer_id`` both
        pointing at ``person``).
        """
        if self._graph_cache is None:
            g = nx.MultiGraph()
            g.add_nodes_from(self.tables)
            for fk in self.foreign_keys:
                g.add_edge(fk.source, fk.target, fk=fk)
            self._graph_cache = g
        return self._graph_cache

    def adjacent_tables(self, table_name: str) -> list[str]:
        """Tables connected to ``table_name`` by at least one foreign key."""
        self.table(table_name)
        return sorted(self.graph().neighbors(table_name))

    def join_edges(self, left: str, right: str) -> list[ForeignKey]:
        """All foreign keys connecting two tables (in either direction)."""
        g = self.graph()
        if not g.has_edge(left, right):
            return []
        return [data["fk"] for data in g[left][right].values()]

    def join_paths(self, max_length: int) -> list[tuple[str, ...]]:
        """Enumerate simple paths of tables with at most ``max_length`` joins.

        Returns node sequences (each of length ``joins + 1``), deduplicated up
        to reversal, sorted for determinism.  This is the raw material for
        automatic query-template generation (Section 3.5.2).
        """
        if max_length < 0:
            raise ValueError("max_length must be >= 0")
        g = self.graph()
        seen: set[tuple[str, ...]] = set()
        paths: list[tuple[str, ...]] = []
        for start in sorted(g.nodes):
            stack: list[tuple[str, ...]] = [(start,)]
            while stack:
                path = stack.pop()
                canonical = min(path, path[::-1])
                if canonical not in seen:
                    seen.add(canonical)
                    paths.append(canonical)
                if len(path) - 1 >= max_length:
                    continue
                for neighbor in g.neighbors(path[-1]):
                    if neighbor not in path:
                        stack.append(path + (neighbor,))
        paths.sort(key=lambda p: (len(p), p))
        return paths

    def validate(self) -> None:
        """Check all foreign keys reference existing tables/attributes."""
        for fk in self.foreign_keys:
            self._require_attribute(fk.source, fk.source_attr)
            self._require_attribute(fk.target, fk.target_attr)
