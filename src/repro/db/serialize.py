"""Database persistence: JSON round-tripping of schemas and instances.

Lets users snapshot a populated database (e.g. a generated synthetic dataset)
and reload it without re-running the generator — the minimal durability layer
a reproduction package needs for shipping fixtures and caching expensive
builds.  Works with any :class:`~repro.db.backends.base.StorageBackend`:
snapshots serialize the logical content (schema + rows), and loading can
target any backend, so a JSON fixture can be rehydrated straight into a
SQLite file (``load_database(path, backend="sqlite", db_path=...)``).  For
the SQLite backend the ``.sqlite`` file itself is already durable; JSON stays
the portable interchange format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.db.backends import StorageBackend, create_backend
from repro.db.schema import Attribute, ForeignKey, Schema, Table

FORMAT_VERSION = 1


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    return {
        "tables": [
            {
                "name": table.name,
                "primary_key": table.primary_key,
                "attributes": [
                    {"name": a.name, "textual": a.textual}
                    for a in table.attributes.values()
                ],
            }
            for table in schema
        ],
        "foreign_keys": [
            {
                "source": fk.source,
                "source_attr": fk.source_attr,
                "target": fk.target,
                "target_attr": fk.target_attr,
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_dict(payload: dict[str, Any]) -> Schema:
    schema = Schema()
    for spec in payload["tables"]:
        attributes = [
            Attribute(a["name"], textual=a["textual"]) for a in spec["attributes"]
        ]
        schema.add_table(
            Table(spec["name"], attributes, primary_key=spec["primary_key"])
        )
    for fk in payload["foreign_keys"]:
        schema.add_foreign_key(
            ForeignKey(fk["source"], fk["source_attr"], fk["target"], fk["target_attr"])
        )
    return schema


def database_to_dict(database: StorageBackend) -> dict[str, Any]:
    """Serialize schema + all rows (indexes are rebuilt on load)."""
    return {
        "version": FORMAT_VERSION,
        "schema": schema_to_dict(database.schema),
        "rows": {
            table.name: [tup.as_dict() for tup in database.relation(table.name)]
            for table in database.schema
        },
    }


def database_from_dict(
    payload: dict[str, Any],
    backend: str | StorageBackend = "memory",
    db_path: str | Path | None = None,
) -> StorageBackend:
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported database format version: {version!r}")
    schema = schema_from_dict(payload["schema"])
    db = create_backend(backend, schema, path=db_path)
    if db.is_persistent and db.has_rows():
        # The target store already holds data (e.g. re-running load_database
        # with the same db_path): reuse it instead of re-inserting.  Guarded
        # by a per-table row-count comparison — cheap, catches the common
        # wrong-file mistakes, but does not diff row contents.
        mismatched = [
            table_name
            for table_name, rows in payload["rows"].items()
            if len(db.relation(table_name)) != len(rows)
        ]
        if mismatched:
            db.close()
            raise ValueError(
                f"store at {db_path!r} already holds different data "
                f"(row counts differ for {', '.join(sorted(mismatched))})"
            )
        db.build_indexes()
        return db
    for table_name, rows in payload["rows"].items():
        db.insert_many(table_name, rows)
    db.build_indexes()
    return db


def save_database(database: StorageBackend, path: str | Path) -> None:
    """Write the database to a JSON file."""
    Path(path).write_text(json.dumps(database_to_dict(database)), encoding="utf-8")


def load_database(
    path: str | Path,
    backend: str | StorageBackend = "memory",
    db_path: str | Path | None = None,
) -> StorageBackend:
    """Read a database from a JSON file (indexes rebuilt eagerly).

    ``backend``/``db_path`` choose the storage engine the snapshot is
    rehydrated into (default: the in-memory engine).
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return database_from_dict(payload, backend=backend, db_path=db_path)
