"""Database persistence: JSON round-tripping of schemas and instances.

Lets users snapshot a populated :class:`~repro.db.database.Database` (e.g. a
generated synthetic dataset) and reload it without re-running the generator —
the minimal durability layer a reproduction package needs for shipping
fixtures and caching expensive builds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.db.database import Database
from repro.db.schema import Attribute, ForeignKey, Schema, Table

FORMAT_VERSION = 1


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    return {
        "tables": [
            {
                "name": table.name,
                "primary_key": table.primary_key,
                "attributes": [
                    {"name": a.name, "textual": a.textual}
                    for a in table.attributes.values()
                ],
            }
            for table in schema
        ],
        "foreign_keys": [
            {
                "source": fk.source,
                "source_attr": fk.source_attr,
                "target": fk.target,
                "target_attr": fk.target_attr,
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_dict(payload: dict[str, Any]) -> Schema:
    schema = Schema()
    for spec in payload["tables"]:
        attributes = [
            Attribute(a["name"], textual=a["textual"]) for a in spec["attributes"]
        ]
        schema.add_table(
            Table(spec["name"], attributes, primary_key=spec["primary_key"])
        )
    for fk in payload["foreign_keys"]:
        schema.add_foreign_key(
            ForeignKey(fk["source"], fk["source_attr"], fk["target"], fk["target_attr"])
        )
    return schema


def database_to_dict(database: Database) -> dict[str, Any]:
    """Serialize schema + all rows (indexes are rebuilt on load)."""
    return {
        "version": FORMAT_VERSION,
        "schema": schema_to_dict(database.schema),
        "rows": {
            table.name: [tup.as_dict() for tup in database.relation(table.name)]
            for table in database.schema
        },
    }


def database_from_dict(payload: dict[str, Any]) -> Database:
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported database format version: {version!r}")
    schema = schema_from_dict(payload["schema"])
    db = Database(schema)
    for table_name, rows in payload["rows"].items():
        db.insert_many(table_name, rows)
    db.build_indexes()
    return db


def save_database(database: Database, path: str | Path) -> None:
    """Write the database to a JSON file."""
    Path(path).write_text(json.dumps(database_to_dict(database)), encoding="utf-8")


def load_database(path: str | Path) -> Database:
    """Read a database from a JSON file (indexes rebuilt eagerly)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return database_from_dict(payload)
