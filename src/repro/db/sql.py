"""Rendering join paths with keyword selections as SQL text.

Every candidate network / query interpretation corresponds to a single SQL
statement (Section 2.2.6).  The engine executes the plans natively; this
module produces the equivalent ``SELECT * FROM ... JOIN ... WHERE ...`` text
so examples, logs and the IQP query window can show users real SQL.

The *executable* SQL the storage backends actually run comes from the
planner/compiler layer in :mod:`repro.db.backends.sql`; its public surface
(:class:`PathPlan`, :class:`CompiledStatement`, :class:`PlanCompiler`, the
dialects and the planners) is re-exported here so ``repro.db.sql`` is the
one import for everything SQL.
"""

from __future__ import annotations

from typing import Sequence

from repro.db.backends.sql import (  # noqa: F401  (re-exported surface)
    BatchPlan,
    CompiledStatement,
    PathPlan,
    PlanCompiler,
    ShardedSQLiteDialect,
    SQLiteDialect,
    plan_batch,
    plan_path,
)
from repro.db.database import Selection
from repro.db.schema import ForeignKey


def _alias(table: str, position: int) -> str:
    return f"t{position}_{table}"


def render_sql(
    path: Sequence[str],
    edges: Sequence[ForeignKey],
    selections: dict[int, Sequence[Selection]] | None = None,
) -> str:
    """Render a join path as a SQL statement with CONTAINS-style predicates.

    Keyword containment ``k in A`` is rendered as ``A LIKE '%k%'`` — the
    closest standard-SQL rendering of the thesis' ``contains`` predicate.
    """
    if len(path) != len(edges) + 1:
        raise ValueError("path/edges arity mismatch")
    selections = selections or {}
    lines = ["SELECT *", f"FROM {path[0]} AS {_alias(path[0], 0)}"]
    for position in range(1, len(path)):
        edge = edges[position - 1]
        table = path[position]
        alias = _alias(table, position)
        prev_alias = _alias(path[position - 1], position - 1)
        if edge.source == path[position - 1]:
            condition = f"{prev_alias}.{edge.source_attr} = {alias}.{edge.target_attr}"
        else:
            condition = f"{prev_alias}.{edge.target_attr} = {alias}.{edge.source_attr}"
        lines.append(f"JOIN {table} AS {alias} ON {condition}")
    predicates: list[str] = []
    for position in sorted(selections):
        alias = _alias(path[position], position)
        for attribute, terms in selections[position]:
            for term in terms:
                escaped = str(term).replace("'", "''")
                predicates.append(f"{alias}.{attribute} LIKE '%{escaped}%'")
    if predicates:
        lines.append("WHERE " + "\n  AND ".join(predicates))
    return "\n".join(lines)
