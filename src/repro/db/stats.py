"""Planner statistics and cardinality estimation for cost-based planning.

The physical planner makes three choices — scatter position, join
introduction order, and batch membership — that PRs 4–5 decided blindly
(raw relation row counts, rank order).  This module supplies the missing
signal: a :class:`StatisticsCatalog` of per-relation row counts and
per-attribute distinct-value counts (collected in one pass at index-build
time, incrementally maintained on insert, persisted by the SQLite backends
in ``_repro_stats_*`` side tables keyed by the content fingerprint), and a
:class:`CardinalityEstimator` that composes those statistics into
per-plan row estimates under the classic independence assumption:

    ``|R join S| ~= |R| * |S| / max(V(R, a), V(S, b))``

where ``V(T, x)`` is the distinct-value count of join attribute ``x``.
Slots carrying a resolved selection filter contribute their *exact*
post-filter cardinality (``len(keys)`` — selections resolve to primary-key
sets before planning), so single-table interpretations estimate exactly
and join paths degrade gracefully toward the textbook formula.

Estimates drive *physical* choices only; every rewrite they pick is
validated to return byte-identical rows (see ``tests/test_plan_rewrites``),
and any gap in the catalog makes the estimator return ``None``, which makes
every consumer keep the unrewritten plan.  The estimator self-tunes under
live traffic: the engine feeds estimated-vs-actual row counts back through
:meth:`CardinalityEstimator.observe`, an EWMA with the same ``alpha`` as
``QueryEngine.observed_selectivity``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.backends.base import StorageBackend
    from repro.db.backends.sql import PathPlan
    from repro.db.schema import Schema

#: EWMA smoothing for estimator calibration — deliberately the same constant
#: as ``QueryEngine.record_selectivity`` so both feedback loops converge at
#: the same rate.
EWMA_ALPHA = 0.5

#: Calibration is a multiplicative correction; clamp it so a few pathological
#: observations cannot swing estimates by more than one order of magnitude.
_CALIBRATION_MIN = 1.0 / 16.0
_CALIBRATION_MAX = 16.0


def tracked_attributes(schema: "Schema", table_name: str) -> tuple[str, ...]:
    """The attributes of one table the estimator needs statistics for.

    Primary keys (selection filters resolve to them) plus every attribute
    participating in a foreign key in either direction (join selectivity
    denominators).  Sorted for deterministic collection and persistence.
    """
    table = schema.table(table_name)
    attrs = {table.primary_key}
    for fk in schema.foreign_keys:
        if fk.source == table_name:
            attrs.add(fk.source_attr)
        if fk.target == table_name:
            attrs.add(fk.target_attr)
    return tuple(sorted(attrs))


@dataclass
class AttributeStatistics:
    """Distinct-value count and heaviest-value frequency of one attribute."""

    distinct: int = 0
    max_frequency: int = 0


@dataclass
class TableStatistics:
    """Row count plus per-attribute statistics of one relation."""

    rows: int = 0
    attributes: dict[str, AttributeStatistics] = field(default_factory=dict)


class StatisticsCatalog:
    """Per-relation statistics over one backend's stored rows.

    Values are counted by ``repr()`` — the same total-order key the whole
    execution layer sorts by — so sharded and unsharded stores collect
    identical catalogs (the sharded backend scans the all-shards union
    through the same relation contract).
    """

    def __init__(self, schema: "Schema"):
        self.schema = schema
        self.tables: dict[str, TableStatistics] = {}

    # -- collection ----------------------------------------------------------

    @classmethod
    def collect(cls, backend: "StorageBackend") -> "StatisticsCatalog":
        """One scan per relation, counting all tracked attributes together."""
        catalog = cls(backend.schema)
        for table_name in backend.schema.table_names:
            relation = backend.relation(table_name)
            tracked = tracked_attributes(backend.schema, table_name)
            counters: dict[str, dict[str, int]] = {attr: {} for attr in tracked}
            rows = 0
            for tup in relation:
                rows += 1
                for attr in tracked:
                    seen = counters[attr]
                    value = repr(tup.get(attr))
                    seen[value] = seen.get(value, 0) + 1
            stats = TableStatistics(rows=rows)
            for attr in tracked:
                seen = counters[attr]
                stats.attributes[attr] = AttributeStatistics(
                    distinct=len(seen),
                    max_frequency=max(seen.values(), default=0),
                )
            catalog.tables[table_name] = stats
        return catalog

    def observe_insert(self, backend: "StorageBackend", table_name: str, tup: Any) -> None:
        """Incrementally fold one just-inserted tuple into the catalog.

        Distinct counts stay exact via a point lookup per tracked attribute:
        the freshly stored row is its value's only match iff the value is
        new.  Primary keys are always new (duplicate keys are rejected at
        insert), so they skip the lookup.
        """
        stats = self.tables.setdefault(table_name, TableStatistics())
        stats.rows += 1
        relation = backend.relation(table_name)
        primary_key = self.schema.table(table_name).primary_key
        for attr in tracked_attributes(self.schema, table_name):
            attr_stats = stats.attributes.setdefault(attr, AttributeStatistics())
            if attr == primary_key:
                attr_stats.distinct += 1
                attr_stats.max_frequency = max(attr_stats.max_frequency, 1)
                continue
            matches = len(relation.lookup(attr, tup.get(attr)))
            if matches <= 1:
                attr_stats.distinct += 1
            attr_stats.max_frequency = max(attr_stats.max_frequency, matches)

    # -- access --------------------------------------------------------------

    def rows(self, table_name: str) -> int | None:
        stats = self.tables.get(table_name)
        return None if stats is None else stats.rows

    def distinct(self, table_name: str, attribute: str) -> int | None:
        stats = self.tables.get(table_name)
        if stats is None:
            return None
        attr_stats = stats.attributes.get(attribute)
        return None if attr_stats is None else attr_stats.distinct

    def iter_rows(self) -> Iterable[tuple[str, int]]:
        """``(table, rows)`` in schema order (persistence + ``repro stats``)."""
        for name in self.schema.table_names:
            if name in self.tables:
                yield name, self.tables[name].rows

    def iter_attributes(self) -> Iterable[tuple[str, str, int, int]]:
        """``(table, attr, distinct, max_frequency)`` in deterministic order."""
        for name in self.schema.table_names:
            stats = self.tables.get(name)
            if stats is None:
                continue
            for attr in sorted(stats.attributes):
                attr_stats = stats.attributes[attr]
                yield name, attr, attr_stats.distinct, attr_stats.max_frequency

    # -- persistence ---------------------------------------------------------

    def export_state(self) -> dict:
        """A JSON-able snapshot (tests compare catalogs through this)."""
        return {
            "tables": {
                name: {
                    "rows": stats.rows,
                    "attributes": {
                        attr: [a.distinct, a.max_frequency]
                        for attr, a in sorted(stats.attributes.items())
                    },
                }
                for name, stats in sorted(self.tables.items())
            }
        }

    @classmethod
    def restore(cls, schema: "Schema", state: dict) -> "StatisticsCatalog":
        catalog = cls(schema)
        for name, table_state in state.get("tables", {}).items():
            stats = TableStatistics(rows=int(table_state["rows"]))
            for attr, (distinct, max_frequency) in table_state.get(
                "attributes", {}
            ).items():
                stats.attributes[attr] = AttributeStatistics(
                    distinct=int(distinct), max_frequency=int(max_frequency)
                )
            catalog.tables[name] = stats
        return catalog


class CardinalityEstimator:
    """Row-count estimates over :class:`~repro.db.backends.sql.PathPlan`.

    Pure arithmetic over the catalog — it never touches stored rows, so
    estimating is safe on every execution path.  ``None`` anywhere means
    "no estimate": consumers must fall back to the unrewritten plan.
    """

    def __init__(self, catalog: StatisticsCatalog):
        self.catalog = catalog
        #: Multiplicative estimated-vs-actual correction (EWMA-updated).
        self.calibration = 1.0
        self.observations = 0

    def slot_cardinalities(self, plan: "PathPlan") -> list[float] | None:
        """Estimated *post-filter* rows contributed by each join slot.

        Filtered slots are exact (selections resolve to primary-key sets
        before planning); unfiltered slots fall back to the relation row
        count.  ``None`` when any slot's table is missing from the catalog.
        """
        filters = plan.key_filter_map()
        cards: list[float] = []
        for position, table_name in enumerate(plan.path):
            keys = filters.get(position)
            if keys is not None:
                cards.append(float(len(keys)))
                continue
            rows = self.catalog.rows(table_name)
            if rows is None:
                return None
            cards.append(float(rows))
        return cards

    def estimate(self, plan: "PathPlan") -> float | None:
        """Calibrated estimated result rows of one plan (``None`` = gap).

        Independence-assumption composition: the base slot contributes its
        post-filter cardinality, and every FK hop multiplies by
        ``cards[i+1] / max(V(left, bound), V(right, probe))``.
        """
        from repro.db.backends.sql import _edge_attrs

        cards = self.slot_cardinalities(plan)
        if cards is None:
            return None
        estimate = cards[0]
        for i, edge in enumerate(plan.edges):
            left, right = plan.path[i], plan.path[i + 1]
            bound_attr, probe_attr = _edge_attrs(edge, left, right)
            v_left = self.catalog.distinct(left, bound_attr)
            v_right = self.catalog.distinct(right, probe_attr)
            if not v_left or not v_right:
                return None  # missing/zero denominator: no estimate
            estimate *= cards[i + 1] / max(v_left, v_right)
        estimate *= self.calibration
        if plan.limit is not None:
            estimate = min(estimate, float(plan.limit))
        return estimate

    def observe(self, estimated: float, actual: int) -> None:
        """Fold one estimated-vs-actual sample into the calibration EWMA."""
        if estimated <= 0:
            return
        ratio = max(float(actual), _CALIBRATION_MIN) / estimated
        ratio = min(max(ratio, _CALIBRATION_MIN), _CALIBRATION_MAX)
        sample = self.calibration * ratio
        self.calibration = (
            EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * self.calibration
        )
        self.calibration = min(
            max(self.calibration, _CALIBRATION_MIN), _CALIBRATION_MAX
        )
        self.observations += 1
