"""Tuple storage: relations (table instances) and tuples.

A :class:`Relation` stores the rows of one table.  Rows are plain dicts keyed
by attribute name, wrapped in a lightweight :class:`Tuple` that remembers the
owning table — the unit the inverted index, the data graph and join results
all refer to.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.db.errors import IntegrityError, UnknownAttributeError
from repro.db.schema import Table


@dataclass(frozen=True)
class Tuple:
    """One row of one table.

    Identity is ``(table, primary key value)`` — exactly the "information
    nugget" granularity used by the DivQ metrics (Section 4.5).
    """

    table: str
    key: Any
    values: tuple[tuple[str, Any], ...]

    def __getitem__(self, attribute: str) -> Any:
        for name, value in self.values:
            if name == attribute:
                return value
        raise KeyError(attribute)

    def get(self, attribute: str, default: Any = None) -> Any:
        for name, value in self.values:
            if name == attribute:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.values)

    @property
    def uid(self) -> tuple[str, Any]:
        """Globally unique tuple id: ``(table name, primary key)``."""
        return (self.table, self.key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tuple({self.table}:{self.key})"


class Relation:
    """The stored rows of one table, with a primary-key index and FK indexes."""

    def __init__(self, table: Table):
        self.table = table
        self._rows: dict[Any, Tuple] = {}
        # attribute name -> value -> set of primary keys (exact-match index)
        self._value_index: dict[str, dict[Any, set[Any]]] = defaultdict(lambda: defaultdict(set))
        self._indexed_attributes: set[str] = set()

    # -- mutation --------------------------------------------------------

    def insert(self, row: dict[str, Any]) -> Tuple:
        """Insert a row; unknown attributes are rejected, missing ones are None."""
        for name in row:
            if not self.table.has_attribute(name):
                raise UnknownAttributeError(self.table.name, name)
        pk_name = self.table.primary_key
        key = row.get(pk_name)
        if key is None:
            key = len(self._rows)
            while key in self._rows:
                key += 1
        if key in self._rows:
            raise IntegrityError(
                f"duplicate primary key {key!r} in table {self.table.name!r}"
            )
        values = tuple(
            (name, row.get(name) if name != pk_name else key)
            for name in self.table.attribute_names
        )
        tup = Tuple(self.table.name, key, values)
        self._rows[key] = tup
        for attr in self._indexed_attributes:
            self._value_index[attr][tup.get(attr)].add(key)
        return tup

    def create_index(self, attribute: str) -> None:
        """Build (or rebuild) an exact-match index on ``attribute``."""
        if not self.table.has_attribute(attribute):
            raise UnknownAttributeError(self.table.name, attribute)
        index: dict[Any, set[Any]] = defaultdict(set)
        for key, tup in self._rows.items():
            index[tup.get(attribute)].add(key)
        self._value_index[attribute] = index
        self._indexed_attributes.add(attribute)

    # -- access ----------------------------------------------------------

    def get(self, key: Any) -> Tuple | None:
        return self._rows.get(key)

    def lookup(self, attribute: str, value: Any) -> list[Tuple]:
        """All tuples with ``attribute == value`` (uses index when present)."""
        if attribute in self._indexed_attributes:
            return [self._rows[k] for k in sorted(self._value_index[attribute][value], key=repr)]
        return [t for t in self._rows.values() if t.get(attribute) == value]

    def scan(self) -> Iterator[Tuple]:
        return iter(self._rows.values())

    def keys(self) -> Iterable[Any]:
        return self._rows.keys()

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple]:
        return self.scan()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.table.name}, {len(self)} rows)"
