"""Tokenization and normalization of textual attribute values.

Section 2.2.1 of the thesis builds the inverted index from terms extracted
from the cells of textual attributes, optionally normalized with stop-word
removal and stemming.  We implement lower-casing, punctuation splitting, an
(optional) English stop-word list and a light suffix stemmer — enough to make
index lookups robust without dragging in an external NLP stack.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Minimal English stop-word list.  Kept deliberately small: keyword queries
#: against databases are short, and over-aggressive stopping would delete
#: meaningful tokens from titles (e.g. the movie "It").
DEFAULT_STOPWORDS = frozenset(
    {
        "a",
        "an",
        "and",
        "are",
        "as",
        "at",
        "be",
        "by",
        "for",
        "from",
        "in",
        "into",
        "is",
        "of",
        "on",
        "or",
        "that",
        "the",
        "to",
        "with",
    }
)

#: Suffixes removed by the light stemmer, longest first.
_STEM_SUFFIXES = ("ing", "ies", "ed", "es", "s")


def _light_stem(token: str) -> str:
    """Strip a single common English suffix, keeping at least 3 characters."""
    for suffix in _STEM_SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            if suffix == "ies":
                return token[: -len(suffix)] + "y"
            return token[: -len(suffix)]
    return token


@dataclass(frozen=True)
class Tokenizer:
    """Configurable text tokenizer.

    Parameters
    ----------
    stopwords:
        Tokens dropped after normalization.  Pass ``frozenset()`` to keep
        everything.
    stem:
        If true, apply the light suffix stemmer to every token.
    """

    stopwords: frozenset[str] = field(default=frozenset())
    stem: bool = False

    def tokens(self, text: str) -> list[str]:
        """Return the normalized token sequence of ``text`` (with duplicates)."""
        if not text:
            return []
        raw = _TOKEN_RE.findall(str(text).lower())
        out: list[str] = []
        for token in raw:
            if token in self.stopwords:
                continue
            if self.stem:
                token = _light_stem(token)
            out.append(token)
        return out

    def terms(self, text: str) -> set[str]:
        """Return the distinct normalized terms of ``text``."""
        return set(self.tokens(text))

    def signature(self) -> str:
        """Deterministic identity of this configuration.

        ``repr(frozenset)`` ordering is not stable across processes, so the
        stop-word set serializes sorted.  Everything derived through a
        tokenizer (persisted index postings, cached selection results) must
        be keyed on this, since changing the tokenizer changes what
        "contains" means.
        """
        return json.dumps(
            {"stem": self.stem, "stopwords": sorted(self.stopwords)},
            sort_keys=True,
        )


#: Engine-wide default: no stemming, no stopping.  Keyword queries over
#: databases (e.g. "hanks terminal") match attribute values verbatim; the
#: experiments of the thesis rely on exact term matches.
DEFAULT_TOKENIZER = Tokenizer()


def tokenize(text: str) -> list[str]:
    """Tokenize ``text`` with the engine-wide default tokenizer."""
    return DEFAULT_TOKENIZER.tokens(text)
