"""DivQ: diversification of keyword-search results over structured data
(Chapter 4).

DivQ re-ranks the *query interpretations* of a keyword query — before any
results are materialized — to balance relevance and novelty (Eq. 4.4,
Alg. 4.1), and evaluates the outcome with the thesis' adapted metrics
α-nDCG-W (Eq. 4.5/4.6) and WS-recall (Eq. 4.7).
"""

from repro.divq.analysis import probability_ratios, query_ambiguity_entropy
from repro.divq.assessors import AssessorPool, simulate_assessments
from repro.divq.diversify import DiversificationResult, diversify
from repro.divq.metrics import (
    alpha_ndcg_w,
    overlap_penalty_exponent,
    subtopic_relevance,
    ws_recall,
)
from repro.divq.similarity import jaccard_similarity
from repro.divq.system import DivQ

__all__ = [
    "AssessorPool",
    "DivQ",
    "DiversificationResult",
    "alpha_ndcg_w",
    "diversify",
    "jaccard_similarity",
    "overlap_penalty_exponent",
    "probability_ratios",
    "query_ambiguity_entropy",
    "simulate_assessments",
    "subtopic_relevance",
    "ws_recall",
]
