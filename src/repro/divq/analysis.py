"""Query-ambiguity analysis (Sections 4.6.1 and 4.6.2 / Fig. 4.1).

Two diagnostics from Chapter 4:

* the entropy of the top-ranked interpretation probabilities, used to select
  ambiguous queries for the evaluation (high entropy = ambiguous),
* the probability ratio ``PR_i = P(Q_i | K) / sum_{j<i} P(Q_j | K)`` of
  Fig. 4.1, showing how fast interpretation probabilities fall with rank —
  the justification for pruning the assessment pool at top-25.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.probability import entropy, normalize


def query_ambiguity_entropy(probabilities: Sequence[float], k: int = 10) -> float:
    """Entropy of the top-``k`` normalized interpretation probabilities."""
    top = sorted(probabilities, reverse=True)[:k]
    if not top:
        return 0.0
    return entropy(normalize(list(top)))


def probability_ratios(probabilities: Sequence[float]) -> list[float]:
    """``PR_i`` per rank (1-based ranks; ``PR_1`` is undefined and skipped).

    Input may be unnormalized; output[i] corresponds to rank ``i + 2``.
    """
    probs = sorted(normalize(list(probabilities)), reverse=True)
    ratios: list[float] = []
    cumulative = 0.0
    for i, p in enumerate(probs):
        if i > 0:
            ratios.append(p / cumulative if cumulative > 0 else 0.0)
        cumulative += p
    return ratios


def max_and_average_ratio_profile(
    per_query_probabilities: Sequence[Sequence[float]], max_rank: int = 25
) -> tuple[list[float], list[float]]:
    """Fig. 4.1's series: max and average ``PR_i`` per rank over a query set.

    Returns ``(max_pr, avg_pr)`` lists indexed by rank - 2 (ranks 2..max_rank).
    """
    buckets: list[list[float]] = [[] for _ in range(max_rank - 1)]
    for probabilities in per_query_probabilities:
        ratios = probability_ratios(probabilities)
        for i, ratio in enumerate(ratios[: max_rank - 1]):
            buckets[i].append(ratio)
    max_pr: list[float] = []
    avg_pr: list[float] = []
    for bucket in buckets:
        if bucket:
            max_pr.append(max(bucket))
            avg_pr.append(sum(bucket) / len(bucket))
        else:
            max_pr.append(0.0)
            avg_pr.append(0.0)
    return max_pr, avg_pr
