"""Simulated relevance assessments (substitute for the user study of §4.6.2).

The original study had 16 participants judge, on a two-point Likert scale,
whether each query interpretation could reflect the informational need behind
the keyword query; graded relevance is the average over participants, and
inter-assessor agreement was low (kappa ~0.3) — a signature of genuinely
ambiguous queries.

We reproduce that data-generating process: a pool of simulated assessors,
each holding a plausibility threshold drawn at random, judges every
interpretation.  An interpretation's plausibility combines (a) whether it is
the workload's ground-truth intent (always judged relevant), and (b) its
model probability, temperature-flattened so secondary interpretations retain
non-zero support — producing graded, disagreement-bearing scores.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence


@dataclass
class AssessorPool:
    """A population of simulated assessors with heterogeneous leniency."""

    n_assessors: int = 12
    #: Flattening exponent applied to model probabilities: values < 1 boost
    #: the plausibility of less probable interpretations.
    temperature: float = 0.35
    #: Minimum plausibility of any interpretation that has results at all.
    floor: float = 0.05
    seed: int = 97

    def judge(
        self,
        plausibilities: Sequence[float],
        intended_index: int | None = None,
    ) -> list[float]:
        """Graded relevance per interpretation: mean of Bernoulli judgments."""
        rng = random.Random(self.seed)
        n = len(plausibilities)
        if n == 0:
            return []
        votes = [0] * n
        for _assessor in range(self.n_assessors):
            leniency = rng.uniform(0.6, 1.4)
            for i, plausibility in enumerate(plausibilities):
                p = min(1.0, plausibility * leniency)
                if intended_index is not None and i == intended_index:
                    p = max(p, 0.9)
                if rng.random() < p:
                    votes[i] += 1
        return [v / self.n_assessors for v in votes]

    def plausibility(self, probability: float, max_probability: float) -> float:
        """Map a model probability to an assessor-facing plausibility."""
        if max_probability <= 0.0:
            return self.floor
        ratio = probability / max_probability
        return max(self.floor, ratio**self.temperature)


def simulate_assessments(
    probabilities: Sequence[float],
    intended_index: int | None = None,
    pool: AssessorPool | None = None,
) -> list[float]:
    """Graded relevance scores for a ranked interpretation list.

    ``probabilities`` are the model's normalized ``P(Q | K)`` values aligned
    with the interpretation list; ``intended_index`` marks the ground-truth
    interpretation when known.
    """
    pool = pool or AssessorPool()
    max_p = max(probabilities) if probabilities else 0.0
    plausibilities = [pool.plausibility(p, max_p) for p in probabilities]
    return pool.judge(plausibilities, intended_index)


def agreement_kappa(judgments: Sequence[Sequence[bool]]) -> float:
    """Fleiss-style kappa over binary judgments (assessors x items).

    Used by tests to confirm the simulated pool exhibits the low agreement
    the thesis reports for ambiguous queries (§4.6.2).
    """
    if not judgments or not judgments[0]:
        return 1.0
    n_assessors = len(judgments)
    n_items = len(judgments[0])
    if n_assessors < 2:
        return 1.0
    p_item: list[float] = []
    positives = 0
    for item in range(n_items):
        yes = sum(1 for a in range(n_assessors) if judgments[a][item])
        positives += yes
        pairs = yes * (yes - 1) + (n_assessors - yes) * (n_assessors - yes - 1)
        p_item.append(pairs / (n_assessors * (n_assessors - 1)))
    p_bar = sum(p_item) / n_items
    p_yes = positives / (n_assessors * n_items)
    p_e = p_yes**2 + (1 - p_yes) ** 2
    if p_e >= 1.0:
        return 1.0
    return (p_bar - p_e) / (1 - p_e)
