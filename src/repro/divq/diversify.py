"""The DivQ diversification algorithm (Section 4.4.4–4.4.5, Alg. 4.1).

Input: the top-k query interpretations ranked by relevance ``P(Q | K)``.
Output: a re-ranked list balancing relevance against novelty:

    Score(Q) = lambda * P(Q | K)  -  (1 - lambda) * avgSim(Q, selected)

Relevance and similarity are normalized to equal means before the
λ-weighting (Section 4.4.4).  The greedy selection uses the upper-bound
pruning of Alg. 4.1: while scanning the relevance-sorted remainder, stop as
soon as ``best_score > lambda * P(L[j])`` — no later candidate can win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.core.interpretation import Interpretation
from repro.divq.similarity import jaccard_similarity

Q = TypeVar("Q")


@dataclass
class DiversificationResult:
    """Re-ranked interpretations plus instrumentation counters."""

    selected: list  # items in diversified order
    relevance: list[float]  # normalized relevance, aligned with ``selected``
    #: Number of pairwise similarity evaluations performed (the efficiency
    #: measure behind Alg. 4.1's upper-bound pruning).
    similarity_computations: int = 0
    #: Candidates inspected across all selection rounds.
    candidates_scanned: int = 0


def diversify(
    ranked: Sequence[tuple[Q, float]],
    k: int,
    tradeoff: float = 0.5,
    similarity: Callable[[Q, Q], float] | None = None,
) -> DiversificationResult:
    """Select the top-``k`` relevant-and-diverse items from ``ranked``.

    Parameters
    ----------
    ranked:
        ``(item, relevance)`` pairs sorted by decreasing relevance — the
        output of the relevance ranking step.
    k:
        Number of items to output (``r`` in Alg. 4.1).
    tradeoff:
        The λ of Eq. 4.4: 1.0 is pure relevance, 0.0 pure novelty.
    similarity:
        Pairwise similarity in [0, 1].  Defaults to Jaccard similarity of
        interpretation atoms (Eq. 4.3).
    """
    if not 0.0 <= tradeoff <= 1.0:
        raise ValueError("tradeoff (lambda) must be in [0, 1]")
    if k < 0:
        raise ValueError("k must be non-negative")
    sim = similarity or _default_similarity
    items = [item for item, _rel in ranked]
    relevance = [rel for _item, rel in ranked]
    if any(r < 0 for r in relevance):
        raise ValueError("relevance values must be non-negative")
    n = len(items)
    if n == 0 or k == 0:
        return DiversificationResult(selected=[], relevance=[])

    # Normalize relevance to mean 1 (Section 4.4.4).  Similarity is already
    # a mean-bounded quantity in [0, 1]; we scale it to mean 1 over a sample
    # of adjacent pairs so both factors weigh comparably.
    mean_rel = sum(relevance) / n
    rel_scale = 1.0 / mean_rel if mean_rel > 0 else 1.0
    norm_rel = [r * rel_scale for r in relevance]
    sample_sims = [sim(items[i], items[i + 1]) for i in range(min(n - 1, 32))]
    mean_sim = sum(sample_sims) / len(sample_sims) if sample_sims else 0.0
    sim_scale = 1.0 / mean_sim if mean_sim > 0 else 1.0

    remaining = list(range(n))  # indexes into items, relevance-ordered
    selected: list[int] = [remaining.pop(0)]  # most relevant first (Alg. 4.1)
    sim_count = 0
    scanned = 0
    lam = tradeoff
    while len(selected) < k and remaining:
        best_score = float("-inf")
        best_pos = 0
        for pos, idx in enumerate(remaining):
            scanned += 1
            # Upper bound: the best possible score of any later candidate is
            # lambda * norm_rel (similarity discount is non-negative).
            if best_score > lam * norm_rel[idx]:
                break
            avg_sim = 0.0
            for chosen in selected:
                avg_sim += sim(items[idx], items[chosen])
                sim_count += 1
            avg_sim = (avg_sim / len(selected)) * sim_scale
            score = lam * norm_rel[idx] - (1.0 - lam) * avg_sim
            if score > best_score:
                best_score = score
                best_pos = pos
        selected.append(remaining.pop(best_pos))
    return DiversificationResult(
        selected=[items[i] for i in selected],
        relevance=[relevance[i] for i in selected],
        similarity_computations=sim_count,
        candidates_scanned=scanned,
    )


def _default_similarity(first: Q, second: Q) -> float:
    if isinstance(first, Interpretation) and isinstance(second, Interpretation):
        return jaccard_similarity(first, second)
    raise TypeError(
        "provide a similarity callable for non-Interpretation items"
    )
