"""Evaluation metrics for diversified database search (Section 4.5).

The thesis adapts two document-retrieval metrics to structured results,
where an *information nugget* / *subtopic* is a primary key in a query
interpretation's result and nuggets carry graded relevance:

* **α-nDCG-W** (Section 4.5.1): the gain of the interpretation at rank k is
  its graded relevance discounted by ``(1 - alpha) ** r`` where ``r`` counts
  how often the interpretation's result keys were already returned by
  higher-ranked interpretations (Eqs. 4.5/4.6).
* **WS-recall** (Section 4.5.2): aggregated relevance of the subtopics
  covered by the top-k interpretations over the maximum achievable
  aggregated relevance (Eq. 4.7).

Both operate on ``(relevance, result_keys)`` pairs in presentation order, so
they are independent of how results were produced.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Mapping, Sequence

#: One ranked entry: (graded relevance of the interpretation, result keys).
RankedEntry = tuple[float, frozenset[Hashable]]


def overlap_penalty_exponent(
    result_keys: frozenset[Hashable], seen_counts: Counter
) -> int:
    """The exponent ``r`` of Eq. 4.6.

    For each primary key in the current result, count how many earlier
    interpretations returned it, and aggregate the counts.
    """
    return sum(seen_counts[key] for key in result_keys)


def _gain_vector(entries: Sequence[RankedEntry], alpha: float) -> list[float]:
    """Per-rank gains ``G[k] = relevance * (1 - alpha) ** r`` (Eq. 4.5)."""
    seen: Counter = Counter()
    gains: list[float] = []
    for relevance, keys in entries:
        r = overlap_penalty_exponent(keys, seen)
        gains.append(relevance * (1.0 - alpha) ** r)
        for key in keys:
            seen[key] += 1
    return gains


def _dcg(gains: Sequence[float]) -> list[float]:
    """Cumulative log2-discounted gain at every rank (1-based discount)."""
    out: list[float] = []
    total = 0.0
    for i, gain in enumerate(gains, start=1):
        total += gain / math.log2(i + 1)
        out.append(total)
    return out


def _ideal_dcg(entries: Sequence[RankedEntry], alpha: float, k: int) -> list[float]:
    """Greedy ideal ordering, the standard α-nDCG normalization.

    At each rank, pick the unused entry with the maximal penalized gain given
    the keys already returned.  (The thesis normalizes by the user-score
    ordering; the greedy ideal dominates it, keeping the metric in [0, 1].)
    """
    remaining = list(entries)
    seen: Counter = Counter()
    gains: list[float] = []
    for _rank in range(min(k, len(remaining))):
        best_idx = 0
        best_gain = float("-inf")
        for idx, (relevance, keys) in enumerate(remaining):
            gain = relevance * (1.0 - alpha) ** overlap_penalty_exponent(keys, seen)
            if gain > best_gain:
                best_gain = gain
                best_idx = idx
        relevance, keys = remaining.pop(best_idx)
        gains.append(best_gain)
        for key in keys:
            seen[key] += 1
    return _dcg(gains)


def alpha_ndcg_w(
    entries: Sequence[RankedEntry],
    alpha: float = 0.5,
    k: int | None = None,
    ideal_entries: Sequence[RankedEntry] | None = None,
) -> float:
    """α-nDCG-W at rank ``k`` (Section 4.5.1).

    ``entries`` is the system ranking; ``ideal_entries`` the pool to build
    the ideal ranking from (defaults to ``entries`` itself).  With
    ``alpha=0`` the metric degenerates to standard (graded) nDCG.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    if not entries:
        return 0.0
    k = len(entries) if k is None else min(k, len(entries))
    if k <= 0:
        return 0.0
    gains = _gain_vector(entries[:k], alpha)
    dcg = _dcg(gains)[k - 1]
    pool = ideal_entries if ideal_entries is not None else entries
    ideal = _ideal_dcg(pool, alpha, k)
    ideal_value = ideal[k - 1] if len(ideal) >= k else (ideal[-1] if ideal else 0.0)
    if ideal_value <= 0.0:
        return 0.0
    return min(dcg / ideal_value, 1.0)


def subtopic_relevance(
    entries: Sequence[RankedEntry],
) -> dict[Hashable, float]:
    """Graded relevance of each subtopic (primary key), Section 4.6.4.

    A key returned by several interpretations takes the *maximum* of their
    relevance scores.
    """
    relevance: dict[Hashable, float] = {}
    for rel, keys in entries:
        for key in keys:
            if rel > relevance.get(key, 0.0):
                relevance[key] = rel
    return relevance


def ws_recall(
    entries: Sequence[RankedEntry],
    k: int,
    universe: Mapping[Hashable, float] | None = None,
) -> float:
    """Weighted S-recall at rank ``k`` (Eq. 4.7).

    ``universe`` maps every relevant subtopic to its graded relevance; when
    omitted it is derived from ``entries`` via :func:`subtopic_relevance`.
    With binary relevance this equals classical S-recall.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    uni = dict(universe) if universe is not None else subtopic_relevance(entries)
    denominator = sum(v for v in uni.values() if v > 0.0)
    if denominator <= 0.0:
        return 0.0
    covered: set[Hashable] = set()
    for _rel, keys in entries[:k]:
        covered |= keys
    numerator = sum(uni.get(key, 0.0) for key in covered)
    return numerator / denominator


def s_recall(entries: Sequence[RankedEntry], k: int, universe: set | None = None) -> float:
    """Classical (unweighted) instance recall at ``k`` — for comparison."""
    binary_entries = [(1.0 if rel > 0 else 0.0, keys) for rel, keys in entries]
    uni = {key: 1.0 for key in universe} if universe is not None else None
    return ws_recall(binary_entries, k, uni)
