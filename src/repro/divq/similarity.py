"""Query-interpretation similarity (Def. 4.4.1).

Two interpretations of one keyword query are similar when they interpret the
keywords the same way: similarity is the Jaccard coefficient between their
sets of keyword interpretations (atoms).  Always in [0, 1]; 1 means identical
keyword bindings (possibly under different templates).
"""

from __future__ import annotations

from repro.core.interpretation import Atom, Interpretation


def jaccard_atoms(first: frozenset[Atom], second: frozenset[Atom]) -> float:
    """Jaccard coefficient of two atom sets (Eq. 4.3)."""
    if not first and not second:
        return 1.0
    union = first | second
    if not union:
        return 1.0
    return len(first & second) / len(union)


def jaccard_similarity(first: Interpretation, second: Interpretation) -> float:
    """Similarity of two query interpretations (Eq. 4.3)."""
    return jaccard_atoms(first.atoms, second.atoms)
