"""The DivQ system facade (Chapter 4).

Bundles the diversification pipeline — disambiguate, rank by the
co-occurrence-aware model, re-rank for novelty, optionally materialize — in
one object, mirroring the :class:`repro.freeq.system.FreeQ` facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.interpretation import Interpretation
from repro.core.keywords import KeywordQuery
from repro.core.probability import DivQModel
from repro.db.database import Database
from repro.divq.diversify import DiversificationResult, diversify
from repro.engine import QueryEngine


@dataclass
class DivQ:
    """Diversified keyword search over one database."""

    database: Database
    engine: QueryEngine = field(init=False)
    #: λ of Eq. 4.4 — 1.0 pure relevance, 0.0 pure novelty.
    tradeoff: float = 0.5
    #: Size of the relevance-ranked candidate pool handed to Alg. 4.1.
    pool_size: int = 25
    max_template_joins: int = 4
    check_nonempty: bool = True

    def __post_init__(self) -> None:
        self.engine = QueryEngine(
            self.database,
            max_template_joins=self.max_template_joins,
            model_factory=lambda e: DivQModel(
                e.index,
                e.catalog,
                database=self.database,
                check_nonempty=self.check_nonempty,
            ),
        )

    @property
    def generator(self):
        return self.engine.generator

    @property
    def model(self) -> DivQModel:
        return self.engine.model

    def ranked_interpretations(
        self, query: KeywordQuery
    ) -> list[tuple[Interpretation, float]]:
        """The relevance ranking (non-empty interpretations, pooled)."""
        ranked = self.engine.rank(query)
        return [(i, p) for i, p in ranked if p > 0.0][: self.pool_size]

    def search(self, query: KeywordQuery, k: int = 10) -> DiversificationResult:
        """Top-``k`` relevant-and-diverse interpretations (Alg. 4.1)."""
        return diversify(self.ranked_interpretations(query), k=k, tradeoff=self.tradeoff)

    def materialize(
        self, query: KeywordQuery, k: int = 10, limit_per_interpretation: int = 20
    ) -> list[tuple[Interpretation, list]]:
        """Diversified interpretations with their executed result rows."""
        result = self.search(query, k)
        return [
            (interp, interp.execute(self.database, limit=limit_per_interpretation))
            for interp in result.selected
        ]
