"""The unified query-engine subsystem.

One entry point — :class:`QueryEngine` — owns the paper's keyword-query
pipeline as explicit, pluggable stages (``SegmentStage → GenerateStage →
RankStage → ExecuteStage``), carries a per-query :class:`EngineContext`
(backend, config, stage timings, cache counters) and hosts the storage-layer
optimizations: persisted inverted-index postings (SQLite side tables) and the
cross-session :class:`ResultCache`.  See ``docs/architecture.md`` for the
pipeline diagram and the stage/backend plug-in guide.
"""

from repro.engine.cache import CacheStatistics, ResultCache
from repro.engine.context import EngineConfig, EngineContext
from repro.engine.engine import QueryEngine, resolve_generator_and_model
from repro.engine.semcache import (
    SemanticCacheStatistics,
    SemanticResultCache,
    WarmingReport,
    top_workload_queries,
    warm_engine,
)
from repro.engine.stages import (
    DEFAULT_STAGES,
    ExecuteStage,
    GenerateStage,
    RankStage,
    SegmentStage,
    Stage,
)

__all__ = [
    "CacheStatistics",
    "DEFAULT_STAGES",
    "EngineConfig",
    "EngineContext",
    "ExecuteStage",
    "GenerateStage",
    "QueryEngine",
    "RankStage",
    "ResultCache",
    "SegmentStage",
    "SemanticCacheStatistics",
    "SemanticResultCache",
    "Stage",
    "WarmingReport",
    "resolve_generator_and_model",
    "top_workload_queries",
    "warm_engine",
]
