"""Cross-session interpretation-result cache.

Interpretation execution is deterministic per (store content, structured
query, limit): the same candidate network over the same rows always returns
the same joining tuple networks.  :class:`ResultCache` exploits that with two
layers keyed on ``(StorageBackend.content_fingerprint(),
StructuredQuery.cache_key(), limit)``:

* a **process-level store** shared by every cache instance — repeated queries
  within one process (a benchmark suite, an experiment sweep) skip
  ``execute_path`` entirely, even across engine instances, and
* a **persistent layer** delegated to the backend's
  ``cached_result_get``/``cached_result_put`` hooks — the SQLite backend
  keeps payloads in a ``_repro_result_cache`` side table, so a *new process*
  (the next CLI run) starts warm.

Invalidation is structural: every mutation of a store changes its content
fingerprint, so stale entries are simply unreachable; the persistent layer
additionally purges entries of superseded fingerprints on write.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.db.table import Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.query import StructuredQuery
    from repro.db.backends.base import StorageBackend

#: One cached result: a list of joining networks of tuples.
Rows = list[tuple[Tuple, ...]]

#: Process-wide store shared by all ResultCache instances (LRU, bounded).
_PROCESS_CACHE: "OrderedDict[tuple[str, str, str], Rows]" = OrderedDict()

#: Guards the process-wide store: the query server fans concurrent queries
#: over one shared cache, and an unguarded ``move_to_end`` can race an LRU
#: eviction (KeyError) or corrupt the recency order.
_PROCESS_CACHE_LOCK = threading.RLock()

#: Default upper bound on process-level entries; small queries dominate, so
#: this is generous without risking unbounded growth in long sweeps.
#: Per-instance overrides (``ResultCache(capacity=...)``, fed by
#: ``EngineConfig.result_cache_size`` / the CLI's ``--cache-size``) bound the
#: shared store at write time instead.
_PROCESS_CACHE_CAPACITY = 4096


@dataclass
class CacheStatistics:
    """Hit/miss accounting, surfaced through ``EngineContext`` / --explain."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


@dataclass
class ResultCache:
    """Deterministic result reuse for one storage backend.

    ``persist`` defaults to the backend's persistence: durable stores write
    through to the backend's cached-result side storage, in-memory stores use
    only the process-level layer.  ``capacity`` bounds the process-level LRU
    (``None`` keeps the module default): the store itself is process-wide,
    so the bound is enforced on every write this instance makes — the
    smallest active capacity wins, which keeps memory predictable when
    several engines configure different sizes.
    """

    backend: "StorageBackend"
    persist: bool | None = None
    capacity: int | None = None
    statistics: CacheStatistics = field(default_factory=CacheStatistics)

    def __post_init__(self) -> None:
        if self.persist is None:
            self.persist = self.backend.is_persistent
        if self.capacity is not None and self.capacity < 1:
            raise ValueError("result-cache capacity must be positive")
        # The tokenizer is immutable for the backend's lifetime: digest it
        # once, not per lookup.
        self._tokenizer_digest = hashlib.sha256(
            self.backend.tokenizer.signature().encode("utf-8")
        ).hexdigest()[:8]
        if self.capacity is not None:
            # A mid-run capacity shrink (an engine reconfigured with a smaller
            # ``result_cache_size``) takes effect immediately and
            # deterministically — oldest entries first — rather than waiting
            # for this instance's next write.
            _enforce_capacity(self.capacity)

    # -- keys ---------------------------------------------------------------

    def key(self, query: "StructuredQuery", limit: int | None) -> tuple[str, str, str]:
        """(store identity, canonical query, limit) — the reuse precondition.

        Store identity couples the content fingerprint with the tokenizer
        signature: keyword selections resolve through the tokenizer, so the
        same rows under a different tokenizer are a *different* result set
        (the persisted-index layer guards on the same pair).
        """
        return (
            f"{self.backend.content_fingerprint()}-{self._tokenizer_digest}",
            query.cache_key(),
            "none" if limit is None else str(limit),
        )

    # -- access -------------------------------------------------------------

    def get(self, query: "StructuredQuery", limit: int | None) -> Rows | None:
        """Cached rows for (store content, query, limit), or None."""
        rows = self._fetch_entry(self.key(query, limit))
        if rows is None:
            rows = self._miss(query, limit)
        if rows is not None:
            self.statistics.hits += 1
            return list(rows)
        self.statistics.misses += 1
        return None

    def _fetch_entry(self, key: tuple[str, str, str]) -> Rows | None:
        """The rows stored under one exact cache key, or None.

        Checks the process layer first (promoting the entry), then the
        persistent layer (re-remembering a decoded payload).  No hit/miss
        accounting — :meth:`get` books that, and the semantic layer reads
        sibling entries through here without polluting the counters.
        """
        with _PROCESS_CACHE_LOCK:
            rows = _PROCESS_CACHE.get(key)
            if rows is not None:
                _PROCESS_CACHE.move_to_end(key)
        if rows is not None:
            return rows
        if self.persist:
            payload = self.backend.cached_result_get(key[0], f"{key[1]}#{key[2]}")
            if payload is not None:
                rows = _decode_rows(payload)
                if rows is not None:
                    _remember(key, rows, self.capacity)
                    return rows
        return None

    def _miss(self, query: "StructuredQuery", limit: int | None) -> Rows | None:
        """Last-chance hook before a miss is booked.

        The exact-match cache has nothing more to try; the semantic layer
        overrides this with a subsumption lookup.  A non-None return counts
        as a hit.
        """
        return None

    def put(self, query: "StructuredQuery", limit: int | None, rows: Rows) -> None:
        """Record freshly executed rows under the current fingerprint."""
        key = self.key(query, limit)
        _remember(key, list(rows), self.capacity)
        self.statistics.stores += 1
        if self.persist:
            payload = _encode_rows(rows)
            if payload is not None:
                self.backend.cached_result_put(key[0], f"{key[1]}#{key[2]}", payload)

    def fetch(self, query: "StructuredQuery", limit: int | None) -> Rows:
        """Get-or-execute: the one-call form of :meth:`get` + :meth:`put`."""
        rows = self.get(query, limit)
        if rows is None:
            rows = query.execute(self.backend, limit=limit)
            self.put(query, limit, rows)
            self.flush()
        return rows

    def flush(self) -> None:
        """Make buffered persistent puts durable (one commit, many puts).

        ``ExecuteStage`` calls this once per pipeline run; :meth:`fetch`
        flushes its own put.  Callers batching bare :meth:`put` calls flush
        when done.
        """
        if self.persist:
            self.backend.cached_result_flush()

    # -- maintenance --------------------------------------------------------

    @staticmethod
    def clear_process_cache() -> None:
        """Drop the process-level layer (tests use this to simulate a fresh
        process; persistent side tables are untouched)."""
        with _PROCESS_CACHE_LOCK:
            _PROCESS_CACHE.clear()


def _remember(
    key: tuple[str, str, str], rows: Rows, capacity: int | None = None
) -> None:
    with _PROCESS_CACHE_LOCK:
        _PROCESS_CACHE[key] = rows
        _PROCESS_CACHE.move_to_end(key)
        _enforce_capacity(capacity)


def _enforce_capacity(capacity: int | None) -> None:
    """Bound the shared LRU, evicting least-recently-used entries first.

    The eviction order is the ``OrderedDict``'s recency order, so repeated
    shrinks are deterministic regardless of which instance triggers them.
    """
    if capacity is None:
        capacity = _PROCESS_CACHE_CAPACITY
    with _PROCESS_CACHE_LOCK:
        while len(_PROCESS_CACHE) > capacity:
            _PROCESS_CACHE.popitem(last=False)


def _encode_rows(rows: Rows) -> str | None:
    """JSON payload for the persistent layer (None when not serializable).

    Values must survive a JSON round trip unchanged; anything beyond
    int/str/float/None (or a bool, which JSON would preserve but SQLite
    storage normalizes to int) skips persistence — the process layer still
    works.
    """

    def safe(value: object) -> bool:
        return value is None or (
            isinstance(value, (int, str, float)) and not isinstance(value, bool)
        )

    for network in rows:
        for tup in network:
            if not safe(tup.key) or not all(safe(v) for _n, v in tup.values):
                return None
    return json.dumps(
        [
            [[tup.table, tup.key, [list(pair) for pair in tup.values]] for tup in network]
            for network in rows
        ]
    )


def _decode_rows(payload: str) -> Rows | None:
    """Rows back from a persistent payload (None on corrupt data)."""
    try:
        decoded = json.loads(payload)
        return [
            tuple(
                Tuple(table, key, tuple((name, value) for name, value in values))
                for table, key, values in network
            )
            for network in decoded
        ]
    except (ValueError, TypeError):
        return None
