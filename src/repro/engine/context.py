"""Engine configuration and the per-query pipeline context.

:class:`EngineContext` is the single object a query carries through the
pipeline: each stage reads its inputs from the context and writes its outputs
(plus its wall-clock timing) back, so observability — per-stage timings,
cache hit/miss counters, rendered SQL — falls out of the data flow instead of
being bolted onto each caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.interpretation import Interpretation
from repro.core.keywords import KeywordQuery
from repro.core.topk import TopKResult, TopKStatistics

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.backends.base import StorageBackend


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs (generator/model knobs stay on their objects)."""

    #: Default number of results ``run()``/``search()`` return.
    k: int = 5
    #: Per-interpretation execution cap handed to the top-k executor.
    per_query_limit: int | None = 5_000
    #: Use the cross-session result cache for interpretation execution.
    cache_results: bool = True
    #: Capacity of the process-level result-cache LRU (entries).  The store
    #: is process-wide and shared across engines; each engine enforces its
    #: own configured bound when it writes (CLI: ``--cache-size``).
    result_cache_size: int = 4096
    #: Layer the subsumption-aware semantic cache over the result cache: a
    #: near-miss variant of a cached query (same join network, narrower key
    #: filters, same-or-lower limit, same ORDER BY shape) answers by
    #: filtering/truncating the cached rows in Python instead of executing
    #: (CLI: ``--semantic-cache``).  Rows are byte-identical either way.
    semantic_cache: bool = False
    #: Replay the N hottest queries of the dataset's recorded workload
    #: through the engine when it is built via ``for_dataset`` (0 = no
    #: warming; CLI: ``--warm-workload``).  Clamped to the cache capacity
    #: and replayed coldest-first, so warming never evicts hotter entries.
    warm_workload: int = 0
    #: How many top-ranked interpretations ``--explain`` renders as SQL.
    explain_sql_limit: int = 5
    #: Batch interpretation execution on backends that support it (one
    #: ``UNION ALL`` statement per batch instead of one statement per
    #: interpretation).  Results are identical either way.
    batch_execution: bool = True
    #: Interpretations per execution batch when batching is on.
    execution_batch_size: int = 16
    #: Consume execution batches as backend cursor streams: the top-k bound
    #: stops *fetching* rows instead of discarding materialized ones, and the
    #: first batch shrinks with observed selectivity.  Requires (and only
    #: applies on top of) ``batch_execution``; results are identical.
    streaming_execution: bool = True
    #: Let the backend's cost model drive physical planning: scatter-position
    #: choice by estimated post-filter cardinality, join reordering, batch
    #: eviction order and first-batch sizing, with estimated-vs-actual
    #: feedback calibrating the estimator.  Rows are byte-identical either
    #: way (every rewrite is parity-pinned); off restores the PR 5 planner
    #: bit-for-bit (CLI: ``--no-cost-planning``).
    cost_based_planning: bool = True
    #: Reader connections the storage backend may lease for concurrent
    #: read-only execution (CLI: ``--read-pool-size``).  ``None`` keeps the
    #: backend's default; ``1`` disables the pool and restores the single
    #: shared-connection path bit-for-bit.  Ignored by backends without
    #: ``supports_read_pool`` (memory).  Rows are byte-identical either way;
    #: only in-process read concurrency changes.
    read_pool_size: int | None = None


@dataclass
class EngineContext:
    """Everything one query accumulates while flowing through the stages."""

    backend: "StorageBackend"
    config: EngineConfig
    query_text: str
    k: int
    explain: bool = False

    # Stage outputs, in pipeline order.
    query: KeywordQuery | None = None
    interpretations: list[Interpretation] = field(default_factory=list)
    ranked: list[tuple[Interpretation, float]] = field(default_factory=list)
    results: list[TopKResult] = field(default_factory=list)

    # Observability.
    stage_timings: dict[str, float] = field(default_factory=dict)
    executor_statistics: TopKStatistics = field(default_factory=TopKStatistics)
    #: Rendered SQL of the top-ranked interpretations (``explain`` only).
    sql: list[str] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return self.executor_statistics.cache_hits

    @property
    def cache_misses(self) -> int:
        return self.executor_statistics.cache_misses

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_timings.values())

    def explain_lines(self) -> list[str]:
        """Human-readable explain block (the CLI's ``--explain`` body)."""
        lines = ["-- stage timings --"]
        for stage, seconds in self.stage_timings.items():
            lines.append(f"  {stage:<10} {seconds * 1000.0:8.2f} ms")
        lines.append(f"  {'total':<10} {self.total_seconds * 1000.0:8.2f} ms")
        stats = self.executor_statistics
        lines.append("-- execution --")
        lines.append(
            f"  interpretations: {len(self.ranked)} ranked, "
            f"{stats.interpretations_executed} executed"
            + (", stopped early" if stats.stopped_early else "")
        )
        lines.append(
            f"  sql statements: {stats.sql_statements}"
            + (
                f" ({stats.batches} batch(es), batch size "
                f"{self.config.execution_batch_size})"
                if stats.batches
                else ""
            )
        )
        if stats.first_batch_size is not None:
            lines.append(
                f"  streaming: first batch {stats.first_batch_size}, "
                f"{stats.rows_streamed} row(s) streamed, "
                f"{stats.rows_short_circuited} short-circuited"
            )
        if stats.attribution:
            contributions = ", ".join(
                f"#{rank}:{rows}" for rank, rows in sorted(stats.attribution.items())
            )
            lines.append(f"  rows per executed interpretation: {contributions}")
        if stats.estimated_rows:
            estimates = ", ".join(
                f"#{rank}:~{estimate:.1f} est"
                + (
                    f"/{stats.attribution[rank]} actual"
                    if rank in stats.attribution
                    else ""
                )
                for rank, estimate in sorted(stats.estimated_rows.items())
            )
            lines.append(f"  estimated vs actual rows: {estimates}")
        for rank, reason in sorted(stats.fallback_reasons.items()):
            lines.append(f"  batch fallback #{rank}: {reason}")
        for rank, label in sorted(stats.scatter_slots.items()):
            lines.append(f"  scatter slot #{rank}: {label}")
        for rank, label in sorted(stats.plan_choices.items()):
            lines.append(f"  plan #{rank}: {label}")
        if stats.shard_rows:
            per_shard = ", ".join(
                f"shard{shard}:{rows}"
                for shard, rows in sorted(stats.shard_rows.items())
            )
            lines.append(f"  rows per shard: {per_shard}")
        if stats.read_pool:
            pool = stats.read_pool
            lines.append(
                f"  read pool: {pool.get('leases', 0)} lease(s), "
                f"{pool.get('waits', 0)} wait(s), "
                f"peak {pool.get('peak_concurrency', 0)} concurrent "
                f"(size {pool.get('size', 0)})"
            )
        lines.append(f"  rows materialized: {stats.rows_materialized}")
        cache_line = (
            f"  result cache: {stats.cache_hits} hit(s), {stats.cache_misses} miss(es)"
        )
        if stats.semantic_cache:
            exact = stats.cache_hits - stats.cache_subsumption_hits
            cache_line += (
                f" ({exact} exact, {stats.cache_subsumption_hits} subsumption)"
            )
        lines.append(cache_line)
        if stats.cache_subsumption_hits:
            lines.append(
                f"  subsumption reuse: {stats.cache_rows_filtered} row(s) "
                f"filtered out, {stats.cache_rows_truncated} row(s) truncated"
            )
        if stats.warmed_queries:
            lines.append(
                f"  warmer: {stats.warmed_queries} workload query(ies) replayed on open"
            )
        if self.sql:
            lines.append("-- sql (top interpretations) --")
            for statement in self.sql:
                lines.append("  " + statement.replace("\n", "\n  "))
        return lines
