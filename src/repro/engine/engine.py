"""The unified query engine.

:class:`QueryEngine` owns the paper's full keyword-query pipeline —
``SegmentStage → GenerateStage → RankStage → ExecuteStage`` — over one
storage backend.  It is the single entry point the CLI, the experiment
harnesses, the construction sessions and the benchmarks build on, replacing
their hand-wired generator/model/executor assembly, and it is the seam the
storage-layer optimizations (persisted index postings, the cross-session
result cache) plug into.

Typical use::

    engine = QueryEngine.for_dataset("imdb")
    context = engine.run("hanks 2001", k=5)        # full pipeline
    for result in context.results: ...

    engine.rank(query)                             # ranking only
    engine.with_model(UniformModel())              # same space, other model
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.generator import GeneratorConfig, InterpretationGenerator
from repro.core.interpretation import Interpretation
from repro.core.keywords import KeywordQuery
from repro.core.probability import ATFModel, ProbabilityModel, TemplateCatalog
from repro.core.templates import QueryTemplate
from repro.core.topk import TopKResult
from repro.db.backends.base import StorageBackend
from repro.engine.cache import ResultCache
from repro.engine.context import EngineConfig, EngineContext
from repro.engine.semcache import SemanticResultCache, WarmingReport, warm_engine
from repro.engine.stages import DEFAULT_STAGES, Stage

if TYPE_CHECKING:  # pragma: no cover
    from pathlib import Path

#: Builds a model once the engine's generator/index/catalog exist — the hook
#: for models whose construction needs those parts (e.g. ``DivQModel``).
ModelFactory = Callable[["QueryEngine"], ProbabilityModel]


class QueryEngine:
    """The pipeline facade over one storage backend."""

    def __init__(
        self,
        backend: StorageBackend,
        *,
        model: ProbabilityModel | None = None,
        model_factory: ModelFactory | None = None,
        generator: InterpretationGenerator | None = None,
        templates: Sequence[QueryTemplate] | None = None,
        generator_config: GeneratorConfig | None = None,
        max_template_joins: int = 4,
        config: EngineConfig | None = None,
        stages: Sequence[Stage] | None = None,
        cache: ResultCache | None = None,
    ):
        if model is not None and model_factory is not None:
            raise ValueError("pass either model or model_factory, not both")
        self.backend = backend
        self.config = config or EngineConfig()
        if not self.config.cost_based_planning:
            # The gate lives on the backend (where planning happens); flipping
            # it restores the PR 5 planner — raw-row-count scatter choice,
            # default join order, spec-order batch eviction — bit-for-bit.
            backend.cost_planning = False
        # None keeps the backend's default pool size; backends without
        # supports_read_pool (memory) ignore the call entirely.
        backend.configure_read_pool(self.config.read_pool_size)
        self.index = backend.require_index()
        self.generator = generator or InterpretationGenerator(
            backend,
            templates=templates,
            config=generator_config or GeneratorConfig(),
            max_template_joins=max_template_joins,
        )
        self.catalog = TemplateCatalog(self.generator.templates)
        if model_factory is not None:
            self.model = model_factory(self)
        else:
            self.model = model or ATFModel(self.index, self.catalog)
        if cache is not None:
            self.cache: ResultCache | None = cache
        elif self.config.cache_results:
            cache_class = (
                SemanticResultCache if self.config.semantic_cache else ResultCache
            )
            self.cache = cache_class(backend, capacity=self.config.result_cache_size)
        else:
            self.cache = None
        #: The last workload-warming pass over this engine (None = never
        #: warmed); ``--explain`` surfaces it per query.
        self.warming: WarmingReport | None = None
        self.stages: list[Stage] = list(stages or DEFAULT_STAGES)
        #: Exponentially weighted rows-per-executed-interpretation over this
        #: engine's queries — the selectivity signal that sizes the first
        #: streaming batch (None until the first query that executed).
        self.observed_selectivity: float | None = None

    def record_selectivity(self, sample: float | None) -> None:
        """Fold one query's observed rows-per-interpretation into the EWMA.

        Called by ``ExecuteStage`` after every run that executed something.
        Recent queries dominate (alpha 0.5), so a workload shift re-adapts
        within a few queries; concurrent server queries may interleave
        updates, which at worst blurs the estimate — never correctness,
        since the estimate only sizes the first streaming batch.
        """
        if sample is None:
            return
        if self.observed_selectivity is None:
            self.observed_selectivity = sample
        else:
            self.observed_selectivity = 0.5 * self.observed_selectivity + 0.5 * sample

    # -- construction helpers ----------------------------------------------

    @classmethod
    def for_dataset(
        cls,
        dataset: str,
        *,
        backend: str | StorageBackend = "memory",
        db_path: "str | Path | None" = None,
        shards: int | None = None,
        **kwargs,
    ) -> "QueryEngine":
        """Engine over one bundled synthetic dataset (``imdb`` / ``lyrics``).

        ``backend``/``db_path``/``shards`` select the storage engine exactly
        like the dataset builders (``shards`` is the partition count of
        sharding backends); remaining keyword arguments starting with
        ``dataset_`` are forwarded to the builder (e.g. ``dataset_seed=19``),
        the rest go to :class:`QueryEngine`.
        """
        from repro.datasets.imdb import build_imdb
        from repro.datasets.lyrics import build_lyrics

        builders = {"imdb": build_imdb, "lyrics": build_lyrics}
        try:
            builder = builders[dataset]
        except KeyError:
            raise ValueError(
                f"unknown dataset {dataset!r} (use {' or '.join(sorted(builders))})"
            ) from None
        dataset_kwargs = {
            key[len("dataset_"):]: kwargs.pop(key)
            for key in list(kwargs)
            if key.startswith("dataset_")
        }
        db = builder(backend=backend, db_path=db_path, shards=shards, **dataset_kwargs)
        engine = cls(db, **kwargs)
        if engine.config.warm_workload > 0:
            engine.warm_from_workload(dataset)
        return engine

    def warm_from_workload(
        self, dataset: str, top_n: int | None = None, *, seed: int = 13
    ) -> "WarmingReport":
        """Warm the result cache from the dataset's recorded workload.

        Replays the ``top_n`` hottest queries of a synthetic Zipfian query
        log (:func:`repro.datasets.workload.recorded_query_log`) through the
        full pipeline — coldest first, clamped to the cache capacity, so
        warming never evicts hotter entries (see
        :func:`repro.engine.semcache.warm_engine`).  ``for_dataset`` calls
        this automatically when ``EngineConfig.warm_workload`` is set, which
        is how serving pools (``QueryServer``/``serve --tcp``) warm on
        construction.
        """
        from repro.datasets.workload import recorded_query_log

        if top_n is None:
            top_n = self.config.warm_workload
        log = recorded_query_log(self.backend, dataset, seed=seed)
        return warm_engine(self, log, top_n)

    def with_model(
        self, model: ProbabilityModel | ModelFactory
    ) -> "QueryEngine":
        """A sibling engine sharing this one's generator, backend and cache.

        The cheap way to sweep probability estimates over one interpretation
        space (Fig. 3.5's three models, the TF-IDF ablation): nothing is
        rebuilt, only the model differs.
        """
        factory = model if callable(model) and not _is_model(model) else None
        return QueryEngine(
            self.backend,
            model=None if factory else model,  # type: ignore[arg-type]
            model_factory=factory,
            generator=self.generator,
            config=self.config,
            stages=self.stages,
            cache=self.cache,
        )

    # -- the pipeline -------------------------------------------------------

    def run(
        self,
        query: str | KeywordQuery,
        k: int | None = None,
        explain: bool = False,
    ) -> EngineContext:
        """Send one keyword query through every stage; return the context."""
        context = EngineContext(
            backend=self.backend,
            config=self.config,
            query_text=str(query),
            k=self.config.k if k is None else k,
            explain=explain,
        )
        if isinstance(query, KeywordQuery):
            context.query = query
        for stage in self.stages:
            started = time.perf_counter()
            stage.run(self, context)
            context.stage_timings[stage.name] = time.perf_counter() - started
        return context

    # -- single-step conveniences -------------------------------------------

    def search(self, query: str | KeywordQuery, k: int | None = None) -> list[TopKResult]:
        """Top-k result rows (the full pipeline, results only)."""
        return self.run(query, k=k).results

    def rank(self, query: str | KeywordQuery) -> list[tuple[Interpretation, float]]:
        """The ranked interpretation space of ``query`` (no execution)."""
        if not isinstance(query, KeywordQuery):
            query = KeywordQuery.parse(query)
        from repro.core.probability import rank_interpretations

        return rank_interpretations(self.generator.interpretations(query), self.model)

    def interpretations(self, query: str | KeywordQuery) -> list[Interpretation]:
        """The (capped) interpretation space of ``query``."""
        if not isinstance(query, KeywordQuery):
            query = KeywordQuery.parse(query)
        return self.generator.interpretations(query)


def _is_model(candidate: object) -> bool:
    """Distinguish a model instance from a model factory in ``with_model``."""
    return hasattr(candidate, "interpretation_weight")


def resolve_generator_and_model(
    engine: "QueryEngine | InterpretationGenerator",
    model: ProbabilityModel | None = None,
) -> tuple[InterpretationGenerator, ProbabilityModel]:
    """``(generator, model)`` from an engine or a bare generator + model.

    The one unwrap shared by every pipeline consumer that predates the
    engine (``ConstructionSession``, ``Ranker``): passing a ``QueryEngine``
    supplies both parts (``model`` still overrides, for model sweeps over one
    interpretation space); the historical bare-generator spelling requires an
    explicit model.
    """
    if isinstance(engine, QueryEngine):
        return engine.generator, model if model is not None else engine.model
    if model is None:
        raise ValueError("model is required when passing a bare generator")
    return engine, model
