"""Subsumption-aware semantic result cache + workload-driven warming.

Both exact cache layers key on the canonical query, so a *near-miss* variant
of a hot query — the common case under Zipfian keyword traffic — pays full
execution.  :class:`SemanticResultCache` closes that gap: alongside every
cached entry it records the :class:`~repro.db.backends.sql.PathPlan` the
entry was executed under, and on an exact-key miss it searches those plans
for one that *subsumes* the new query's plan:

* same join network (``path`` and ``edges`` equal),
* same ORDER BY shape (``PathPlan.order_signature``; slot 0 flips between
  insertion order and key-``repr()`` order with its filter, so a
  filtered-vs-unfiltered base slot must not reuse the other's rows),
* key filters a superset (or equal, or absent) at every position, and
* enough cached rows to be *complete* for the new request's LIMIT.

A subsuming entry answers in Python — drop the networks the new query's
tighter key filters exclude (exactly ``PathPlan.keeps`` semantics), truncate
to the new limit — touching zero backend statements.  Because the order
signatures match, filtering preserves the exact row order uncached execution
would produce; the parity suite pins byte-identical rows across backends.

Plan metadata persists beside the cached rows (a ``...#plan`` sibling key in
the backend's result-cache side table), so subsumption survives process
restarts on persistent stores.

The module also hosts the **workload warmer**: given a recorded query log
(see :func:`repro.datasets.workload.recorded_query_log`), it replays the
top-N hottest queries through the engine on open — *coldest first*, so the
LRU recency order protects the hottest entries if warming overflows the
configured capacity, and N is clamped to that capacity so warming can never
evict hotter entries than it adds.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.db.backends.sql import PathPlan, plan_path
from repro.db.schema import ForeignKey
from repro.engine.cache import (
    _PROCESS_CACHE_CAPACITY,
    _remember,
    ResultCache,
    Rows,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.query import StructuredQuery
    from repro.engine.engine import QueryEngine

#: Plan metadata persists under ``<cache_key>#<limit>#plan`` — right beside
#: the rows entry ``<cache_key>#<limit>``.  The suffix is unambiguous: the
#: limit segment is ``none`` or digits, so it never contains ``#``.
PLAN_KEY_SUFFIX = "#plan"


@dataclass
class SemanticCacheStatistics:
    """Subsumption accounting, surfaced through ``--explain``.

    Exact hits and misses stay on the base ``CacheStatistics``; a
    subsumption hit is counted in *both* ``CacheStatistics.hits`` (it is a
    hit — no execution happened) and ``subsumption_hits`` here, so
    ``hits - subsumption_hits`` is the exact-hit count.
    """

    subsumption_hits: int = 0
    #: Rows a subsuming entry held that the narrower query filtered out.
    rows_filtered: int = 0
    #: Rows surviving the filter that the new, lower LIMIT truncated.
    rows_truncated: int = 0
    #: Plan metadata entries recorded (puts + derived answers).
    plans_recorded: int = 0


@dataclass(frozen=True)
class CachedPlanEntry:
    """One cached entry's plan metadata, as the subsumption catalog holds it."""

    #: The persistent rows key, ``<cache_key>#<limit>`` (catalog identity).
    entry_key: str
    cache_key: str
    limit: int | None
    plan: PathPlan


@dataclass
class SemanticResultCache(ResultCache):
    """A :class:`ResultCache` that answers near-misses by plan subsumption.

    Drop-in compatible: exact gets/puts behave identically (same keys, same
    persistence, same statistics), and every subsumption answer is also
    remembered in the process layer under the new query's exact key, so
    repeats of the variant are plain exact hits.  The plan catalog is
    per-instance and lazily hydrated from the backend's persisted metadata
    (``cached_result_scan``) per store fingerprint.
    """

    semantic_statistics: SemanticCacheStatistics = field(
        default_factory=SemanticCacheStatistics
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        #: store key -> entry key -> plan metadata.
        self._catalog: dict[str, dict[str, CachedPlanEntry]] = {}
        self._catalog_loaded: set[str] = set()
        self._catalog_lock = threading.RLock()

    # -- recording ----------------------------------------------------------

    def put(self, query: "StructuredQuery", limit: int | None, rows: Rows) -> None:
        super().put(query, limit, rows)
        plan = self._plan_for(query, limit)
        if plan is not None:
            self._record_plan(self.key(query, limit), plan, persist=True)

    def _plan_for(self, query: "StructuredQuery", limit: int | None) -> PathPlan | None:
        """The plan ``query`` executes under, or None (provably empty, or the
        backend cannot plan it — the cache must never break execution)."""
        try:
            path, edges, selections = query.path_spec()
            return self.backend.plan_path_spec(path, edges, selections, limit)
        except Exception:
            return None

    def _record_plan(
        self, key: tuple[str, str, str], plan: PathPlan, *, persist: bool
    ) -> None:
        store_key, cache_key, limit_str = key
        entry = CachedPlanEntry(
            entry_key=f"{cache_key}#{limit_str}",
            cache_key=cache_key,
            limit=None if limit_str == "none" else int(limit_str),
            plan=plan,
        )
        self._load_catalog(store_key)
        with self._catalog_lock:
            self._catalog.setdefault(store_key, {})[entry.entry_key] = entry
        self.semantic_statistics.plans_recorded += 1
        if persist and self.persist:
            payload = _encode_plan(plan)
            if payload is not None:
                self.backend.cached_result_put(
                    store_key, entry.entry_key + PLAN_KEY_SUFFIX, payload
                )

    def _load_catalog(self, store_key: str) -> None:
        """Hydrate one store's catalog from persisted plan metadata, once."""
        with self._catalog_lock:
            if store_key in self._catalog_loaded:
                return
            self._catalog_loaded.add(store_key)
            entries = self._catalog.setdefault(store_key, {})
        if not self.persist:
            return
        scanned = self.backend.cached_result_scan(store_key, "%" + PLAN_KEY_SUFFIX)
        for stored_key, payload in scanned:
            entry = _decode_plan_entry(stored_key, payload)
            if entry is not None:
                with self._catalog_lock:
                    entries.setdefault(entry.entry_key, entry)

    # -- answering ----------------------------------------------------------

    def _miss(self, query: "StructuredQuery", limit: int | None) -> Rows | None:
        """Exact key missed: try to answer from a subsuming cached entry."""
        new_plan = self._plan_for(query, limit)
        if new_plan is None:
            # Provably empty (costs no SQL anyway) or unplannable: a normal
            # miss keeps behavior and counters unchanged.
            return None
        key = self.key(query, limit)
        store_key = key[0]
        own_entry_key = f"{key[1]}#{key[2]}"
        self._load_catalog(store_key)
        with self._catalog_lock:
            candidates = sorted(
                self._catalog.get(store_key, {}).values(),
                key=lambda entry: entry.entry_key,
            )
        for entry in candidates:
            if entry.entry_key == own_entry_key:
                continue  # our own (missed) key cannot answer us
            answered = self._answer_from(entry, new_plan, limit, store_key)
            if answered is not None:
                # The derived rows are the exact answer for (query, limit):
                # remember them process-side (no duplicate persisted payload)
                # so repeats — and further narrowings — hit directly.
                _remember(key, answered, self.capacity)
                self._record_plan(key, new_plan, persist=False)
                return answered
        return None

    def _answer_from(
        self,
        entry: CachedPlanEntry,
        new_plan: PathPlan,
        limit: int | None,
        store_key: str,
    ) -> Rows | None:
        """Rows for ``new_plan``/``limit`` out of one cached entry, or None."""
        residual = entry.plan.residual_filters(new_plan)
        if residual is None:
            return None
        rows = self._fetch_entry((store_key, entry.cache_key, _limit_str(entry.limit)))
        if rows is None:
            return None  # evicted from both layers; catalog entry is stale
        # Completeness: a cached entry that filled its own LIMIT may have
        # been truncated, so rows the narrower query needs could be missing
        # past the cut.  A pure prefix request (no residual, lower-or-equal
        # limit) is the one safe use of a truncated entry.
        complete = entry.limit is None or len(rows) < entry.limit
        if residual:
            if not complete:
                return None
            kept = [
                network
                for network in rows
                if all(
                    network[position].key in keys
                    for position, keys in residual.items()
                )
            ]
        else:
            if not complete and (limit is None or entry.limit is None or limit > entry.limit):
                return None
            kept = list(rows)
        answered = kept if limit is None else kept[:limit]
        self.semantic_statistics.subsumption_hits += 1
        self.semantic_statistics.rows_filtered += len(rows) - len(kept)
        self.semantic_statistics.rows_truncated += len(kept) - len(answered)
        return answered


def _limit_str(limit: int | None) -> str:
    return "none" if limit is None else str(limit)


# -- plan metadata (de)serialization ------------------------------------------


def _encode_plan(plan: PathPlan) -> str | None:
    """JSON payload of one plan's subsumption-relevant parts (None when the
    filter keys would not survive a JSON round trip — same rule as row
    payloads; the in-process catalog still works)."""

    def safe(value: object) -> bool:
        return value is None or (
            isinstance(value, (int, str, float)) and not isinstance(value, bool)
        )

    filters = plan.key_filter_map()
    for keys in filters.values():
        if not all(safe(key) for key in keys):
            return None
    return json.dumps(
        {
            "path": list(plan.path),
            "edges": [
                [e.source, e.source_attr, e.target, e.target_attr]
                for e in plan.edges
            ],
            "filters": {
                str(position): sorted(keys, key=repr)
                for position, keys in filters.items()
            },
        },
        sort_keys=True,
    )


def _decode_plan_entry(stored_key: str, payload: str) -> CachedPlanEntry | None:
    """One catalog entry back from its persisted form (None on corrupt data)."""
    if not stored_key.endswith(PLAN_KEY_SUFFIX):
        return None
    entry_key = stored_key[: -len(PLAN_KEY_SUFFIX)]
    try:
        cache_key, limit_str = entry_key.rsplit("#", 1)
        limit = None if limit_str == "none" else int(limit_str)
        decoded = json.loads(payload)
        plan = plan_path(
            tuple(decoded["path"]),
            tuple(ForeignKey(*edge) for edge in decoded["edges"]),
            {int(position): set(keys) for position, keys in decoded["filters"].items()},
            limit,
        )
    except (ValueError, TypeError, KeyError):
        return None
    return CachedPlanEntry(
        entry_key=entry_key, cache_key=cache_key, limit=limit, plan=plan
    )


# -- workload-driven warming ---------------------------------------------------


@dataclass(frozen=True)
class WarmingReport:
    """What one :func:`warm_engine` pass did (surfaced by ``--explain``)."""

    #: Distinct queries replayed through the engine.
    queries_replayed: int
    #: Cache entries the replays stored (several interpretations per query).
    entries_stored: int
    #: The cache capacity the replay count was clamped against.
    capacity: int
    #: Events in the recorded log the top-N was ranked over.
    log_events: int
    #: Distinct query texts in the log.
    distinct_queries: int


def top_workload_queries(log: Iterable[str], n: int) -> list[str]:
    """The ``n`` hottest query texts of a recorded log, hottest first.

    Frequency-ranked; ties break by first appearance in the log, so the
    result is deterministic for a deterministic log.
    """
    counts: dict[str, int] = {}
    first_seen: dict[str, int] = {}
    for position, text in enumerate(log):
        counts[text] = counts.get(text, 0) + 1
        first_seen.setdefault(text, position)
    ranked = sorted(counts, key=lambda text: (-counts[text], first_seen[text]))
    return ranked[: max(0, n)]


def warm_engine(
    engine: "QueryEngine", log: Sequence[str], top_n: int
) -> WarmingReport:
    """Replay the log's top-``top_n`` queries through ``engine``.

    Sized against the cache capacity (``top_n`` is clamped to it) and
    replayed **coldest first**: the hottest query runs last and is therefore
    the most recent LRU entry, so if the replayed entries overflow the
    capacity the evictions hit the coldest warmed entries — warming never
    evicts a hotter entry in favor of a colder one.  The report lands on
    ``engine.warming`` for ``--explain``.
    """
    log = [str(text) for text in log]
    cache = engine.cache
    capacity = (
        cache.capacity
        if cache is not None and cache.capacity is not None
        else _PROCESS_CACHE_CAPACITY
    )
    hottest_first = (
        top_workload_queries(log, min(top_n, capacity)) if cache is not None else []
    )
    stores_before = cache.statistics.stores if cache is not None else 0
    for text in reversed(hottest_first):
        engine.run(text)
    report = WarmingReport(
        queries_replayed=len(hottest_first),
        entries_stored=(cache.statistics.stores if cache is not None else 0)
        - stores_before,
        capacity=capacity,
        log_events=len(log),
        distinct_queries=len(set(log)),
    )
    engine.warming = report
    return report
