"""The pipeline stages of the query engine.

The paper's keyword-query flow decomposes into four explicit steps —
segmentation, interpretation generation, probabilistic ranking, top-k
execution — each a :class:`Stage` here.  Stages are stateless objects
operating on an :class:`~repro.engine.context.EngineContext`; the engine
times every ``run`` call, so a custom stage (a query rewriter, a
result post-processor, a different ranker) plugs in by implementing the same
two-member surface and being handed to ``QueryEngine(stages=[...])``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.keywords import KeywordQuery
from repro.core.probability import rank_interpretations
from repro.core.topk import TopKExecutor

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import EngineContext
    from repro.engine.engine import QueryEngine


@runtime_checkable
class Stage(Protocol):
    """One pipeline step: reads/writes the context, never returns data."""

    name: str

    def run(self, engine: "QueryEngine", context: "EngineContext") -> None: ...


class SegmentStage:
    """Keyword segmentation: raw query text -> :class:`KeywordQuery`.

    Respects a pre-parsed query already on the context, so callers holding a
    :class:`KeywordQuery` (the construction session, the workloads) skip
    re-parsing.
    """

    name = "segment"

    def run(self, engine: "QueryEngine", context: "EngineContext") -> None:
        if context.query is None:
            context.query = KeywordQuery.parse(context.query_text)


class GenerateStage:
    """Interpretation-space enumeration (Def. 3.5.5) via the generator."""

    name = "generate"

    def run(self, engine: "QueryEngine", context: "EngineContext") -> None:
        assert context.query is not None, "SegmentStage must run first"
        context.interpretations = engine.generator.interpretations(context.query)


class RankStage:
    """Probabilistic ranking by the engine's model (Eq. 3.5)."""

    name = "rank"

    def run(self, engine: "QueryEngine", context: "EngineContext") -> None:
        context.ranked = rank_interpretations(context.interpretations, engine.model)


class ExecuteStage:
    """TA-style top-k execution, optionally through the result cache.

    On backends with native batching support (SQLite), cache-missing
    interpretations execute in ``UNION ALL`` batches — typically one SQL
    statement for the whole query — invisibly to every caller; other backends
    keep the sequential one-statement-per-interpretation path.  With
    streaming on (the default), batches are consumed as backend cursor
    streams: the TA bound stops fetching instead of discarding materialized
    rows, and the engine's observed selectivity shrinks the first batch on
    later queries.  Rows are identical under every strategy.
    """

    name = "execute"

    def run(self, engine: "QueryEngine", context: "EngineContext") -> None:
        batchable = (
            context.config.batch_execution
            and context.backend.supports_batched_execution
        )
        streaming = batchable and context.config.streaming_execution
        executor = TopKExecutor(
            context.backend,
            per_query_limit=context.config.per_query_limit,
            cache=engine.cache,
            batch_size=context.config.execution_batch_size if batchable else None,
            streaming=streaming,
            expected_rows_per_interpretation=(
                engine.observed_selectivity if streaming else None
            ),
        )
        pool_before = context.backend.read_pool_stats()
        context.results = executor.execute(context.ranked, k=context.k)
        context.executor_statistics = executor.statistics
        pool_after = context.backend.read_pool_stats()
        if pool_after is not None:
            # leases/waits delta-sampled around this execution (concurrent
            # queries on one backend may blur attribution — never totals);
            # peak/size are backend-lifetime values.
            before = pool_before or {}
            context.executor_statistics.read_pool = {
                "size": pool_after["size"],
                "leases": pool_after["leases"] - before.get("leases", 0),
                "waits": pool_after["waits"] - before.get("waits", 0),
                "peak_concurrency": pool_after["peak_concurrency"],
            }
        warming = getattr(engine, "warming", None)
        if warming is not None:
            context.executor_statistics.warmed_queries = warming.queries_replayed
        if streaming:
            engine.record_selectivity(executor.statistics.rows_per_interpretation())
        stats = executor.statistics
        for rank, actual in stats.attribution.items():
            # Estimated-vs-actual feedback: calibrate the backend's cost
            # model with every executed interpretation the planner estimated.
            estimate = stats.estimated_rows.get(rank)
            if estimate is not None:
                context.backend.observe_estimate(estimate, actual)
        if engine.cache is not None:
            engine.cache.flush()  # one durability point per run, not per put
        if context.explain:
            head = context.ranked[: context.config.explain_sql_limit]
            context.sql = [interp.to_structured_query().to_sql() for interp, _p in head]


#: The paper's pipeline, in order.
DEFAULT_STAGES: tuple[Stage, ...] = (
    SegmentStage(),
    GenerateStage(),
    RankStage(),
    ExecuteStage(),
)
