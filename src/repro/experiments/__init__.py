"""Experiment harnesses: one entry point per table/figure of the thesis.

Every harness returns plain data structures (rows/series) *and* can print a
report in the shape of the original table or figure caption.  The benchmark
suite under ``benchmarks/`` wraps these harnesses with pytest-benchmark; the
``examples/`` scripts call them directly.

Experiment-to-module map: see DESIGN.md ("Per-experiment index").
"""

from repro.experiments.reporting import format_table, summary_stats

__all__ = ["format_table", "summary_stats"]
