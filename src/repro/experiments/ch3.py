"""Chapter 3 experiments: incremental query construction (IQP).

Harnesses (one per table/figure of Section 3.8):

* :func:`fig_3_5`  — interaction cost under three probability estimates.
* :func:`fig_3_6`  — interaction cost: SQAK rank vs IQP rank vs construction.
* :func:`fig_3_7`  — usability study: task time by complexity category
  (also yields the Table 3.1 example-task rows).
* :func:`table_3_2` — greedy plan scalability vs database size.
* :func:`table_3_3` — greedy plan scalability vs keyword-query length.
* :func:`table_3_4` — plan quality: brute force vs greedy.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.core.probability import ATFModel, ProbabilityModel, TemplateCatalog
from repro.core.probability import UniformModel
from repro.baselines.sqak import SqakRanker
from repro.datasets.simulation import (
    generate_simulation,
    random_option_space,
    run_greedy_simulation,
)
from repro.datasets.workload import (
    WorkloadQuery,
    imdb_workload,
    lyrics_workload,
    train_catalog_from_workload,
)
from repro.engine import QueryEngine
from repro.experiments.reporting import format_table, summary_stats
from repro.iqp.brute_force import brute_force_plan
from repro.iqp.greedy_plan import greedy_plan
from repro.iqp.ranking import Ranker
from repro.iqp.session import ConstructionSession
from repro.user.oracle import SimulatedUser
from repro.user.study import StudyTimingModel


@dataclass
class Chapter3Setup:
    """Shared fixtures: the query engine, the workload and the three models."""

    dataset: str
    engine: QueryEngine
    workload: list[WorkloadQuery]
    models: dict[str, ProbabilityModel] = field(default_factory=dict)

    @property
    def database(self):
        return self.engine.backend

    @property
    def generator(self):
        return self.engine.generator


def build_setup(dataset: str = "imdb", n_queries: int = 30, seed: int = 7) -> Chapter3Setup:
    workload_fns = {"imdb": imdb_workload, "lyrics": lyrics_workload}
    if dataset not in workload_fns:
        raise ValueError(f"unknown dataset {dataset!r}")
    engine = QueryEngine.for_dataset(dataset, dataset_seed=seed)
    workload = workload_fns[dataset](engine.backend, n_queries=n_queries)
    log_catalog = TemplateCatalog(engine.generator.templates)
    train_catalog_from_workload(log_catalog, engine.generator.templates, workload)
    models: dict[str, ProbabilityModel] = {
        "baseline": UniformModel(),
        "atf_tequal": engine.model,  # ATF + uniform priors, the engine default
        "atf_tlog": ATFModel(engine.index, log_catalog),
    }
    return Chapter3Setup(
        dataset=dataset,
        engine=engine,
        workload=workload,
        models=models,
    )


def _construction_cost(
    setup: Chapter3Setup, item: WorkloadQuery, model: ProbabilityModel
) -> int:
    user = SimulatedUser(item.intended)
    session = ConstructionSession(item.query, setup.engine, model)
    result = session.run(user)
    return result.options_evaluated


# -- Fig. 3.5 ----------------------------------------------------------------


def fig_3_5(
    dataset: str = "imdb", n_queries: int = 30, setup: Chapter3Setup | None = None
) -> dict[str, list[int]]:
    """Per-query interaction cost for the three probability estimates."""
    setup = setup or build_setup(dataset, n_queries)
    costs: dict[str, list[int]] = {name: [] for name in setup.models}
    for item in setup.workload:
        for name, model in setup.models.items():
            costs[name].append(_construction_cost(setup, item, model))
    return costs


def fig_3_5_report(dataset: str = "imdb", n_queries: int = 30) -> str:
    costs = fig_3_5(dataset, n_queries)
    headers = ["estimate", "mean cost", "median", "p80", "max"]
    rows = []
    for name, values in costs.items():
        if not values:
            continue
        ordered = sorted(values)
        p80 = ordered[int(0.8 * (len(ordered) - 1))]
        rows.append(
            [name, sum(values) / len(values), statistics.median(values), p80, max(values)]
        )
    return (
        f"Fig. 3.5 ({dataset}): interaction cost of query construction\n"
        + format_table(headers, rows)
    )


# -- Fig. 3.6 ----------------------------------------------------------------


def fig_3_6(
    dataset: str = "imdb", n_queries: int = 30, setup: Chapter3Setup | None = None
) -> dict[str, list[int]]:
    """Interaction cost of SQAK ranking, IQP ranking and IQP construction.

    The cost of a ranking interface is the rank of the intended
    interpretation (the user scans the list); an absent interpretation costs
    the full list length.  Construction uses (ATF, Tequal), mirroring the
    no-query-log situation of Section 3.8.3.
    """
    setup = setup or build_setup(dataset, n_queries)
    model = setup.models["atf_tequal"]
    iqp_ranker = Ranker(setup.engine, model)
    sqak_ranker = SqakRanker(setup.generator, setup.engine.index)
    out: dict[str, list[int]] = {"rank_sqak": [], "rank_iqp": [], "construction_iqp": []}
    for item in setup.workload:
        iqp_list = iqp_ranker.rank(item.query)
        space_size = max(len(iqp_list), 1)
        iqp_rank = iqp_ranker.rank_of(item.query, item.intended, iqp_list)
        sqak_rank = sqak_ranker.rank_of(item.query, item.intended)
        out["rank_iqp"].append(iqp_rank if iqp_rank is not None else space_size)
        out["rank_sqak"].append(sqak_rank if sqak_rank is not None else space_size)
        out["construction_iqp"].append(
            _construction_cost(setup, item, model)
        )
    return out


def fig_3_6_report(dataset: str = "imdb", n_queries: int = 30) -> str:
    data = fig_3_6(dataset, n_queries)
    headers = ["interface", "min", "q1", "median", "q3", "max", "mean"]
    rows = [[name, *summary_stats(values).row()] for name, values in data.items()]
    return (
        f"Fig. 3.6 ({dataset}): interaction cost boxplot, ranking vs construction\n"
        + format_table(headers, rows)
    )


# -- Fig. 3.7 / Table 3.1 ------------------------------------------------------


@dataclass(frozen=True)
class StudyTask:
    """One user-study task (a Table 3.1 row)."""

    query: str
    intended_rank: int  # C1
    construction_options: int  # C2
    space_size: int  # |I|
    category: int  # rank page (complexity category)


def study_tasks(
    dataset: str = "imdb",
    n_queries: int = 40,
    setup: Chapter3Setup | None = None,
    page_size: int = 5,
) -> list[StudyTask]:
    """Workload queries annotated with rank, construction cost and |I|.

    ``page_size`` defines one complexity category (the original study used
    20-query result pages; our scaled-down interpretation spaces use pages of
    5 so the task set still spans several categories — see EXPERIMENTS.md).
    """
    setup = setup or build_setup(dataset, n_queries)
    model = setup.models["atf_tequal"]
    ranker = Ranker(setup.engine, model)
    tasks: list[StudyTask] = []
    for item in setup.workload:
        ranked = ranker.rank(item.query)
        rank = ranker.rank_of(item.query, item.intended, ranked)
        if rank is None:
            continue
        cost = _construction_cost(setup, item, model)
        tasks.append(
            StudyTask(
                query=str(item.query),
                intended_rank=rank,
                construction_options=cost,
                space_size=len(ranked),
                category=(rank - 1) // page_size,
            )
        )
    return tasks


def fig_3_7(
    dataset: str = "imdb",
    n_queries: int = 40,
    timing: StudyTimingModel | None = None,
    setup: Chapter3Setup | None = None,
    page_size: int = 5,
) -> list[tuple[int, float, float]]:
    """Median task time per complexity category: (category, ranking, construction)."""
    timing = timing or StudyTimingModel()
    tasks = study_tasks(dataset, n_queries, setup, page_size=page_size)
    by_category: dict[int, list[StudyTask]] = {}
    for task in tasks:
        by_category.setdefault(task.category, []).append(task)
    rows: list[tuple[int, float, float]] = []
    for category in sorted(by_category):
        group = by_category[category]
        ranking_times = [timing.ranking_task(t.intended_rank).seconds for t in group]
        construction_times = [
            timing.construction_task(t.construction_options, shortlist_scanned=2).seconds
            for t in group
        ]
        rows.append(
            (
                category,
                statistics.median(ranking_times),
                statistics.median(construction_times),
            )
        )
    return rows


def fig_3_7_report(dataset: str = "imdb", n_queries: int = 40) -> str:
    setup = build_setup(dataset, n_queries)
    tasks = study_tasks(dataset, n_queries, setup)
    rows = fig_3_7(dataset, n_queries, setup=setup)
    hardest = sorted(tasks, key=lambda t: -t.intended_rank)[:5]
    table_3_1 = format_table(
        ["task (query)", "C1 rank", "C2 options", "|I|"],
        [[t.query, t.intended_rank, t.construction_options, t.space_size] for t in hardest],
    )
    table_3_7 = format_table(
        ["category", "ranking median (s)", "construction median (s)"],
        [list(r) for r in rows],
    )
    return (
        f"Table 3.1 ({dataset}): example tasks\n{table_3_1}\n\n"
        f"Fig. 3.7 ({dataset}): median task time by complexity category\n{table_3_7}"
    )


# -- Tables 3.2 / 3.3 -------------------------------------------------------------


def table_3_2(
    table_counts: tuple[int, ...] = (5, 10, 20, 40, 80),
    thresholds: tuple[int, ...] = (10, 20, 30),
    n_keywords: int = 3,
    repeats: int = 10,
    seed: int = 31,
) -> list[dict]:
    """Greedy algorithm vs database size (simulation of §3.8.5)."""
    rows: list[dict] = []
    for n_tables in table_counts:
        space = generate_simulation(n_tables=n_tables, n_keywords=n_keywords, seed=seed)
        row: dict = {"tables": n_tables, "queries": space.theoretical_queries}
        for threshold in thresholds:
            runs = [
                run_greedy_simulation(space, seed=seed + 100 + i, threshold=threshold)
                for i in range(repeats)
            ]
            row[f"steps@{threshold}"] = sum(r.steps for r in runs) / repeats
            row[f"ms_per_step@{threshold}"] = (
                1000.0 * sum(r.seconds_per_step for r in runs) / repeats
            )
        rows.append(row)
    return rows


def table_3_3(
    keyword_counts: tuple[int, ...] = (2, 4, 6, 8, 10),
    thresholds: tuple[int, ...] = (10, 20, 30),
    n_tables: int = 10,
    repeats: int = 10,
    seed: int = 37,
) -> list[dict]:
    """Greedy algorithm vs keyword-query length (simulation of §3.8.5)."""
    rows: list[dict] = []
    for n_keywords in keyword_counts:
        space = generate_simulation(n_tables=n_tables, n_keywords=n_keywords, seed=seed)
        row: dict = {"keywords": n_keywords, "queries": space.theoretical_queries}
        for threshold in thresholds:
            runs = [
                run_greedy_simulation(space, seed=seed + 100 + i, threshold=threshold)
                for i in range(repeats)
            ]
            row[f"steps@{threshold}"] = sum(r.steps for r in runs) / repeats
            row[f"ms_per_step@{threshold}"] = (
                1000.0 * sum(r.seconds_per_step for r in runs) / repeats
            )
        rows.append(row)
    return rows


def _simulation_report(rows: list[dict], first_column: str, caption: str) -> str:
    if not rows:
        return caption
    keys = [k for k in rows[0] if k not in (first_column, "queries")]
    headers = [first_column, "# queries", *keys]
    table_rows = [
        [row[first_column], row["queries"], *(row[k] for k in keys)] for row in rows
    ]
    return caption + "\n" + format_table(headers, table_rows)


def table_3_2_report(**kwargs) -> str:
    return _simulation_report(
        table_3_2(**kwargs), "tables", "Table 3.2: greedy algorithm vs database size"
    )


def table_3_3_report(**kwargs) -> str:
    return _simulation_report(
        table_3_3(**kwargs), "keywords", "Table 3.3: greedy algorithm vs # keywords"
    )


# -- Table 3.4 -------------------------------------------------------------------


def table_3_4(
    sizes: tuple[tuple[int, int], ...] = ((8, 4), (12, 6), (16, 8), (20, 10), (24, 12)),
    repeats: int = 10,
    seed: int = 61,
) -> list[dict]:
    """Expected plan cost: brute force vs greedy (Section 3.8.6)."""
    rows: list[dict] = []
    for n_queries, n_options in sizes:
        brute_costs: list[float] = []
        greedy_costs: list[float] = []
        for i in range(repeats):
            space = random_option_space(n_queries, n_options, seed=seed + i)
            _plan_b, cost_b = brute_force_plan(space)
            _plan_g, cost_g = greedy_plan(space)
            brute_costs.append(cost_b)
            greedy_costs.append(cost_g)
        rows.append(
            {
                "queries": n_queries,
                "options": n_options,
                "brute_force_cost": sum(brute_costs) / repeats,
                "greedy_cost": sum(greedy_costs) / repeats,
            }
        )
    return rows


def table_3_4_report(**kwargs) -> str:
    rows = table_3_4(**kwargs)
    return "Table 3.4: result quality of the two algorithms\n" + format_table(
        ["# queries", "# options", "brute force cost", "greedy cost"],
        [
            [r["queries"], r["options"], r["brute_force_cost"], r["greedy_cost"]]
            for r in rows
        ],
    )


def main() -> None:  # pragma: no cover - manual driver
    for dataset in ("imdb", "lyrics"):
        print(fig_3_5_report(dataset))
        print()
        print(fig_3_6_report(dataset))
        print()
    print(fig_3_7_report("imdb"))
    print()
    print(table_3_2_report())
    print()
    print(table_3_3_report())
    print()
    print(table_3_4_report())


if __name__ == "__main__":  # pragma: no cover
    main()
