"""Chapter 4 experiments: DivQ diversification.

Harnesses (one per table/figure of Section 4.6):

* :func:`table_4_1` — example top-k ranking vs diversification for one query.
* :func:`fig_4_1`   — max/average probability ratio ``PR_i`` per rank.
* :func:`fig_4_2`   — α-nDCG-W of ranking vs diversification (α sweep).
* :func:`fig_4_3`   — WS-recall of ranking vs diversification.
* :func:`fig_4_4`   — relevance vs novelty as λ varies.

Pipeline per query: build the interpretation space with the DivQ model,
rank by relevance, simulate graded assessments (the user-study substitute),
materialize result keys, then compare the relevance ranking against the
diversified re-ranking with the adapted metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.generator import GeneratorConfig
from repro.core.interpretation import Interpretation
from repro.core.probability import DivQModel
from repro.datasets.workload import WorkloadQuery, imdb_workload, lyrics_workload
from repro.divq.analysis import max_and_average_ratio_profile, query_ambiguity_entropy
from repro.divq.assessors import AssessorPool, simulate_assessments
from repro.divq.diversify import diversify
from repro.divq.metrics import alpha_ndcg_w, subtopic_relevance, ws_recall
from repro.engine import QueryEngine
from repro.experiments.reporting import format_table


@dataclass
class JudgedQuery:
    """One evaluation topic: interpretations, probabilities, judgments, results."""

    item: WorkloadQuery
    interpretations: list[Interpretation]
    probabilities: list[float]
    relevance: list[float]  # graded assessor scores, aligned
    result_keys: list[frozenset]  # per interpretation
    entropy: float

    def entries(self, order: list[int]) -> list[tuple[float, frozenset]]:
        return [(self.relevance[i], self.result_keys[i]) for i in order]


@dataclass
class Chapter4Setup:
    dataset: str
    engine: QueryEngine
    judged: list[JudgedQuery] = field(default_factory=list)

    @property
    def database(self):
        return self.engine.backend

    @property
    def generator(self):
        return self.engine.generator


def build_setup(
    dataset: str = "imdb",
    n_queries: int = 24,
    top_k_pool: int = 25,
    result_limit: int = 200,
    seed: int = 7,
) -> Chapter4Setup:
    """Prepare judged topics: the §4.6.1/§4.6.2 pipeline on synthetic data."""
    workload_fns = {"imdb": imdb_workload, "lyrics": lyrics_workload}
    if dataset not in workload_fns:
        raise ValueError(f"unknown dataset {dataset!r}")
    engine = QueryEngine.for_dataset(
        dataset,
        dataset_seed=seed,
        generator_config=GeneratorConfig(),
        model_factory=lambda e: DivQModel(
            e.index, e.catalog, database=e.backend, check_nonempty=True
        ),
    )
    db = engine.backend
    workload = workload_fns[dataset](db, n_queries=n_queries * 2)
    pool = AssessorPool()
    judged: list[JudgedQuery] = []
    for item in workload:
        ranked = engine.rank(item.query)
        # Keep only interpretations with non-empty results, pool top-k.
        ranked = [(i, p) for i, p in ranked if p > 0.0][:top_k_pool]
        if len(ranked) < 3:
            continue
        interps = [i for i, _p in ranked]
        probs = [p for _i, p in ranked]
        intended_index = next(
            (idx for idx, i in enumerate(interps) if item.intended.matches(i)), None
        )
        relevance = simulate_assessments(probs, intended_index, pool)
        keys = [frozenset(i.result_keys(db, limit=result_limit)) for i in interps]
        judged.append(
            JudgedQuery(
                item=item,
                interpretations=interps,
                probabilities=probs,
                relevance=relevance,
                result_keys=keys,
                entropy=query_ambiguity_entropy(probs),
            )
        )
    # Ambiguity-driven selection (§4.6.1): keep the highest-entropy topics.
    judged.sort(key=lambda j: -j.entropy)
    return Chapter4Setup(dataset=dataset, engine=engine, judged=judged[:n_queries])


def _diversified_order(judged: JudgedQuery, tradeoff: float, k: int) -> list[int]:
    """Indices (into the judged lists) in diversified order."""
    ranked_pairs = list(zip(range(len(judged.interpretations)), judged.probabilities))
    result = diversify(
        ranked_pairs,
        k=k,
        tradeoff=tradeoff,
        similarity=lambda a, b: _interp_similarity(judged, a, b),
    )
    return [idx for idx in result.selected]


def _interp_similarity(judged: JudgedQuery, a: int, b: int) -> float:
    from repro.divq.similarity import jaccard_similarity

    return jaccard_similarity(judged.interpretations[a], judged.interpretations[b])


# -- Table 4.1 ------------------------------------------------------------------


def table_4_1(setup: Chapter4Setup | None = None, k: int = 3) -> str:
    """Example: top-k by ranking vs by diversification for the most ambiguous query."""
    setup = setup or build_setup()
    if not setup.judged:
        return "Table 4.1: no ambiguous queries available"
    judged = setup.judged[0]
    rank_order = list(range(min(k, len(judged.interpretations))))
    div_order = _diversified_order(judged, tradeoff=0.1, k=k)
    rows = []
    for position in range(min(k, len(rank_order))):
        r = rank_order[position]
        d = div_order[position] if position < len(div_order) else r
        rows.append(
            [
                round(judged.relevance[r], 2),
                judged.interpretations[r].to_structured_query().algebra()[:48],
                round(judged.relevance[d], 2),
                judged.interpretations[d].to_structured_query().algebra()[:48],
            ]
        )
    return (
        f"Table 4.1: keyword query {str(judged.item.query)!r}\n"
        + format_table(["rel", "top-k ranking", "rel", "top-k diversification"], rows)
    )


# -- Fig. 4.1 -------------------------------------------------------------------


def fig_4_1(
    setup: Chapter4Setup | None = None, max_rank: int = 25
) -> tuple[list[float], list[float]]:
    """Max and average probability ratio ``PR_i`` per rank (ranks 2..max)."""
    setup = setup or build_setup()
    profiles = [j.probabilities for j in setup.judged]
    return max_and_average_ratio_profile(profiles, max_rank=max_rank)


def fig_4_1_report(dataset: str = "imdb", setup: Chapter4Setup | None = None) -> str:
    setup = setup or build_setup(dataset)
    max_pr, avg_pr = fig_4_1(setup)
    rows = [
        [rank + 2, max_pr[rank], avg_pr[rank]]
        for rank in range(len(max_pr))
        if max_pr[rank] > 0 or rank < 10
    ]
    return f"Fig. 4.1 ({setup.dataset}): probability ratio by rank\n" + format_table(
        ["rank", "max PR", "avg PR"], rows
    )


# -- Fig. 4.2 / 4.3 -----------------------------------------------------------------


def fig_4_2(
    setup: Chapter4Setup | None = None,
    alphas: tuple[float, ...] = (0.0, 0.5, 0.99),
    ks: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    tradeoff: float = 0.1,
) -> dict[tuple[float, str, str], list[float]]:
    """α-nDCG-W series.

    Returns ``{(alpha, system, kind): [value@k for k in ks]}`` with systems
    ``rank``/``div`` and query kinds ``sc``/``mc``, averaged over topics.
    """
    setup = setup or build_setup()
    out: dict[tuple[float, str, str], list[float]] = {}
    for alpha in alphas:
        for kind in ("sc", "mc"):
            topics = [j for j in setup.judged if j.item.kind == kind]
            if not topics:
                continue
            rank_series: list[float] = []
            div_series: list[float] = []
            for k in ks:
                rank_vals: list[float] = []
                div_vals: list[float] = []
                for judged in topics:
                    n = len(judged.interpretations)
                    rank_entries = judged.entries(list(range(n)))
                    div_entries = judged.entries(
                        _diversified_order(judged, tradeoff, min(k, n))
                    )
                    rank_vals.append(
                        alpha_ndcg_w(rank_entries, alpha, k, ideal_entries=rank_entries)
                    )
                    div_vals.append(
                        alpha_ndcg_w(div_entries, alpha, k, ideal_entries=rank_entries)
                    )
                rank_series.append(sum(rank_vals) / len(rank_vals))
                div_series.append(sum(div_vals) / len(div_vals))
            out[(alpha, "rank", kind)] = rank_series
            out[(alpha, "div", kind)] = div_series
    return out


def fig_4_3(
    setup: Chapter4Setup | None = None,
    ks: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    tradeoff: float = 0.1,
) -> dict[tuple[str, str], list[float]]:
    """WS-recall series: ``{(system, kind): [value@k]}``."""
    setup = setup or build_setup()
    out: dict[tuple[str, str], list[float]] = {}
    for kind in ("sc", "mc"):
        topics = [j for j in setup.judged if j.item.kind == kind]
        if not topics:
            continue
        rank_series: list[float] = []
        div_series: list[float] = []
        for k in ks:
            rank_vals: list[float] = []
            div_vals: list[float] = []
            for judged in topics:
                n = len(judged.interpretations)
                universe = subtopic_relevance(judged.entries(list(range(n))))
                rank_vals.append(ws_recall(judged.entries(list(range(n))), k, universe))
                div_order = _diversified_order(judged, tradeoff, min(k, n))
                div_vals.append(ws_recall(judged.entries(div_order), k, universe))
            rank_series.append(sum(rank_vals) / len(rank_vals))
            div_series.append(sum(div_vals) / len(div_vals))
        out[("rank", kind)] = rank_series
        out[("div", kind)] = div_series
    return out


def fig_4_2_report(dataset: str = "imdb", setup: Chapter4Setup | None = None) -> str:
    setup = setup or build_setup(dataset)
    data = fig_4_2(setup)
    rows = []
    for (alpha, system, kind), series in sorted(data.items()):
        rows.append([alpha, system, kind, *[round(v, 3) for v in series[:6]]])
    return f"Fig. 4.2 ({setup.dataset}): alpha-nDCG-W\n" + format_table(
        ["alpha", "system", "kind", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6"], rows
    )


def fig_4_3_report(dataset: str = "imdb", setup: Chapter4Setup | None = None) -> str:
    setup = setup or build_setup(dataset)
    data = fig_4_3(setup)
    rows = []
    for (system, kind), series in sorted(data.items()):
        rows.append([system, kind, *[round(v, 3) for v in series[:6]]])
    return f"Fig. 4.3 ({setup.dataset}): WS-recall\n" + format_table(
        ["system", "kind", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6"], rows
    )


# -- Fig. 4.4 -------------------------------------------------------------------


def fig_4_4(
    setup: Chapter4Setup | None = None,
    tradeoffs: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
    k: int = 10,
) -> list[tuple[float, float, float]]:
    """Relevance vs novelty as λ varies: (λ, mean relevance, mean novelty).

    Novelty at λ is measured as the fraction of *new* subtopics each selected
    interpretation contributes, averaged over the top-k and the topics.
    """
    setup = setup or build_setup()
    rows: list[tuple[float, float, float]] = []
    for tradeoff in tradeoffs:
        rel_vals: list[float] = []
        nov_vals: list[float] = []
        for judged in setup.judged:
            n = len(judged.interpretations)
            order = _diversified_order(judged, tradeoff, min(k, n))
            if not order:
                continue
            rel_vals.append(sum(judged.relevance[i] for i in order) / len(order))
            seen: set = set()
            novelty_parts: list[float] = []
            for i in order:
                keys = judged.result_keys[i]
                if keys:
                    novelty_parts.append(len(keys - seen) / len(keys))
                    seen |= keys
                else:
                    novelty_parts.append(0.0)
            nov_vals.append(sum(novelty_parts) / len(novelty_parts))
        if rel_vals:
            rows.append(
                (
                    tradeoff,
                    sum(rel_vals) / len(rel_vals),
                    sum(nov_vals) / len(nov_vals),
                )
            )
    return rows


def fig_4_4_report(dataset: str = "imdb", setup: Chapter4Setup | None = None) -> str:
    setup = setup or build_setup(dataset)
    rows = fig_4_4(setup)
    return f"Fig. 4.4 ({setup.dataset}): relevance vs novelty\n" + format_table(
        ["lambda", "mean relevance", "mean novelty"], [list(r) for r in rows]
    )


def main() -> None:  # pragma: no cover - manual driver
    for dataset in ("imdb", "lyrics"):
        setup = build_setup(dataset)
        print(table_4_1(setup))
        print()
        print(fig_4_1_report(dataset, setup))
        print()
        print(fig_4_2_report(dataset, setup))
        print()
        print(fig_4_3_report(dataset, setup))
        print()
        print(fig_4_4_report(dataset, setup))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
