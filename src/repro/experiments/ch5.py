"""Chapter 5 experiments: FreeQ on a very large database.

Harnesses (one per table/figure of Section 5.7):

* :func:`table_5_1` — example construction dialogue with ontology QCOs.
* :func:`fig_5_2`   — QCO efficiency and interaction cost vs schema size,
  plain (per-attribute) QCOs vs ontology-based QCOs.
* :func:`table_5_2` — complexity classes of the keyword workload.
* :func:`table_5_3` — ontologies of different granularity and their effect.
* :func:`fig_5_4`   — interaction cost over the full synthetic Freebase by
  query complexity, plain vs ontology QCOs.
* :func:`fig_5_5`   — response time per construction step vs schema size,
  plus best-first top-k materialization effort.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.core.generator import GeneratorConfig
from repro.core.hierarchy import QueryHierarchy
from repro.datasets.freebase import FreebaseInstance, build_freebase, freebase_workload
from repro.datasets.workload import WorkloadQuery
from repro.engine import QueryEngine
from repro.experiments.reporting import format_table
from repro.freeq.qco import OntologyQCOProvider, provider_efficiency
from repro.freeq.system import FreeQ
from repro.freeq.traversal import BestFirstExplorer
from repro.iqp.session import ConstructionSession
from repro.user.oracle import SimulatedUser

#: Generator settings for large flat schemas: admit many bindings per keyword
#: so ambiguity scales with the number of domains.
LARGE_SCHEMA_CONFIG = GeneratorConfig(max_atoms_per_keyword=96, max_interpretations=50_000)


@dataclass
class Chapter5Setup:
    """One schema-size point: database+ontology instance, engine, workload."""

    n_domains: int
    instance: FreebaseInstance
    engine: QueryEngine
    workload: list[WorkloadQuery] = field(default_factory=list)

    @property
    def generator(self):
        return self.engine.generator

    @property
    def model(self):
        return self.engine.model


def build_setup(
    n_domains: int = 20,
    n_queries: int = 12,
    seed: int = 23,
    rows_per_entity_table: int = 25,
    n_keywords: int = 2,
) -> Chapter5Setup:
    instance = build_freebase(
        seed=seed, n_domains=n_domains, rows_per_entity_table=rows_per_entity_table
    )
    engine = QueryEngine(
        instance.database, generator_config=LARGE_SCHEMA_CONFIG, max_template_joins=4
    )
    workload = freebase_workload(instance, n_queries=n_queries, n_keywords=n_keywords)
    return Chapter5Setup(
        n_domains=n_domains,
        instance=instance,
        engine=engine,
        workload=workload,
    )


def _run_plain(setup: Chapter5Setup, item: WorkloadQuery, stop_size: int = 1):
    user = SimulatedUser(item.intended)
    session = ConstructionSession(item.query, setup.engine, stop_size=stop_size)
    return session.run(user)


def _run_ontology(
    setup: Chapter5Setup, item: WorkloadQuery, stop_size: int = 1, level: int = 1
):
    user = SimulatedUser(item.intended)
    freeq = FreeQ.from_engine(
        setup.engine,
        setup.instance.ontology,
        qco_level=level,
        stop_size=stop_size,
    )
    return freeq.construct(item.query, user)


# -- Table 5.1 ---------------------------------------------------------------


def table_5_1(setup: Chapter5Setup | None = None) -> str:
    """An example construction dialogue using ontology-based QCOs."""
    setup = setup or build_setup(n_domains=10, n_queries=6)
    best: tuple[int, list[tuple[str, bool]], str] | None = None
    for item in setup.workload:
        result = _run_ontology(setup, item)
        if result.transcript and (best is None or len(result.transcript) > best[0]):
            best = (len(result.transcript), result.transcript, str(item.query))
    if best is None:
        return "Table 5.1: no dialogue recorded"
    _n, transcript, query = best
    rows = [[i + 1, text, "accept" if ok else "reject"] for i, (text, ok) in enumerate(transcript)]
    return f"Table 5.1: construction dialogue for {query!r}\n" + format_table(
        ["step", "query construction option", "answer"], rows
    )


# -- Fig. 5.2 ---------------------------------------------------------------


def first_step_efficiency(
    setup: Chapter5Setup, item: WorkloadQuery, provider=None
) -> float:
    """QCO-set efficiency at the first decision point of a construction."""
    hierarchy = QueryHierarchy(item.query, setup.generator, setup.model)
    # Expand at least one keyword level (level-0 nodes carry no atoms yet),
    # then keep the top level at the usual threshold.
    while hierarchy.can_expand() and (hierarchy.level < 1 or len(hierarchy) < 20):
        hierarchy.expand_once()
    if provider is None:
        options = hierarchy.frontier_atoms()
    else:
        options = provider(hierarchy)
    return provider_efficiency(hierarchy, options)


def fig_5_2(
    domain_counts: tuple[int, ...] = (2, 5, 10, 20),
    n_queries: int = 8,
    seed: int = 23,
) -> list[dict]:
    """QCO efficiency and interaction cost vs schema size."""
    rows: list[dict] = []
    for n_domains in domain_counts:
        setup = build_setup(n_domains=n_domains, n_queries=n_queries, seed=seed)
        provider = OntologyQCOProvider(setup.instance.ontology)
        plain_costs: list[int] = []
        onto_costs: list[int] = []
        plain_eff: list[float] = []
        onto_eff: list[float] = []
        for item in setup.workload:
            plain_costs.append(_run_plain(setup, item).options_evaluated)
            onto_costs.append(_run_ontology(setup, item).options_evaluated)
            plain_eff.append(first_step_efficiency(setup, item))
            onto_eff.append(first_step_efficiency(setup, item, provider))
        n = max(len(setup.workload), 1)
        rows.append(
            {
                "domains": n_domains,
                "tables": len(setup.instance.database.schema),
                "plain_cost": sum(plain_costs) / n,
                "onto_cost": sum(onto_costs) / n,
                "plain_efficiency": sum(plain_eff) / n,
                "onto_efficiency": sum(onto_eff) / n,
            }
        )
    return rows


def fig_5_2_report(**kwargs) -> str:
    rows = fig_5_2(**kwargs)
    return (
        "Fig. 5.2: QCO efficiency and interaction cost vs schema size\n"
        + format_table(
            ["domains", "tables", "plain cost", "onto cost", "plain eff", "onto eff"],
            [
                [
                    r["domains"],
                    r["tables"],
                    r["plain_cost"],
                    r["onto_cost"],
                    r["plain_efficiency"],
                    r["onto_efficiency"],
                ]
                for r in rows
            ],
        )
    )


# -- Table 5.2 ---------------------------------------------------------------


def table_5_2(setup: Chapter5Setup | None = None, n_queries: int = 10) -> list[dict]:
    """Complexity classes of the keyword workload: keywords and space size."""
    rows: list[dict] = []
    for n_keywords in (2, 3):
        setup_k = build_setup(
            n_domains=setup.n_domains if setup else 10,
            n_queries=n_queries,
            n_keywords=n_keywords,
        )
        sizes = [
            setup_k.generator.space_size(item.query) for item in setup_k.workload
        ]
        if not sizes:
            continue
        rows.append(
            {
                "keywords": n_keywords,
                "queries": len(sizes),
                "mean_space": sum(sizes) / len(sizes),
                "max_space": max(sizes),
            }
        )
    return rows


def table_5_2_report(**kwargs) -> str:
    rows = table_5_2(**kwargs)
    return "Table 5.2: complexity of keyword queries\n" + format_table(
        ["# keywords", "# queries", "mean |I|", "max |I|"],
        [[r["keywords"], r["queries"], r["mean_space"], r["max_space"]] for r in rows],
    )


# -- Table 5.3 ---------------------------------------------------------------


def table_5_3(
    n_domains: int = 10, n_queries: int = 8, seed: int = 23
) -> list[dict]:
    """Ontology granularity sweep: concepts per level and interaction cost."""
    setup = build_setup(n_domains=n_domains, n_queries=n_queries, seed=seed)
    ontology = setup.instance.ontology
    rows: list[dict] = []
    configs: list[tuple[str, int | None]] = [
        ("types (level 1)", 1),
        ("type/domain (level 2)", 2),
        ("no ontology (attributes)", None),
    ]
    for label, level in configs:
        costs: list[int] = []
        for item in setup.workload:
            if level is None:
                costs.append(_run_plain(setup, item).options_evaluated)
            else:
                costs.append(_run_ontology(setup, item, level=level).options_evaluated)
        n_concepts = (
            len(ontology.concepts_at_level(level)) if level is not None else 0
        )
        rows.append(
            {
                "ontology": label,
                "concepts": n_concepts,
                "mean_cost": sum(costs) / max(len(costs), 1),
            }
        )
    return rows


def table_5_3_report(**kwargs) -> str:
    rows = table_5_3(**kwargs)
    return "Table 5.3: ontologies of different size\n" + format_table(
        ["ontology", "# concepts", "mean interaction cost"],
        [[r["ontology"], r["concepts"], r["mean_cost"]] for r in rows],
    )


# -- Fig. 5.4 ---------------------------------------------------------------


def fig_5_4(
    n_domains: int = 20, n_queries: int = 8, seed: int = 23
) -> list[dict]:
    """Interaction cost over the full synthetic Freebase by query complexity."""
    rows: list[dict] = []
    for n_keywords in (2, 3):
        setup = build_setup(
            n_domains=n_domains, n_queries=n_queries, seed=seed, n_keywords=n_keywords
        )
        plain = [_run_plain(setup, item).options_evaluated for item in setup.workload]
        onto = [_run_ontology(setup, item).options_evaluated for item in setup.workload]
        if not plain:
            continue
        rows.append(
            {
                "keywords": n_keywords,
                "plain_cost": statistics.mean(plain),
                "onto_cost": statistics.mean(onto),
                "plain_max": max(plain),
                "onto_max": max(onto),
            }
        )
    return rows


def fig_5_4_report(**kwargs) -> str:
    rows = fig_5_4(**kwargs)
    return (
        "Fig. 5.4: interaction cost of query construction over Freebase\n"
        + format_table(
            ["# keywords", "plain mean", "onto mean", "plain max", "onto max"],
            [
                [r["keywords"], r["plain_cost"], r["onto_cost"], r["plain_max"], r["onto_max"]]
                for r in rows
            ],
        )
    )


# -- Fig. 5.5 ---------------------------------------------------------------


def fig_5_5(
    domain_counts: tuple[int, ...] = (2, 5, 10, 20),
    n_queries: int = 6,
    top_k: int = 10,
    seed: int = 23,
) -> list[dict]:
    """Response time per construction step and best-first top-k effort."""
    rows: list[dict] = []
    for n_domains in domain_counts:
        setup = build_setup(n_domains=n_domains, n_queries=n_queries, seed=seed)
        step_times: list[float] = []
        explorer_times: list[float] = []
        explorer_pops: list[int] = []
        for item in setup.workload:
            result = _run_ontology(setup, item)
            step_times.extend(result.option_times)
            explorer = BestFirstExplorer(item.query, setup.generator, setup.model)
            started = time.perf_counter()
            explorer.top_interpretations(top_k)
            explorer_times.append(time.perf_counter() - started)
            explorer_pops.append(explorer.pops)
        rows.append(
            {
                "domains": n_domains,
                "tables": len(setup.instance.database.schema),
                "ms_per_step": 1000.0 * statistics.mean(step_times) if step_times else 0.0,
                "topk_ms": 1000.0 * statistics.mean(explorer_times),
                "topk_pops": statistics.mean(explorer_pops),
            }
        )
    return rows


def fig_5_5_report(**kwargs) -> str:
    rows = fig_5_5(**kwargs)
    return (
        "Fig. 5.5: response time of query construction over Freebase\n"
        + format_table(
            ["domains", "tables", "ms/step", "top-k ms", "top-k pops"],
            [
                [r["domains"], r["tables"], r["ms_per_step"], r["topk_ms"], r["topk_pops"]]
                for r in rows
            ],
        )
    )


def main() -> None:  # pragma: no cover - manual driver
    print(table_5_1())
    print()
    print(fig_5_2_report())
    print()
    print(table_5_2_report())
    print()
    print(table_5_3_report())
    print()
    print(fig_5_4_report())
    print()
    print(fig_5_5_report())


if __name__ == "__main__":  # pragma: no cover
    main()
