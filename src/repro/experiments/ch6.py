"""Chapter 6 experiments: YAGO+F ontology-database matching.

Harnesses (one per table/figure of Sections 6.4–6.6):

* :func:`table_6_1` — distribution of categories in YAGO by instance count.
* :func:`table_6_2` — distribution of instances over ontology levels.
* :func:`fig_6_2`   — distribution of shared instances over Freebase tables.
* :func:`table_6_3` — categories and instances in the combined YAGO+F.
* :func:`fig_6_4`   — matching quality (precision/recall) vs overlap
  threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.yago_synth import YagoInstanceData, build_yago_and_tables
from repro.experiments.reporting import format_table
from repro.yagof.analysis import (
    category_size_distribution,
    instance_level_distribution,
    shared_instance_distribution,
    yagof_summary,
)
from repro.yagof.matching import MatchConfig, match_tables, threshold_sweep


@dataclass
class Chapter6Setup:
    data: YagoInstanceData


def build_setup(seed: int = 41, n_tables: int = 60) -> Chapter6Setup:
    return Chapter6Setup(data=build_yago_and_tables(seed=seed, n_tables=n_tables))


def table_6_1(setup: Chapter6Setup | None = None) -> list[tuple[str, int]]:
    setup = setup or build_setup()
    return category_size_distribution(setup.data.ontology)


def table_6_1_report(setup: Chapter6Setup | None = None) -> str:
    rows = table_6_1(setup)
    return "Table 6.1: distribution of categories in YAGO\n" + format_table(
        ["# instances", "# categories"], [list(r) for r in rows]
    )


def table_6_2(setup: Chapter6Setup | None = None) -> list[tuple[int, int, int]]:
    setup = setup or build_setup()
    return instance_level_distribution(setup.data.ontology)


def table_6_2_report(setup: Chapter6Setup | None = None) -> str:
    rows = table_6_2(setup)
    return "Table 6.2: distribution of instances in YAGO\n" + format_table(
        ["level", "# classes", "# direct instances"], [list(r) for r in rows]
    )


def fig_6_2(setup: Chapter6Setup | None = None) -> list[tuple[int, int]]:
    setup = setup or build_setup()
    shared = setup.data.ontology.all_instances()
    return shared_instance_distribution(setup.data.tables, shared_instances=shared)


def fig_6_2_report(setup: Chapter6Setup | None = None) -> str:
    rows = fig_6_2(setup)
    return (
        "Fig. 6.2: distribution of shared instances over Freebase tables\n"
        + format_table(["# tables containing instance", "# instances"], [list(r) for r in rows])
    )


def table_6_3(
    setup: Chapter6Setup | None = None, threshold: float = 0.5
) -> dict[str, int]:
    setup = setup or build_setup()
    matching = match_tables(
        setup.data.ontology, setup.data.tables, MatchConfig(threshold=threshold)
    )
    return yagof_summary(matching.to_hierarchy(setup.data.ontology))


def table_6_3_report(setup: Chapter6Setup | None = None) -> str:
    summary = table_6_3(setup)
    return "Table 6.3: categories and instances in YAGO+F\n" + format_table(
        ["statistic", "value"], [[k, v] for k, v in summary.items()]
    )


def fig_6_4(
    setup: Chapter6Setup | None = None,
    thresholds: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
) -> list[tuple[float, float, float]]:
    setup = setup or build_setup()
    return threshold_sweep(
        setup.data.ontology,
        setup.data.tables,
        setup.data.ground_truth,
        list(thresholds),
    )


def fig_6_4_report(setup: Chapter6Setup | None = None) -> str:
    rows = fig_6_4(setup)
    return "Fig. 6.4: matching quality vs overlap threshold\n" + format_table(
        ["threshold", "precision", "recall"], [list(r) for r in rows]
    )


def main() -> None:  # pragma: no cover - manual driver
    setup = build_setup()
    print(table_6_1_report(setup))
    print()
    print(table_6_2_report(setup))
    print()
    print(fig_6_2_report(setup))
    print()
    print(table_6_3_report(setup))
    print()
    print(fig_6_4_report(setup))


if __name__ == "__main__":  # pragma: no cover
    main()
