"""Report formatting shared by all experiment harnesses."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an ASCII table with right-padded columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


@dataclass(frozen=True)
class SummaryStats:
    """Boxplot-style summary of a sample (Fig. 3.6's rendering)."""

    n: int
    minimum: float
    lower_quartile: float
    median: float
    upper_quartile: float
    maximum: float
    mean: float

    def row(self) -> list[float]:
        return [
            self.minimum,
            self.lower_quartile,
            self.median,
            self.upper_quartile,
            self.maximum,
            self.mean,
        ]


def summary_stats(values: Sequence[float]) -> SummaryStats:
    if not values:
        return SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    quartiles = statistics.quantiles(ordered, n=4) if n >= 2 else [ordered[0]] * 3
    return SummaryStats(
        n=n,
        minimum=ordered[0],
        lower_quartile=quartiles[0],
        median=statistics.median(ordered),
        upper_quartile=quartiles[2],
        maximum=ordered[-1],
        mean=sum(ordered) / n,
    )
