"""Multi-seed robustness checks for the headline experimental shapes.

A reproduction's qualitative claims should not hinge on one lucky seed.
This harness re-runs the decisive comparisons across several dataset/
workload seeds and reports how often each shape holds:

* ATF-based estimates cost no more interactions than the uniform baseline
  (Fig. 3.5's claim),
* construction's worst case stays below ranking's (Fig. 3.6),
* diversification beats ranking on α-nDCG-W at α=0.99 on mc queries
  (Fig. 4.2),
* ontology QCOs cost no more than plain QCOs on the large schema (Fig. 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.probability import UniformModel
from repro.datasets.freebase import build_freebase, freebase_workload
from repro.datasets.workload import imdb_workload
from repro.engine import QueryEngine
from repro.experiments.reporting import format_table
from repro.freeq.system import FreeQ
from repro.iqp.ranking import Ranker
from repro.iqp.session import ConstructionSession
from repro.user.oracle import SimulatedUser


@dataclass
class ShapeCheck:
    """Outcome of one shape over several seeds."""

    name: str
    holds: list[bool] = field(default_factory=list)

    @property
    def fraction(self) -> float:
        return sum(self.holds) / len(self.holds) if self.holds else 0.0


def _imdb_stack(seed: int, n_queries: int):
    engine = QueryEngine.for_dataset("imdb", dataset_seed=seed)
    workload = imdb_workload(engine.backend, n_queries=n_queries, seed=seed + 100)
    return engine, workload


def check_atf_beats_baseline(seed: int, n_queries: int = 12) -> bool:
    """Fig. 3.5's claim, one seed: total ATF cost <= total baseline cost."""
    engine, workload = _imdb_stack(seed, n_queries)
    uniform = UniformModel()
    atf_total = base_total = 0
    for item in workload:
        u1, u2 = SimulatedUser(item.intended), SimulatedUser(item.intended)
        atf_total += ConstructionSession(item.query, engine).run(u1).options_evaluated
        base_total += (
            ConstructionSession(item.query, engine, uniform).run(u2).options_evaluated
        )
    return atf_total <= base_total


def check_construction_bounded_by_ranking(seed: int, n_queries: int = 12) -> bool:
    """Fig. 3.6's claim, one seed: max construction cost <= max rank."""
    engine, workload = _imdb_stack(seed, n_queries)
    ranker = Ranker(engine)
    max_rank = 0
    max_cost = 0
    for item in workload:
        rank = ranker.rank_of(item.query, item.intended)
        if rank is None:
            continue
        max_rank = max(max_rank, rank)
        user = SimulatedUser(item.intended)
        result = ConstructionSession(item.query, engine).run(user)
        max_cost = max(max_cost, result.options_evaluated)
    return max_rank > 0 and max_cost <= max_rank


def check_diversification_wins_high_alpha(seed: int, n_queries: int = 8) -> bool:
    """Fig. 4.2's claim, one seed: div >= rank at alpha=0.99 on mc queries."""
    from repro.experiments import ch4

    setup = ch4.build_setup("imdb", n_queries=n_queries, seed=seed)
    data = ch4.fig_4_2(setup, alphas=(0.99,), ks=(4, 6, 8))
    if (0.99, "div", "mc") not in data:
        return True  # vacuous for this seed's workload
    return sum(data[(0.99, "div", "mc")]) >= sum(data[(0.99, "rank", "mc")]) - 0.05


def check_ontology_qcos_no_worse(seed: int, n_queries: int = 6) -> bool:
    """Fig. 5.4's claim, one seed: ontology total cost <= plain total cost."""
    instance = build_freebase(seed=seed, n_domains=12, rows_per_entity_table=20)
    engine = QueryEngine(instance.database, max_template_joins=2)
    freeq = FreeQ.from_engine(engine, instance.ontology, stop_size=1)
    workload = freebase_workload(instance, n_queries=n_queries, seed=seed + 7)
    plain_total = onto_total = 0
    for item in workload:
        u1, u2 = SimulatedUser(item.intended), SimulatedUser(item.intended)
        plain = ConstructionSession(item.query, engine, stop_size=1).run(u1)
        onto = freeq.construct(item.query, u2)
        plain_total += plain.options_evaluated
        onto_total += onto.options_evaluated
    return onto_total <= plain_total


def run_robustness(seeds: tuple[int, ...] = (7, 19, 43)) -> list[ShapeCheck]:
    """Evaluate every shape over every seed."""
    checks = [
        ShapeCheck("ATF <= uniform baseline (Fig. 3.5)"),
        ShapeCheck("construction max <= ranking max (Fig. 3.6)"),
        ShapeCheck("div >= rank @ alpha=0.99 mc (Fig. 4.2)"),
        ShapeCheck("ontology QCOs <= plain QCOs (Fig. 5.4)"),
    ]
    for seed in seeds:
        checks[0].holds.append(check_atf_beats_baseline(seed))
        checks[1].holds.append(check_construction_bounded_by_ranking(seed))
        checks[2].holds.append(check_diversification_wins_high_alpha(seed))
        checks[3].holds.append(check_ontology_qcos_no_worse(seed))
    return checks


def report(seeds: tuple[int, ...] = (7, 19, 43)) -> str:
    checks = run_robustness(seeds)
    rows = [[c.name, f"{sum(c.holds)}/{len(c.holds)}", c.fraction] for c in checks]
    return (
        f"Robustness over seeds {seeds}:\n"
        + format_table(["shape", "holds", "fraction"], rows)
    )


def main() -> None:  # pragma: no cover - manual driver
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
