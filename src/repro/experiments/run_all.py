"""One-shot report generator: every reproduced table and figure to stdout
(or a directory of text files).

    python -m repro.experiments.run_all [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import ch3, ch4, ch5, ch6


def collect_reports() -> dict[str, str]:
    """Produce every chapter's report text, keyed by a file-friendly name."""
    reports: dict[str, str] = {}

    setup3_imdb = ch3.build_setup("imdb", 20)
    setup3_lyrics = ch3.build_setup("lyrics", 20)
    reports["ch3_fig_3_5_imdb"] = ch3.fig_3_5_report("imdb", 20)
    reports["ch3_fig_3_5_lyrics"] = ch3.fig_3_5_report("lyrics", 20)
    reports["ch3_fig_3_6_imdb"] = ch3.fig_3_6_report("imdb", 20)
    reports["ch3_fig_3_6_lyrics"] = ch3.fig_3_6_report("lyrics", 20)
    reports["ch3_fig_3_7_table_3_1"] = ch3.fig_3_7_report("imdb", 30)
    reports["ch3_table_3_2"] = ch3.table_3_2_report()
    reports["ch3_table_3_3"] = ch3.table_3_3_report()
    reports["ch3_table_3_4"] = ch3.table_3_4_report()
    del setup3_imdb, setup3_lyrics

    for dataset in ("imdb", "lyrics"):
        setup4 = ch4.build_setup(dataset, n_queries=12)
        reports[f"ch4_table_4_1_{dataset}"] = ch4.table_4_1(setup4)
        reports[f"ch4_fig_4_1_{dataset}"] = ch4.fig_4_1_report(dataset, setup4)
        reports[f"ch4_fig_4_2_{dataset}"] = ch4.fig_4_2_report(dataset, setup4)
        reports[f"ch4_fig_4_3_{dataset}"] = ch4.fig_4_3_report(dataset, setup4)
        reports[f"ch4_fig_4_4_{dataset}"] = ch4.fig_4_4_report(dataset, setup4)

    reports["ch5_table_5_1"] = ch5.table_5_1()
    reports["ch5_fig_5_2"] = ch5.fig_5_2_report()
    reports["ch5_table_5_2"] = ch5.table_5_2_report()
    reports["ch5_table_5_3"] = ch5.table_5_3_report()
    reports["ch5_fig_5_4"] = ch5.fig_5_4_report()
    reports["ch5_fig_5_5"] = ch5.fig_5_5_report()

    setup6 = ch6.build_setup()
    reports["ch6_table_6_1"] = ch6.table_6_1_report(setup6)
    reports["ch6_table_6_2"] = ch6.table_6_2_report(setup6)
    reports["ch6_fig_6_2"] = ch6.fig_6_2_report(setup6)
    reports["ch6_table_6_3"] = ch6.table_6_3_report(setup6)
    reports["ch6_fig_6_4"] = ch6.fig_6_4_report(setup6)
    return reports


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    reports = collect_reports()
    if argv:
        out_dir = Path(argv[0])
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, text in reports.items():
            (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"wrote {len(reports)} reports to {out_dir}")
    else:
        for name, text in reports.items():
            print(f"==== {name} ====")
            print(text)
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
