"""FreeQ: scaling interactive query construction to very large databases
(Chapter 5).

Two bottlenecks appear on Freebase-scale schemas (thousands of tables):
per-table query construction options become uninformative (a keyword occurs
in hundreds of attributes), and the interpretation space cannot be
materialized.  FreeQ answers with (a) an abstract *ontology layer* over the
schema whose concepts group attributes across tables, turning many per-table
QCOs into one concept-level QCO (Section 5.5), and (b) best-first incremental
exploration of the query hierarchy (Section 5.6).
"""

from repro.freeq.ontology import Concept, SchemaOntology
from repro.freeq.qco import OntologyQCOProvider, option_efficiency, provider_efficiency
from repro.freeq.system import FreeQ
from repro.freeq.traversal import BestFirstExplorer

__all__ = [
    "BestFirstExplorer",
    "Concept",
    "FreeQ",
    "OntologyQCOProvider",
    "SchemaOntology",
    "option_efficiency",
    "provider_efficiency",
]
