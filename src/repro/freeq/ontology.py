"""The abstract ontology layer over a database schema (Section 5.5.1).

A :class:`SchemaOntology` is a concept tree rooted at ``Thing``.  Leaf
assignments attach schema elements — ``(table, attribute)`` pairs for value
interpretations and tables for metadata interpretations — to concepts.
Concept-level query construction options then ask about semantic classes
("Is 'london' a *Person*?") instead of individual columns, which is what
keeps interaction cost flat as the schema grows (Fig. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: Schema element reference: ("attr", table, attribute) or ("table", table).
ElementRef = tuple[str, ...]


def attr_ref(table: str, attribute: str) -> ElementRef:
    return ("attr", table, attribute)


def table_ref(table: str) -> ElementRef:
    return ("table", table)


@dataclass
class Concept:
    """One node of the ontology tree."""

    name: str
    parent: str | None
    children: list[str] = field(default_factory=list)
    #: Elements assigned directly to this concept.
    elements: set[ElementRef] = field(default_factory=set)


class SchemaOntology:
    """A concept tree with schema-element assignments.

    Level 0 is the root (``Thing``); deeper levels refine concepts.  The
    experiments of Table 5.3 sweep ontology granularity by cutting the tree
    at different levels (:meth:`concept_at_level`).
    """

    ROOT = "Thing"

    def __init__(self):
        self._concepts: dict[str, Concept] = {
            self.ROOT: Concept(name=self.ROOT, parent=None)
        }
        self._element_concept: dict[ElementRef, str] = {}

    # -- construction --------------------------------------------------------

    def add_concept(self, name: str, parent: str | None = None) -> Concept:
        parent = parent or self.ROOT
        if name in self._concepts:
            raise ValueError(f"duplicate concept {name!r}")
        if parent not in self._concepts:
            raise KeyError(f"unknown parent concept {parent!r}")
        concept = Concept(name=name, parent=parent)
        self._concepts[name] = concept
        self._concepts[parent].children.append(name)
        return concept

    def ensure_concept(self, name: str, parent: str | None = None) -> Concept:
        if name in self._concepts:
            return self._concepts[name]
        return self.add_concept(name, parent)

    def assign_attribute(self, table: str, attribute: str, concept: str) -> None:
        self._assign(attr_ref(table, attribute), concept)

    def assign_table(self, table: str, concept: str) -> None:
        self._assign(table_ref(table), concept)

    def _assign(self, element: ElementRef, concept: str) -> None:
        if concept not in self._concepts:
            raise KeyError(f"unknown concept {concept!r}")
        previous = self._element_concept.get(element)
        if previous is not None:
            self._concepts[previous].elements.discard(element)
        self._concepts[concept].elements.add(element)
        self._element_concept[element] = concept

    # -- structure queries ----------------------------------------------------

    def concept(self, name: str) -> Concept:
        return self._concepts[name]

    def __contains__(self, name: str) -> bool:
        return name in self._concepts

    def concept_names(self) -> list[str]:
        return sorted(self._concepts)

    def __len__(self) -> int:
        return len(self._concepts)

    def ancestors(self, name: str) -> list[str]:
        """Path from the root to ``name`` (inclusive)."""
        path: list[str] = []
        current: str | None = name
        while current is not None:
            path.append(current)
            current = self._concepts[current].parent
        path.reverse()
        return path

    def level_of(self, name: str) -> int:
        return len(self.ancestors(name)) - 1

    def depth(self) -> int:
        return max((self.level_of(name) for name in self._concepts), default=0)

    def concepts_at_level(self, level: int) -> list[str]:
        return sorted(n for n in self._concepts if self.level_of(n) == level)

    # -- element queries ----------------------------------------------------------

    def concept_of_attribute(self, table: str, attribute: str) -> str | None:
        return self._element_concept.get(attr_ref(table, attribute))

    def concept_of_table(self, table: str) -> str | None:
        return self._element_concept.get(table_ref(table))

    def concept_at_level(self, element_concept: str, level: int) -> str:
        """The ancestor of ``element_concept`` at ``level`` (clamped to leaf)."""
        path = self.ancestors(element_concept)
        if level >= len(path):
            return path[-1]
        return path[level]

    def elements_under(self, name: str) -> set[ElementRef]:
        """All elements assigned to ``name`` or any descendant."""
        out: set[ElementRef] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            concept = self._concepts[current]
            out |= concept.elements
            stack.extend(concept.children)
        return out

    # -- statistics ---------------------------------------------------------------

    def fan_out(self, level: int) -> float:
        """Mean number of elements grouped per concept at ``level``.

        The informativeness driver of Section 5.5.3: higher fan-out means one
        QCO answer prunes more of the interpretation space.
        """
        concepts = self.concepts_at_level(level)
        if not concepts:
            return 0.0
        sizes = [len(self.elements_under(c)) for c in concepts]
        populated = [s for s in sizes if s > 0]
        if not populated:
            return 0.0
        return sum(populated) / len(populated)

    def summary(self) -> dict[str, float | int]:
        return {
            "concepts": len(self),
            "depth": self.depth(),
            "elements": len(self._element_concept),
            "level1_concepts": len(self.concepts_at_level(1)),
        }


def build_type_domain_ontology(
    assignments: Iterable[tuple[str, str, str, str]],
    domain_groups: dict[str, str] | None = None,
) -> SchemaOntology:
    """Build the layered (semantic type [-> domain group] -> domain) ontology.

    ``assignments`` yields ``(table, attribute, semantic_type, domain)``.
    Without ``domain_groups`` the tree is ``Thing -> type -> type/domain``.
    With it, an intermediate grouping layer is inserted
    (``Thing -> type -> type/group -> type/group/domain``), which is what
    keeps concept-level drill-down logarithmic instead of linear in the
    number of domains on big flat schemas.
    """
    ontology = SchemaOntology()
    for table, attribute, semantic_type, domain in assignments:
        ontology.ensure_concept(semantic_type, SchemaOntology.ROOT)
        parent = semantic_type
        if domain_groups is not None:
            group = domain_groups.get(domain, "misc")
            group_concept = f"{semantic_type}/{group}"
            ontology.ensure_concept(group_concept, semantic_type)
            parent = group_concept
        leaf = f"{parent}/{domain}"
        ontology.ensure_concept(leaf, parent)
        ontology.assign_attribute(table, attribute, leaf)
        if ontology.concept_of_table(table) is None:
            ontology.assign_table(table, leaf)
    return ontology
