"""Ontology-based query construction options and their efficiency
(Sections 5.5.2–5.5.3).

The provider groups the frontier's candidate keyword interpretations by
ontology concept (at a configurable granularity level) and offers one
:class:`~repro.core.options.ConceptOption` per ``(keyword, concept)`` group,
falling back to plain atom options where concepts do not discriminate.

*Efficiency of a QCO* is measured as the fraction of the frontier's
uncertainty one user interaction resolves: the option's information gain
normalized by the frontier entropy.  Ontology QCOs approach the ideal 50/50
probability split on big schemas, whereas per-attribute QCOs each carry a
sliver of probability mass — the effect behind Fig. 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.hierarchy import QueryHierarchy
from repro.core.interpretation import Atom, TableAtom, ValueAtom, atom_sort_key
from repro.core.keywords import Keyword
from repro.core.options import AtomSetOption, ConceptOption, Option
from repro.core.probability import entropy, normalize
from repro.freeq.ontology import SchemaOntology
from repro.iqp.infogain import information_gain


@dataclass
class OntologyQCOProvider:
    """Generates ontology-based QCOs from a hierarchy frontier.

    ``level`` selects the concept granularity (1 = semantic types,
    2 = type/domain, deeper = finer).  ``include_atom_options`` keeps the
    per-attribute options available so the final disambiguation steps can
    still distinguish attributes inside one concept.
    """

    ontology: SchemaOntology
    #: Coarsest concept level offered (1 = semantic types).  Options are
    #: generated at every level from here down to the leaves, so accepted
    #: coarse concepts can be drilled into ("Person" -> "Person/film").
    level: int = 1
    include_atom_options: bool = True

    def __call__(self, hierarchy: QueryHierarchy) -> list[Option]:
        groups: dict[tuple[Keyword, str], set[Atom]] = {}
        atoms_seen: set[Atom] = set()
        depth = self.ontology.depth()
        for node in hierarchy.frontier:
            for atom in node.atoms:
                atoms_seen.add(atom)
                concept = self._concept_of(atom)
                if concept is None:
                    continue
                for level in range(self.level, depth + 1):
                    grouped = self.ontology.concept_at_level(concept, level)
                    groups.setdefault((atom.keyword, grouped), set()).add(atom)
        options: list[Option] = []
        seen_groups: set[tuple[Keyword, frozenset[Atom]]] = set()
        for (keyword, concept), atoms in sorted(
            groups.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            frozen = frozenset(atoms)
            if len(frozen) < 2:
                continue  # a single attribute: the atom option covers it
            key = (keyword, frozen)
            if key in seen_groups:
                continue  # deeper level groups identically — skip duplicate
            seen_groups.add(key)
            options.append(ConceptOption(keyword=keyword, concept=concept, atoms=frozen))
        if self.include_atom_options or not options:
            options.extend(
                AtomSetOption(frozenset([a]))
                for a in sorted(atoms_seen, key=atom_sort_key)
            )
        return options

    def _concept_of(self, atom: Atom) -> str | None:
        if isinstance(atom, ValueAtom):
            return self.ontology.concept_of_attribute(atom.table, atom.attribute)
        if isinstance(atom, TableAtom):
            return self.ontology.concept_of_table(atom.table)
        return None


def option_efficiency(weights: Sequence[float], pattern: Sequence[bool]) -> float:
    """Efficiency of one QCO: information gain / frontier entropy, in [0, 1].

    1 means the single interaction fully resolves the frontier; 0 means the
    option carries no information (it does not split the frontier).
    """
    h = entropy(normalize(list(weights)))
    if h <= 0.0:
        return 0.0
    return information_gain(weights, pattern) / h


def provider_efficiency(
    hierarchy: QueryHierarchy, options: Sequence[Option]
) -> float:
    """Efficiency of a QCO set: the best single option's efficiency.

    This is the per-step measure swept against schema size in Fig. 5.2.
    """
    weights = [node.weight for node in hierarchy.frontier]
    best = 0.0
    for option in options:
        pattern = [option.matches(node.atoms) for node in hierarchy.frontier]
        if all(pattern) or not any(pattern):
            continue
        best = max(best, option_efficiency(weights, pattern))
    return best
