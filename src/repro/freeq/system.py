"""The FreeQ system facade (Chapter 5).

Wires the ontology layer, the ontology-aware QCO provider and the best-first
explorer into the construction-session machinery of Chapter 3: a FreeQ
session is an IQP session whose options come from the ontology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generator import InterpretationGenerator
from repro.core.keywords import KeywordQuery
from repro.core.probability import ProbabilityModel
from repro.engine import QueryEngine
from repro.freeq.ontology import SchemaOntology
from repro.freeq.qco import OntologyQCOProvider
from repro.freeq.traversal import BestFirstExplorer
from repro.iqp.session import ConstructionResult, ConstructionSession
from repro.user.oracle import SimulatedUser


@dataclass
class FreeQ:
    """Interactive query construction over a very large database."""

    generator: InterpretationGenerator
    model: ProbabilityModel
    ontology: SchemaOntology
    #: Concept granularity for ontology QCOs (Table 5.3's sweep variable).
    qco_level: int = 1
    threshold: int = 20
    stop_size: int = 5
    max_frontier: int = 10_000

    @classmethod
    def from_engine(
        cls, engine: QueryEngine, ontology: SchemaOntology, **kwargs
    ) -> "FreeQ":
        """A FreeQ stack on a query engine's generate/rank machinery."""
        return cls(engine.generator, engine.model, ontology, **kwargs)

    def session(self, query: KeywordQuery) -> ConstructionSession:
        provider = OntologyQCOProvider(self.ontology, level=self.qco_level)
        return ConstructionSession(
            query,
            self.generator,
            self.model,
            threshold=self.threshold,
            stop_size=self.stop_size,
            max_frontier=self.max_frontier,
            option_provider=provider,
        )

    def construct(self, query: KeywordQuery, user: SimulatedUser) -> ConstructionResult:
        """Run one interactive construction dialogue."""
        return self.session(query).run(user)

    def top_interpretations(self, query: KeywordQuery, n: int = 10):
        """Best-first top-n interpretations without space materialization."""
        explorer = BestFirstExplorer(query, self.generator, self.model)
        return explorer.top_interpretations(n)
