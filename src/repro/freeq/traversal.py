"""Best-first exploration of very large interpretation spaces (Section 5.6.2).

On a Freebase-scale schema the interpretation space of a keyword query is
far too large to materialize and rank.  The explorer maintains a max-heap of
partial interpretations ordered by their probability upper bound and expands
the best partial first; because every keyword binding multiplies the weight
by a factor at most 1, the first complete interpretations popped are the
globally most probable ones — top-k materialization without enumerating the
space.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import count

from repro.core.generator import InterpretationGenerator
from repro.core.interpretation import Atom, Interpretation
from repro.core.keywords import KeywordQuery
from repro.core.probability import ProbabilityModel
from repro.core.templates import QueryTemplate


@dataclass(frozen=True)
class _Partial:
    template: QueryTemplate
    assignment: tuple[tuple[Atom, int], ...]
    level: int
    weight: float


class BestFirstExplorer:
    """Top-k materialization of the interpretation space of one query."""

    def __init__(
        self,
        query: KeywordQuery,
        generator: InterpretationGenerator,
        model: ProbabilityModel,
    ):
        self.query = query
        self.generator = generator
        self.model = model
        self.keywords = generator.effective_keywords(query)
        self._atom_map = {k: generator.keyword_atoms(k) for k in self.keywords}
        #: Partial interpretations popped from the heap — the work measure
        #: Fig. 5.5's response times scale with.
        self.pops = 0

    def _children(self, partial: _Partial) -> list[_Partial]:
        keyword = self.keywords[partial.level]
        out: list[_Partial] = []
        for atom in self._atom_map[keyword]:
            for slot in partial.template.positions_of(atom.table):
                # Clamp the factor at 1 so the heap order is an admissible
                # upper bound on every completion's weight.
                factor = min(self.model.atom_weight(atom, partial.template), 1.0)
                out.append(
                    _Partial(
                        template=partial.template,
                        assignment=partial.assignment + ((atom, slot),),
                        level=partial.level + 1,
                        weight=partial.weight * factor,
                    )
                )
        return out

    @staticmethod
    def _is_minimal(partial: _Partial) -> bool:
        occupied = {slot for _atom, slot in partial.assignment}
        return all(leaf in occupied for leaf in partial.template.leaf_positions())

    def top_interpretations(
        self, n: int, max_pops: int = 200_000
    ) -> list[tuple[Interpretation, float]]:
        """The ``n`` most probable complete interpretations, best first."""
        if not self.keywords:
            return []
        effective_query = KeywordQuery(keywords=tuple(self.keywords), text=str(self.query))
        tie = count()
        heap: list[tuple[float, int, _Partial]] = []
        for template in self.generator.templates:
            prior = self.model.template_prior(template)
            if prior <= 0.0:
                continue
            heapq.heappush(heap, (-prior, next(tie), _Partial(template, (), 0, prior)))
        results: list[tuple[Interpretation, float]] = []
        self.pops = 0
        while heap and len(results) < n and self.pops < max_pops:
            neg_weight, _t, partial = heapq.heappop(heap)
            self.pops += 1
            if partial.level == len(self.keywords):
                if not self._is_minimal(partial):
                    continue
                interp = Interpretation.build(
                    effective_query, partial.template, partial.assignment
                )
                try:
                    interp.validate()
                except ValueError:
                    continue
                results.append((interp, -neg_weight))
                continue
            for child in self._children(partial):
                heapq.heappush(heap, (-child.weight, next(tie), child))
        return results
