"""IQP: probabilistic incremental query construction (Chapter 3).

The package splits into two layers:

* an *abstract plan layer* (:mod:`repro.iqp.plan`, :mod:`repro.iqp.brute_force`,
  :mod:`repro.iqp.greedy_plan`) operating on option spaces — complete query
  interpretations with probabilities plus query construction options with
  their subsumption sets.  This is the layer the optimality experiments
  (Table 3.4) and the scalability simulations (Tables 3.2/3.3) exercise.
* a *database-backed session layer* (:mod:`repro.iqp.session`,
  :mod:`repro.iqp.ranking`) running the greedy information-gain construction
  over a real query hierarchy against a database, used by the IMDB/Lyrics
  experiments (Figs. 3.5–3.7).
"""

from repro.iqp.brute_force import brute_force_plan
from repro.iqp.greedy_plan import greedy_plan
from repro.iqp.infogain import conditional_entropy, information_gain
from repro.iqp.nary import NaryNode, nary_expected_cost, to_binary, to_nary
from repro.iqp.plan import OptionSpace, PlanNode, expected_cost, ranked_list_cost
from repro.iqp.ranking import RankedInterpretation, Ranker
from repro.iqp.session import ConstructionResult, ConstructionSession

__all__ = [
    "ConstructionResult",
    "ConstructionSession",
    "NaryNode",
    "OptionSpace",
    "PlanNode",
    "RankedInterpretation",
    "Ranker",
    "brute_force_plan",
    "conditional_entropy",
    "expected_cost",
    "greedy_plan",
    "information_gain",
    "nary_expected_cost",
    "ranked_list_cost",
    "to_binary",
    "to_nary",
]
