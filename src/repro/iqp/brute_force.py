"""Brute-force construction of the minimum query construction plan (Alg. 3.1).

Recursively enumerates every option at every node and keeps the subtree of
minimum expected interaction cost (Lemma 3.7.1).  Exponential — usable only
for the small universes of the optimality study (Table 3.4).
"""

from __future__ import annotations

from functools import lru_cache

from repro.iqp.plan import (
    OptionSpace,
    PlanNode,
    make_scan_node,
    ranked_list_cost,
    splitting_options,
)


def brute_force_plan(space: OptionSpace) -> tuple[PlanNode, float]:
    """Return the optimal QCP and its expected interaction cost.

    Cost is expressed in *expected option evaluations* conditioned on the
    root (i.e. Eq. 3.1 over the whole space).  When a subset cannot be split
    by any remaining option, the plan degenerates to a ranked-list scan of
    that subset (the special-case QCP of Section 3.5.5).
    """

    @lru_cache(maxsize=None)
    def best(subset: frozenset[int]) -> float:
        if len(subset) <= 1:
            return 0.0
        candidates = splitting_options(space, subset)
        conditional = dict(zip(sorted(subset), space.conditional(subset)))
        if not candidates:
            return ranked_list_cost(list(conditional.values()))
        best_cost = float("inf")
        subset_mass = space.mass(subset)
        for _option, inside, outside in candidates:
            p_in = space.mass(inside) / subset_mass if subset_mass else 0.0
            cost = 1.0 + p_in * best(inside) + (1.0 - p_in) * best(outside)
            if cost < best_cost:
                best_cost = cost
        return best_cost

    def build(subset: frozenset[int]) -> PlanNode:
        if len(subset) == 1:
            (only,) = subset
            return PlanNode(subset=subset, query_index=only)
        candidates = splitting_options(space, subset)
        if not candidates:
            return make_scan_node(space, subset)
        subset_mass = space.mass(subset)
        best_cost = float("inf")
        best_choice = None
        for option, inside, outside in candidates:
            p_in = space.mass(inside) / subset_mass if subset_mass else 0.0
            cost = 1.0 + p_in * best(inside) + (1.0 - p_in) * best(outside)
            if cost < best_cost:
                best_cost = cost
                best_choice = (option, inside, outside)
        assert best_choice is not None
        option, inside, outside = best_choice
        return PlanNode(
            subset=subset,
            option=option,
            accept=build(inside),
            reject=build(outside),
        )

    root_subset = space.all_indices()
    plan = build(root_subset)
    return plan, best(root_subset)
