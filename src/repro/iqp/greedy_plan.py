"""Greedy construction plan over an abstract option space (Section 3.7.2).

At every node, pick the option with maximal information gain over the
current subset — the near-optimal strategy Table 3.4 compares against the
brute-force optimum.  Unlike :func:`repro.iqp.brute_force.brute_force_plan`
this runs in polynomial time.
"""

from __future__ import annotations

from repro.iqp.infogain import information_gain
from repro.iqp.plan import (
    OptionSpace,
    PlanNode,
    expected_cost,
    make_scan_node,
    splitting_options,
)


def greedy_plan(space: OptionSpace) -> tuple[PlanNode, float]:
    """Build the full greedy QCP and return it with its expected cost."""

    def build(subset: frozenset[int]) -> PlanNode:
        if len(subset) == 1:
            (only,) = subset
            return PlanNode(subset=subset, query_index=only)
        candidates = splitting_options(space, subset)
        if not candidates:
            return make_scan_node(space, subset)
        ordered = sorted(subset)
        weights = [space.probabilities[i] for i in ordered]
        best_gain = -1.0
        best_choice = None
        for option, inside, outside in candidates:
            pattern = [i in inside for i in ordered]
            gain = information_gain(weights, pattern)
            if gain > best_gain:
                best_gain = gain
                best_choice = (option, inside, outside)
        assert best_choice is not None
        option, inside, outside = best_choice
        return PlanNode(
            subset=subset,
            option=option,
            accept=build(inside),
            reject=build(outside),
        )

    plan = build(space.all_indices())
    return plan, expected_cost(plan, space)
