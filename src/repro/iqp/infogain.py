"""Information gain of query construction options (Section 3.7.3).

``IG(I | O) = H(I) - H(I | O)`` where ``H(I)`` is the entropy of the
(current top level of the) interpretation space and ``H(I | O)`` the
conditional entropy once the user has told us whether option ``O`` subsumes
the intended interpretation (Eqs. 3.11-3.13).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.probability import entropy, normalize


def conditional_entropy(
    probabilities: Sequence[float], subsumed: Sequence[bool]
) -> float:
    """``H(I | O)`` for an option with the given subsumption pattern.

    ``probabilities`` are (possibly unnormalized) weights of the top-level
    interpretations; ``subsumed[i]`` says whether the option subsumes
    interpretation ``i``.
    """
    if len(probabilities) != len(subsumed):
        raise ValueError("probabilities/subsumed arity mismatch")
    probs = normalize(list(probabilities))
    p_yes = sum(p for p, s in zip(probs, subsumed) if s)
    p_no = 1.0 - p_yes
    h = 0.0
    if p_yes > 0.0:
        yes_branch = normalize([p for p, s in zip(probs, subsumed) if s])
        h += p_yes * entropy(yes_branch)
    if p_no > 0.0:
        no_branch = normalize([p for p, s in zip(probs, subsumed) if not s])
        h += p_no * entropy(no_branch)
    return h


def information_gain(
    probabilities: Sequence[float], subsumed: Sequence[bool]
) -> float:
    """``IG(I | O)`` (Eq. 3.11).  Maximal for an even probability split."""
    probs = normalize(list(probabilities))
    return entropy(probs) - conditional_entropy(probs, subsumed)
