"""N-ary query construction plans (Fig. 3.4).

The IQP user interface presents *several* options per round; the underlying
binary QCP (Fig. 3.3) transforms uniquely into that N-ary tree: traversing
the binary tree in post-order, each node absorbs its right ("reject") child's
edges and children, so a chain of rejects becomes one multi-option round.
The inverse direction folds an N-ary node's option list back into a reject
chain.  Both directions preserve the interaction cost: evaluating the i-th
option of a round costs i evaluations either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.iqp.plan import OptionSpace, PlanNode


@dataclass
class NaryNode:
    """One round of the N-ary plan: options presented together.

    ``options[i]`` leads to ``children[i]`` when accepted; rejecting all
    options leaves the user at ``fallthrough`` (a leaf or scan node carried
    over from the binary tree's terminal right spine).
    """

    subset: frozenset[int]
    options: list[Hashable] = field(default_factory=list)
    children: list["NaryNode"] = field(default_factory=list)
    query_index: int | None = None
    scan_order: tuple[int, ...] = ()

    @property
    def is_leaf(self) -> bool:
        return self.query_index is not None or bool(self.scan_order)

    def depth_of(self, query_index: int, depth: int = 0) -> int:
        """Options evaluated to reach ``query_index`` (equals the binary cost)."""
        if self.query_index is not None:
            if self.query_index != query_index:
                raise KeyError(query_index)
            return depth
        if self.scan_order:
            position = self.scan_order.index(query_index)
            return depth + min(position + 1, max(len(self.scan_order) - 1, 0))
        for i, child in enumerate(self.children):
            if query_index in child.subset:
                if i < len(self.options) and self.options[i] is None:
                    # Fallthrough branch: reached by rejecting the i real
                    # options — no extra evaluation for landing there.
                    return child.depth_of(query_index, depth + i)
                # The user evaluates options 1..i+1, accepts the (i+1)-th.
                return child.depth_of(query_index, depth + i + 1)
        raise KeyError(query_index)


def to_nary(binary: PlanNode) -> NaryNode:
    """Transform a binary QCP into the equivalent N-ary plan (Fig. 3.4).

    Walks the right ("reject") spine of each binary node, collecting each
    accept branch as one option of the round.
    """
    if binary.is_leaf:
        assert binary.query_index is not None
        return NaryNode(subset=binary.subset, query_index=binary.query_index)
    if binary.scan:
        return NaryNode(subset=binary.subset, scan_order=binary.scan_order)
    node = NaryNode(subset=binary.subset)
    current: PlanNode | None = binary
    while current is not None and not current.is_leaf and not current.scan:
        assert current.accept is not None and current.reject is not None
        node.options.append(current.option)
        node.children.append(to_nary(current.accept))
        current = current.reject
    if current is not None:
        # Terminal right child: a leaf or a scan fallthrough becomes the last
        # "option" the user implicitly lands on after rejecting the others.
        node.options.append(None)
        node.children.append(to_nary(current))
    return node


def to_binary(nary: NaryNode) -> PlanNode:
    """Fold an N-ary plan back into the equivalent binary QCP."""
    if nary.query_index is not None:
        return PlanNode(subset=nary.subset, query_index=nary.query_index)
    if nary.scan_order:
        return PlanNode(subset=nary.subset, scan=True, scan_order=nary.scan_order)
    # Build the reject chain right-to-left.
    assert nary.options and nary.children
    current = to_binary(nary.children[-1])
    # The trailing fallthrough option (None) is the chain terminal itself.
    remaining = list(zip(nary.options, nary.children))
    if remaining[-1][0] is None:
        remaining = remaining[:-1]
    for option, child in reversed(remaining):
        accept = to_binary(child)
        subset = accept.subset | current.subset
        current = PlanNode(
            subset=subset, option=option, accept=accept, reject=current
        )
    return current


def nary_expected_cost(nary: NaryNode, space: OptionSpace) -> float:
    """Interaction cost of the N-ary plan (matches the binary Eq. 3.1 cost)."""
    total = 0.0
    for i in range(len(space.queries)):
        try:
            depth = nary.depth_of(i)
        except KeyError:
            continue
        total += depth * space.probabilities[i]
    return total
