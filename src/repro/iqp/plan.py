"""Query construction plans over abstract option spaces (Defs. 3.5.8–3.5.10).

A query construction plan (QCP) is a binary decision tree: each internal node
asks the user to accept or reject one query construction option; each leaf is
one complete query interpretation.  Its interaction cost (Eq. 3.1) is the
expected number of options a user evaluates before reaching a leaf.

The plan algorithms are independent of databases: they need only (a) the set
of complete interpretations with probabilities and (b) for each option, which
interpretations it subsumes.  :class:`OptionSpace` captures exactly that, so
the same code runs against real query hierarchies and against the random
simulations of Section 3.8.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.probability import normalize


@dataclass(frozen=True)
class OptionSpace:
    """An abstract universe for plan construction.

    ``options[o]`` is the set of query indices (into ``queries``) that option
    ``o`` subsumes — accepting ``o`` keeps exactly those queries.
    """

    queries: tuple[Hashable, ...]
    probabilities: tuple[float, ...]
    options: dict[Hashable, frozenset[int]]

    @classmethod
    def build(
        cls,
        queries: Sequence[Hashable],
        probabilities: Sequence[float],
        options: dict[Hashable, frozenset[int] | set[int]],
    ) -> "OptionSpace":
        if len(queries) != len(probabilities):
            raise ValueError("queries/probabilities arity mismatch")
        probs = tuple(normalize(list(probabilities)))
        return cls(
            queries=tuple(queries),
            probabilities=probs,
            options={k: frozenset(v) for k, v in options.items()},
        )

    def all_indices(self) -> frozenset[int]:
        return frozenset(range(len(self.queries)))

    def conditional(self, subset: frozenset[int]) -> list[float]:
        """Probabilities renormalized over ``subset`` (indexed as sorted list)."""
        return normalize([self.probabilities[i] for i in sorted(subset)])

    def mass(self, subset: frozenset[int]) -> float:
        return sum(self.probabilities[i] for i in subset)


@dataclass
class PlanNode:
    """One node of a QCP binary tree.

    A leaf carries ``query_index``; an internal node carries the ``option``
    asked here plus the accept (left) and reject (right) subtrees.
    """

    subset: frozenset[int]
    option: Hashable | None = None
    accept: "PlanNode | None" = None
    reject: "PlanNode | None" = None
    query_index: int | None = None
    #: True when the node is a forced ranked-list scan (no splitting options).
    scan: bool = False
    scan_order: tuple[int, ...] = field(default_factory=tuple)

    @property
    def is_leaf(self) -> bool:
        return self.query_index is not None

    def depth_of(self, query_index: int, depth: int = 0) -> int:
        """Number of options evaluated on the path to ``query_index``."""
        if self.is_leaf:
            if self.query_index != query_index:
                raise KeyError(query_index)
            return depth
        if self.scan:
            position = self.scan_order.index(query_index)
            # Scanning a ranked list: the user evaluates one entry per step,
            # but the last entry is implied once all others are rejected.
            return depth + min(position + 1, max(len(self.scan_order) - 1, 0))
        assert self.accept is not None and self.reject is not None
        if query_index in self.accept.subset:
            return self.accept.depth_of(query_index, depth + 1)
        return self.reject.depth_of(query_index, depth + 1)


def ranked_list_cost(probabilities: Sequence[float]) -> float:
    """Expected evaluations when scanning a ranked list (Section 3.5.5).

    The list is ordered by decreasing probability; evaluating entry ``i``
    costs ``i + 1`` evaluations, except the final entry which is implied
    after rejecting all others.
    """
    probs = sorted(normalize(list(probabilities)), reverse=True)
    n = len(probs)
    if n <= 1:
        return 0.0
    cost = sum((i + 1) * p for i, p in enumerate(probs[:-1]))
    cost += (n - 1) * probs[-1]
    return cost


def expected_cost(plan: PlanNode, space: OptionSpace) -> float:
    """Interaction cost of a plan (Eq. 3.1): sum of depth(leaf) * P(leaf)."""

    def walk(node: PlanNode, depth: int) -> float:
        if node.is_leaf:
            assert node.query_index is not None
            return depth * space.probabilities[node.query_index]
        if node.scan:
            conditional = space.conditional(node.subset)
            ordered = sorted(node.subset)
            total = 0.0
            n = len(ordered)
            position = {q: i for i, q in enumerate(node.scan_order)}
            for q, p_cond in zip(ordered, conditional):
                steps = min(position[q] + 1, max(n - 1, 0))
                total += (depth + steps) * space.probabilities[q]
            return total
        assert node.accept is not None and node.reject is not None
        return walk(node.accept, depth + 1) + walk(node.reject, depth + 1)

    return walk(plan, 0)


def make_scan_node(space: OptionSpace, subset: frozenset[int]) -> PlanNode:
    """A ranked-list fallback node over ``subset`` (probability-ordered)."""
    order = tuple(
        sorted(subset, key=lambda i: (-space.probabilities[i], i))
    )
    return PlanNode(subset=subset, scan=True, scan_order=order)


def splitting_options(
    space: OptionSpace, subset: frozenset[int]
) -> list[tuple[Hashable, frozenset[int], frozenset[int]]]:
    """Options that genuinely split ``subset`` (both branches non-empty)."""
    out: list[tuple[Hashable, frozenset[int], frozenset[int]]] = []
    for option, covered in sorted(space.options.items(), key=lambda kv: repr(kv[0])):
        inside = covered & subset
        outside = subset - inside
        if inside and outside:
            out.append((option, inside, outside))
    return out
