"""Query-interpretation ranking (the ranking-centric interface, §3.5.5).

Ranks the complete interpretation space of a keyword query by the
probabilistic model — the "Rank (IQP)" configuration of Fig. 3.6 — and
locates the rank of a ground-truth interpretation, which is the interaction
cost of the ranking interface (the user scans the ordered list).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generator import InterpretationGenerator
from repro.core.interpretation import Interpretation
from repro.core.keywords import KeywordQuery
from repro.core.probability import ProbabilityModel, rank_interpretations
from repro.engine import QueryEngine, resolve_generator_and_model
from repro.user.oracle import IntendedInterpretation


@dataclass(frozen=True)
class RankedInterpretation:
    rank: int  # 1-based
    interpretation: Interpretation
    probability: float


class Ranker:
    """Ranks interpretation spaces with a pluggable probabilistic model."""

    def __init__(
        self,
        engine: QueryEngine | InterpretationGenerator,
        model: ProbabilityModel | None = None,
    ):
        self.generator, self.model = resolve_generator_and_model(engine, model)

    def rank(self, query: KeywordQuery) -> list[RankedInterpretation]:
        space = self.generator.interpretations(query)
        ranked = rank_interpretations(space, self.model)
        return [
            RankedInterpretation(rank=i + 1, interpretation=interp, probability=prob)
            for i, (interp, prob) in enumerate(ranked)
        ]

    def rank_of(
        self,
        query: KeywordQuery,
        intended: IntendedInterpretation,
        ranked: list[RankedInterpretation] | None = None,
    ) -> int | None:
        """1-based rank of the intended interpretation, or None if absent.

        This is the interaction cost of the ranking interface: the user must
        evaluate every interpretation prior to (and including) the intended
        one (Section 3.8.3).
        """
        entries = ranked if ranked is not None else self.rank(query)
        for entry in entries:
            if intended.matches(entry.interpretation):
                return entry.rank
        return None
