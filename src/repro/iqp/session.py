"""The interactive query construction session (Alg. 3.2 end-to-end).

Runs the greedy information-gain construction over an incrementally expanded
query hierarchy against a simulated (or programmatic) user:

1. expand the hierarchy until its top level reaches the threshold ``T``,
2. score every candidate query construction option by information gain,
3. present the best option; the user accepts or rejects it; prune the
   frontier accordingly,
4. repeat until at most ``stop_size`` complete interpretations remain — the
   point at which the user "is able to quickly identify the intended query"
   (Section 3.8.2).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from typing import Callable

from repro.core.generator import InterpretationGenerator
from repro.core.hierarchy import QueryHierarchy
from repro.core.interpretation import Interpretation
from repro.core.keywords import KeywordQuery
from repro.core.options import Option
from repro.core.probability import ProbabilityModel
from repro.engine import QueryEngine, resolve_generator_and_model
from repro.iqp.infogain import information_gain
from repro.user.oracle import SimulatedUser

#: Produces the candidate QCOs at each construction step.  The default offers
#: the frontier atoms (Chapter 3); FreeQ substitutes ontology-based QCOs
#: (Chapter 5).
OptionProvider = Callable[[QueryHierarchy], list[Option]]


@dataclass
class ConstructionResult:
    """Outcome of one construction session."""

    options_evaluated: int
    success: bool
    final_candidates: list[Interpretation] = field(default_factory=list)
    #: 1-based position of the intended interpretation in the final shortlist
    #: (None when construction failed).
    shortlist_rank: int | None = None
    generated_nodes: int = 0
    expansions: int = 0
    #: Wall-clock seconds spent computing each presented option.
    option_times: list[float] = field(default_factory=list)
    #: Dialogue transcript: (option description, user accepted?).
    transcript: list[tuple[str, bool]] = field(default_factory=list)

    @property
    def mean_option_time(self) -> float:
        if not self.option_times:
            return 0.0
        return sum(self.option_times) / len(self.option_times)


class ConstructionSession:
    """One IQP construction dialogue for one keyword query."""

    def __init__(
        self,
        query: KeywordQuery,
        engine: QueryEngine | InterpretationGenerator,
        model: ProbabilityModel | None = None,
        threshold: int = 20,
        stop_size: int = 5,
        max_frontier: int = 10_000,
        max_steps: int = 500,
        option_provider: OptionProvider | None = None,
        selection_policy: str = "infogain",
        policy_seed: int = 0,
    ):
        if threshold < 1:
            raise ValueError("threshold must be positive")
        if selection_policy not in ("infogain", "random"):
            raise ValueError("selection_policy must be 'infogain' or 'random'")
        self.query = query
        self.generator, self.model = resolve_generator_and_model(engine, model)
        self.threshold = threshold
        self.stop_size = stop_size
        self.max_frontier = max_frontier
        self.max_steps = max_steps
        self.option_provider: OptionProvider = option_provider or (
            lambda hierarchy: hierarchy.frontier_atoms()
        )
        #: "infogain" is Alg. 3.2; "random" is the ablation control that
        #: presents an arbitrary splitting option at each step.
        self.selection_policy = selection_policy
        self._policy_rng = random.Random(policy_seed)

    # -- option scoring ----------------------------------------------------

    def _best_option(self, hierarchy: QueryHierarchy) -> Option | None:
        """The next option per the selection policy, if any splits the frontier."""
        weights = [node.weight for node in hierarchy.frontier]
        splitting: list[Option] = []
        best_gain = 0.0
        best_option: Option | None = None
        for option in self.option_provider(hierarchy):
            pattern = [option.matches(node.atoms) for node in hierarchy.frontier]
            if all(pattern) or not any(pattern):
                continue  # does not split the frontier: zero information
            if self.selection_policy == "random":
                splitting.append(option)
                continue
            gain = information_gain(weights, pattern)
            if gain > best_gain:
                best_gain = gain
                best_option = option
        if self.selection_policy == "random":
            if not splitting:
                return None
            return self._policy_rng.choice(splitting)
        return best_option

    # -- main loop -----------------------------------------------------------

    def run(self, user: SimulatedUser) -> ConstructionResult:
        hierarchy = QueryHierarchy(
            self.query, self.generator, self.model, max_frontier=self.max_frontier
        )
        expansions = 0
        option_times: list[float] = []
        transcript: list[tuple[str, bool]] = []
        steps = 0
        while steps < self.max_steps:
            steps += 1
            # Alg. 3.2: keep the top level at least threshold-sized while
            # expansion is possible.
            while hierarchy.can_expand() and len(hierarchy) < self.threshold:
                hierarchy.expand_once()
                expansions += 1
            if not hierarchy.frontier:
                return ConstructionResult(
                    options_evaluated=user.evaluations,
                    success=False,
                    generated_nodes=hierarchy.generated_nodes,
                    expansions=expansions,
                    option_times=option_times,
                    transcript=transcript,
                )
            if hierarchy.at_complete_level() and len(hierarchy) <= self.stop_size:
                break
            started = time.perf_counter()
            option = self._best_option(hierarchy)
            option_times.append(time.perf_counter() - started)
            if option is None:
                if hierarchy.can_expand():
                    hierarchy.expand_once()
                    expansions += 1
                    continue
                break  # nothing distinguishes the frontier; hand over shortlist
            accepted = user.evaluate(option)
            transcript.append((option.describe(), accepted))
            if accepted:
                hierarchy.accept(option)
            else:
                hierarchy.reject(option)

        hierarchy.expand_to_complete()
        candidates = hierarchy.complete_interpretations()
        probabilities = hierarchy.frontier_probabilities()
        order = sorted(
            range(len(candidates)),
            key=lambda i: (-probabilities[i] if i < len(probabilities) else 0.0, i),
        )
        shortlist = [candidates[i] for i in order]
        shortlist_rank = None
        for position, interp in enumerate(shortlist, start=1):
            if user.picks(interp):
                shortlist_rank = position
                break
        return ConstructionResult(
            options_evaluated=user.evaluations,
            success=shortlist_rank is not None,
            final_candidates=shortlist,
            shortlist_rank=shortlist_rank,
            generated_nodes=hierarchy.generated_nodes,
            expansions=expansions,
            option_times=option_times,
            transcript=transcript,
        )
