"""Network serving and load generation.

The package that takes :class:`repro.server.QueryServer` onto a real
socket and measures it:

* :mod:`repro.net.protocol` — the newline-delimited JSON wire protocol
  (request/response shapes, error codes, incremental line framing with an
  oversize guard).
* :mod:`repro.net.listener` — the asyncio TCP listener with admission
  control: connection limits, a bounded in-flight queue with explicit
  overload rejection, per-request timeouts, graceful drain on SIGTERM and
  a fork-per-worker multi-process mode.
* :mod:`repro.net.http` — the HTTP/1.1 front end (``serve --http``):
  a hand-rolled ``Content-Length``-framed parser and a request router
  composing over the same listener admission core, so curl and the TCP
  protocol share one connection cap, queue, drain and stats block.
* :mod:`repro.net.loadgen` — open- and closed-loop asyncio load clients
  behind ``repro bench-load`` (TCP and HTTP transports).
* :mod:`repro.net.monitor` — CPU/RSS sampling of the server process from
  ``/proc`` (stdlib only).
* :mod:`repro.net.results` — schema-versioned ``BENCH_serve_*.json``
  records: build, persist, validate.
"""

from importlib import import_module

#: Public name -> defining submodule.  Resolved lazily so ``python -m
#: repro.net.results`` (the CI validation entry point) does not import the
#: whole serving stack first — runpy would warn about the double import.
_EXPORTS = {
    "HTTPQueryServer": "repro.net.http",
    "TCPQueryServer": "repro.net.listener",
    "TCPServerConfig": "repro.net.listener",
    "run_tcp_server": "repro.net.listener",
    "run_bench_load": "repro.net.loadgen",
    "ResourceMonitor": "repro.net.monitor",
    "BENCH_SCHEMA_VERSION": "repro.net.results",
    "build_bench_report": "repro.net.results",
    "validate_bench_report": "repro.net.results",
    "write_bench_report": "repro.net.results",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: subsequent lookups skip this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "HTTPQueryServer",
    "ResourceMonitor",
    "TCPQueryServer",
    "TCPServerConfig",
    "build_bench_report",
    "run_bench_load",
    "run_tcp_server",
    "validate_bench_report",
    "write_bench_report",
]
