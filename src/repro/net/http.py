"""The HTTP/1.1 JSON front end over the TCP admission layer.

:class:`HTTPQueryServer` puts a browser/curl-reachable face on the same
:class:`~repro.net.listener.TCPQueryServer` admission core the newline-JSON
transport uses — it is a *front end*, not a second server: both transports
share one connection cap, one bounded in-flight queue, one drain flag and
one stats block, so ``--max-connections``/``--queue-limit`` bound the
process however clients arrive.  The wire contract is pinned in
``docs/http_api.md``.

Routes (:data:`ROUTES`):

* ``POST /query`` — the body is a protocol-v1 request object
  (``{"query": ..., "dataset": ..., "k": ...}``); the response body is the
  exact payload the TCP transport would answer, so rows are byte-identical
  across transports (and to ``repro query``).
* ``GET /healthz`` — liveness/readiness: ``200`` while serving, ``503``
  once draining (load balancers stop routing before the socket closes).
* ``GET /stats`` — admission counters, the engine pool's size and the
  aggregated per-request :class:`~repro.core.topk.TopKStatistics` work
  counters, as JSON.

Protocol error codes map onto HTTP statuses (:data:`STATUS_BY_ERROR`):
``malformed-request`` → 400, ``unknown-dataset`` → 404, ``timeout`` → 408,
``oversized-request`` → 413, ``overloaded``/``shutting-down``/
``too-many-connections`` → 503, ``internal-error`` → 500.  The response
body always carries the protocol-v1 ``{"ok": false, "error": ..,
"detail": ..}`` object, so HTTP clients switch on the same codes TCP
clients do; the status line is a convenience for generic tooling.

Framing is ``Content-Length`` only (a request with ``Transfer-Encoding``
is refused), with the same byte cap and discard-as-it-streams oversize
behavior as the line transport's :class:`~repro.net.protocol.LineSplitter`:
a body longer than the limit is *never buffered* — its bytes are dropped
while they stream in and the request answers ``413`` once the declared
length has passed, leaving the connection synchronized for the next
request.  Connections are keep-alive by default (``Connection: close``
honored; every response during a drain closes), and requests pipelined
into one segment are answered in order, one response per request.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket

from repro.net import protocol
from repro.net.listener import TCPQueryServer

#: The served routes, as ``(method, path)``.  ``scripts/lint_docs.py``
#: cross-checks every entry against ``docs/http_api.md``.
ROUTES: tuple[tuple[str, str], ...] = (
    ("POST", "/query"),
    ("GET", "/healthz"),
    ("GET", "/stats"),
)

#: HTTP-layer error codes (same response shape as the protocol's codes,
#: but these violations only exist once there are methods and paths).
ERR_NOT_FOUND = "not-found"
ERR_METHOD_NOT_ALLOWED = "method-not-allowed"

#: Protocol-v1 error code -> HTTP status.
STATUS_BY_ERROR: dict[str, int] = {
    protocol.ERR_MALFORMED: 400,
    protocol.ERR_UNKNOWN_DATASET: 404,
    protocol.ERR_TIMEOUT: 408,
    protocol.ERR_OVERSIZED: 413,
    protocol.ERR_OVERLOADED: 503,
    protocol.ERR_SHUTTING_DOWN: 503,
    protocol.ERR_TOO_MANY_CONNECTIONS: 503,
    protocol.ERR_INTERNAL: 500,
    ERR_NOT_FOUND: 404,
    ERR_METHOD_NOT_ALLOWED: 405,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def encode_response(
    status: int, payload: dict, *, keep_alive: bool = True
) -> bytes:
    """One full HTTP/1.1 response: status line, headers, JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def encode_query_request(
    query: str,
    dataset: str | None = None,
    k: int | None = None,
    *,
    host: str = "localhost",
) -> bytes:
    """A ``POST /query`` request, for the load harness and the tests."""
    body = protocol.encode_request(query, dataset=dataset, k=k).rstrip(b"\n")
    head = (
        "POST /query HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class HTTPParseError(Exception):
    """A violation of the HTTP framing itself (bad request line, bad
    headers, unsupported transfer coding).  Unlike a malformed *body*, the
    parser cannot know where the next request starts, so the connection
    answers 400 and closes."""

    def __init__(self, detail: str):
        super().__init__(detail)
        self.detail = detail


class HTTPRequest:
    """One parsed request: head fields plus the complete body."""

    __slots__ = ("method", "target", "version", "headers", "body", "oversized")

    def __init__(
        self,
        method: str,
        target: str,
        version: str,
        headers: dict[str, str],
        body: bytes = b"",
        oversized: bool = False,
    ):
        self.method = method
        self.target = target
        self.version = version
        #: Header names lowercased; duplicate names keep the last value.
        self.headers = headers
        self.body = body
        #: True when the declared body exceeded the limit: ``body`` is empty
        #: (the bytes were discarded while streaming) and the request must
        #: answer 413 — but the connection stays synchronized.
        self.oversized = oversized

    @property
    def path(self) -> str:
        """The target without its query string."""
        return self.target.split("?", 1)[0]

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


class HTTPRequestParser:
    """Incremental HTTP/1.1 request parsing with bounded buffering.

    ``feed(data)`` returns the :class:`HTTPRequest` objects the new bytes
    completed — several per call when requests are pipelined into one
    segment, none while a head or body is still split across reads.  The
    same byte limit applies to the head section and to the body: an
    over-limit *body* is discarded as it streams in (the buffer never grows
    past the limit — the :class:`~repro.net.protocol.LineSplitter`
    behavior) and surfaces as a request with ``oversized=True`` once its
    declared length has passed; an over-limit or malformed *head* raises
    :class:`HTTPParseError`, because without a parsed ``Content-Length``
    there is no resynchronization point.
    """

    def __init__(self, limit: int = protocol.MAX_REQUEST_BYTES):
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = limit
        self._buffer = bytearray()
        #: The head of the request whose body is still streaming in.
        self._pending: HTTPRequest | None = None
        #: Body bytes of the pending request still to come.
        self._remaining = 0
        #: True when the pending request's body is over-limit: its bytes
        #: are dropped instead of buffered.
        self._discarding = False

    def feed(self, data: bytes) -> list[HTTPRequest]:
        requests: list[HTTPRequest] = []
        self._buffer.extend(data)
        while True:
            if self._pending is not None:
                request = self._consume_body()
                if request is None:
                    return requests
                requests.append(request)
                continue
            if not self._consume_head(requests):
                return requests

    # -- head ----------------------------------------------------------------

    def _consume_head(self, requests: list[HTTPRequest]) -> bool:
        """Parse one head if complete; True when *any* progress was made
        (a body-less request appended, or a body now pending)."""
        terminator = self._buffer.find(b"\r\n\r\n")
        if terminator == -1:
            if len(self._buffer) > self.limit:
                raise HTTPParseError(
                    f"request head exceeds {self.limit} bytes"
                )
            return False
        head = bytes(self._buffer[:terminator])
        del self._buffer[: terminator + 4]
        try:
            lines = head.decode("ascii").split("\r\n")
        except UnicodeDecodeError:
            raise HTTPParseError("request head is not ASCII") from None
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[0] or not parts[1].startswith("/"):
            raise HTTPParseError(f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise HTTPParseError(f"unsupported HTTP version: {version!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator or not name.strip():
                raise HTTPParseError(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            raise HTTPParseError(
                "Transfer-Encoding is not supported; frame the body with "
                "Content-Length"
            )
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
            if length < 0:
                raise ValueError
        except ValueError:
            raise HTTPParseError(
                f"invalid Content-Length: {length_text!r}"
            ) from None
        request = HTTPRequest(method.upper(), target, version, headers)
        if length == 0:
            requests.append(request)
            return True
        self._pending = request
        self._remaining = length
        self._discarding = length > self.limit
        if self._discarding:
            request.oversized = True
        return True

    # -- body ----------------------------------------------------------------

    def _consume_body(self) -> HTTPRequest | None:
        assert self._pending is not None
        take = min(self._remaining, len(self._buffer))
        if self._discarding:
            del self._buffer[:take]  # dropped, never buffered
        else:
            self._pending.body += bytes(self._buffer[:take])
            del self._buffer[:take]
        self._remaining -= take
        if self._remaining:
            return None
        request, self._pending = self._pending, None
        self._discarding = False
        return request


class HTTPQueryServer:
    """The HTTP listener over a :class:`TCPQueryServer` admission core.

    Construction takes the core, not a pool: connection slots, the
    in-flight queue, the drain flag, per-request timeouts and the stats
    block all live in (and are shared with) the core — starting this front
    end adds a second doorway to the same room, never a second room.  The
    listening server registers with the core via ``attach_frontend`` so
    ``drain()`` closes both listening sockets and waits for both
    transports' in-flight responses.
    """

    def __init__(self, core: TCPQueryServer):
        self.core = core
        self._asyncio_server: asyncio.AbstractServer | None = None

    async def start(
        self,
        sock: socket.socket | None = None,
        host: str | None = None,
        port: int = 0,
    ) -> None:
        """Start accepting HTTP connections (the core must be started or
        starting — this front end builds no engines of its own)."""
        if sock is not None:
            self._asyncio_server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        else:
            self._asyncio_server = await asyncio.start_server(
                self._handle_connection, host or self.core.config.host, port
            )
        self.core.attach_frontend(self._asyncio_server)

    @property
    def address(self) -> tuple[str, int]:
        assert self._asyncio_server is not None, "server not started"
        return self._asyncio_server.sockets[0].getsockname()[:2]

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        core = self.core
        refusal = core.admit_connection()
        if refusal is not None:
            detail = (
                "server is draining"
                if refusal == protocol.ERR_SHUTTING_DOWN
                else f"connection limit ({core.config.max_connections}) reached"
            )
            with contextlib.suppress(ConnectionError):
                writer.write(
                    encode_response(
                        STATUS_BY_ERROR[refusal],
                        protocol.error_payload(refusal, detail),
                        keep_alive=False,
                    )
                )
                await writer.drain()
            writer.close()
            return
        core._writers.add(writer)
        parser = HTTPRequestParser(core.config.max_request_bytes)
        try:
            closing = False
            while not closing:
                data = await reader.read(8192)
                if not data:
                    break
                try:
                    requests = parser.feed(data)
                except HTTPParseError as exc:
                    # The framing itself broke: answer 400 and close — there
                    # is no known byte where the next request would begin.
                    core.stats.protocol_errors += 1
                    with core.responding():
                        writer.write(
                            encode_response(
                                400,
                                protocol.error_payload(
                                    protocol.ERR_MALFORMED, exc.detail
                                ),
                                keep_alive=False,
                            )
                        )
                        await writer.drain()
                    break
                for request in requests:
                    with core.responding():
                        response, closing = await self._respond(request)
                        writer.write(response)
                        await writer.drain()
                    if closing:
                        break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # mid-request client disconnect: this connection only
        finally:
            core.release_connection()
            core._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- request dispatch ----------------------------------------------------

    async def _respond(self, request: HTTPRequest) -> tuple[bytes, bool]:
        """One request to ``(response bytes, close connection?)``."""
        core = self.core
        # A drain closes every connection after its current answer; the
        # payload still explains itself via the shutting-down error code.
        keep_alive = request.keep_alive and not core.draining
        status, payload = await self._dispatch(request)
        return (
            encode_response(status, payload, keep_alive=keep_alive),
            not keep_alive,
        )

    async def _dispatch(self, request: HTTPRequest) -> tuple[int, dict]:
        core = self.core
        if request.oversized:
            core.stats.protocol_errors += 1
            return 413, protocol.error_payload(
                protocol.ERR_OVERSIZED,
                f"request body exceeds {core.config.max_request_bytes} bytes",
            )
        path = request.path
        if path not in {route_path for _method, route_path in ROUTES}:
            return 404, protocol.error_payload(
                ERR_NOT_FOUND, f"no such route: {path!r} (see docs/http_api.md)"
            )
        allowed = {method for method, route_path in ROUTES if route_path == path}
        if request.method not in allowed:
            return 405, protocol.error_payload(
                ERR_METHOD_NOT_ALLOWED,
                f"{path} allows {', '.join(sorted(allowed))}, "
                f"not {request.method}",
            )
        if path == "/healthz":
            return self._healthz()
        if path == "/stats":
            return 200, self._stats_payload()
        return await self._query(request)

    def _healthz(self) -> tuple[int, dict]:
        if self.core.draining:
            payload = protocol.error_payload(
                protocol.ERR_SHUTTING_DOWN, "server is draining"
            )
            payload["status"] = "draining"
            return 503, payload
        return 200, {
            "ok": True,
            "v": protocol.PROTOCOL_VERSION,
            "status": "serving",
            "datasets": list(self.core.datasets),
        }

    def _stats_payload(self) -> dict:
        core = self.core
        stats = core.stats
        return {
            "ok": True,
            "v": protocol.PROTOCOL_VERSION,
            "draining": core.draining,
            "inflight": core.inflight,
            "engine_pool": {
                "pooled_engines": core.server.pooled_engines,
                "max_workers": core.server.max_workers,
            },
            "listener": {
                "connections_accepted": stats.connections_accepted,
                "connections_rejected": stats.connections_rejected,
                "requests_served": stats.requests_served,
                "requests_rejected_overload": stats.requests_rejected_overload,
                "requests_timed_out": stats.requests_timed_out,
                "protocol_errors": stats.protocol_errors,
            },
            "engine": {
                "sql_statements": stats.engine_sql_statements,
                "cache_hits": stats.engine_cache_hits,
                "cache_misses": stats.engine_cache_misses,
                "interpretations_executed": (
                    stats.engine_interpretations_executed
                ),
                "rows_streamed": stats.engine_rows_streamed,
                "read_pool_leases": stats.engine_read_pool_leases,
                "read_pool_waits": stats.engine_read_pool_waits,
                "read_pool_peak_concurrency": stats.engine_read_pool_peak,
            },
        }

    async def _query(self, request: HTTPRequest) -> tuple[int, dict]:
        core = self.core
        try:
            parsed = protocol.parse_request(request.body)
        except protocol.ProtocolError as exc:
            core.stats.protocol_errors += 1
            return STATUS_BY_ERROR[exc.code], protocol.error_payload(
                exc.code, exc.detail
            )
        payload = await core.serve_request(parsed)
        if payload.get("ok"):
            return 200, payload
        return STATUS_BY_ERROR.get(payload["error"], 500), payload
