"""The asyncio TCP listener over the :class:`repro.server.QueryServer` pool.

:class:`TCPQueryServer` speaks the newline-delimited JSON protocol of
:mod:`repro.net.protocol` and adds the admission-control layer a network
service needs that a stdin coprocess never did:

* **Connection limit** — at most ``max_connections`` concurrent clients;
  the one over the limit receives a ``too-many-connections`` error line and
  is closed immediately (an explicit answer beats a silent accept-queue
  stall).
* **Bounded in-flight queue with overload rejection** — at most
  ``queue_limit`` requests admitted at once (executing on the engine pool's
  worker threads or queued behind them).  Request ``queue_limit + 1`` gets
  an ``overloaded`` error *now*, instead of joining an unbounded queue and
  timing out later; clients retry with backoff.
* **Per-request timeout** — a request that outlives ``request_timeout``
  answers a ``timeout`` error (its engine work finishes on the worker
  thread and is discarded; thread work cannot be interrupted midway).
* **Graceful drain** — SIGTERM (or :meth:`TCPQueryServer.drain`) closes the
  listening socket so new connections are refused at the kernel, lets every
  admitted request complete and answer, then closes the remaining client
  connections.  Requests arriving on open connections during the drain get
  a ``shutting-down`` error.

Requests on one connection are served sequentially (pipelined lines queue
in the read buffer); concurrency comes from concurrent connections, which
fan out across the engine pool's worker threads via
:class:`repro.server.AsyncQueryFrontend` — the event loop never blocks on
engine work.

:func:`run_tcp_server` is the process entry point behind ``repro serve
--tcp``.  With ``workers > 1`` it binds the socket once, forks one child
per worker (every child inherits the socket, so the kernel load-balances
accepts across their event loops — the classic pre-fork alternative to
``SO_REUSEPORT``, with the advantage that one ephemeral port is chosen
before the fork), builds each child's engine pool *after* the fork (SQLite
connections must not cross a fork) and forwards SIGTERM/SIGINT to the
children so the whole group drains together.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import socket
import sys
from dataclasses import dataclass, field
from typing import Sequence

from repro.net import protocol
from repro.server import AsyncQueryFrontend, QueryServer


@dataclass(frozen=True)
class TCPServerConfig:
    """Everything one listener needs: address, storage, admission limits."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is printed/queryable
    dataset: str = "imdb"
    backend: str = "memory"
    db_path: str | None = None
    shards: int | None = None
    #: Reader connections each backend may lease for concurrent read-only
    #: execution (None = backend default; 1 disables the pool).  Merged into
    #: the pool's :class:`~repro.engine.context.EngineConfig` so every engine
    #: the listener builds shares the knob (CLI: ``--read-pool-size``).
    read_pool_size: int | None = None
    k: int = 5
    #: Worker threads in the underlying engine pool (per process).
    engine_workers: int = 8
    max_connections: int = 64
    queue_limit: int = 32
    request_timeout: float | None = 30.0
    max_request_bytes: int = protocol.MAX_REQUEST_BYTES
    #: How long a drain waits for in-flight requests before force-closing.
    drain_timeout: float = 10.0
    #: Port of the HTTP/1.1 front end (:mod:`repro.net.http`); None disables
    #: it.  0 picks an ephemeral port, announced as ``http listening on ...``.
    http_port: int | None = None


@dataclass
class ListenerStats:
    """Counters the listener keeps (inspectable by tests, ops and /stats).

    The ``engine_*`` fields aggregate the per-request
    :class:`~repro.core.topk.TopKStatistics` of every served query, so the
    HTTP ``GET /stats`` endpoint can report engine work (statements issued,
    cache hit/miss split) without reaching into per-request contexts.
    """

    connections_accepted: int = 0
    connections_rejected: int = 0
    requests_served: int = 0
    requests_rejected_overload: int = 0
    requests_timed_out: int = 0
    protocol_errors: int = 0
    engine_sql_statements: int = 0
    engine_cache_hits: int = 0
    engine_cache_misses: int = 0
    engine_interpretations_executed: int = 0
    engine_rows_streamed: int = 0
    #: Read-connection-pool activity summed/maxed over served requests
    #: (zero on backends without a pool — memory, or ``read_pool_size=1``).
    engine_read_pool_leases: int = 0
    engine_read_pool_waits: int = 0
    engine_read_pool_peak: int = 0


class TCPQueryServer:
    """One asyncio TCP listener over one engine pool.

    The pool (a :class:`~repro.server.QueryServer`) is passed in, not
    owned: callers decide its worker count and lifetime (``repro serve
    --tcp`` wraps both in one context; tests reuse session-scoped engines
    through an ``engine_factory``).  Only datasets named in ``datasets``
    (default: the config's one) are servable — a request for anything else
    is answered ``unknown-dataset`` *before* it can reach the pool, so an
    arbitrary client line can never trigger a dataset build or leak an
    engine.
    """

    def __init__(
        self,
        server: QueryServer,
        config: TCPServerConfig | None = None,
        *,
        datasets: Sequence[str] | None = None,
    ):
        self.server = server
        self.config = config or TCPServerConfig()
        self.frontend = AsyncQueryFrontend(server)
        self.datasets = tuple(datasets) if datasets else (self.config.dataset,)
        self.stats = ListenerStats()
        self._storage = dict(
            backend=self.config.backend,
            db_path=self.config.db_path,
            shards=self.config.shards,
        )
        self._asyncio_server: asyncio.AbstractServer | None = None
        #: Listening servers of attached front ends (the HTTP transport);
        #: they share this instance's admission state and close on drain.
        self._frontends: list[asyncio.AbstractServer] = []
        self._connections = 0
        #: Requests admitted past the queue limit (engine-occupying work).
        self._inflight = 0
        #: Requests anywhere between parse and the delivered response —
        #: a superset of ``_inflight``; the drain waits on this one so the
        #: force-close can never cut off a computed-but-unwritten answer.
        self._responding = 0
        self._draining = False
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self, sock: socket.socket | None = None) -> None:
        """Prewarm the servable engines, then start accepting.

        Prewarming off the event loop keeps startup responsive to signals;
        it also makes the first request as fast as every later one and
        pins down ``pooled_engines`` for the engine-leak tests.
        """
        loop = asyncio.get_running_loop()
        for dataset in self.datasets:
            await loop.run_in_executor(
                None,
                lambda dataset=dataset: self.server.engine_for(
                    dataset, **self._storage
                ),
            )
        if sock is not None:
            self._asyncio_server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        else:
            self._asyncio_server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves an ephemeral port request)."""
        assert self._asyncio_server is not None, "server not started"
        return self._asyncio_server.sockets[0].getsockname()[:2]

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    def attach_frontend(self, server: asyncio.AbstractServer) -> None:
        """Register another transport's listening server (e.g. the HTTP
        front end) so a drain closes every listening socket, not just TCP's.

        The front end shares this instance's admission state — connection
        cap, in-flight queue, drain flag, stats — by construction: there is
        exactly one queue/cap layer however many transports sit on it.
        """
        self._frontends.append(server)

    def begin_drain(self) -> None:
        """Stop accepting immediately (new connections are refused at the
        kernel once the listening sockets close); in-flight work continues."""
        self._draining = True
        if self._asyncio_server is not None:
            self._asyncio_server.close()
        for frontend in self._frontends:
            frontend.close()

    async def drain(self) -> bool:
        """Graceful shutdown: refuse new connections, finish in-flight
        requests, then close the remaining client connections.

        Returns True when every in-flight request completed inside
        ``drain_timeout``, False when the timeout force-closed stragglers.
        """
        self.begin_drain()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while self._responding and loop.time() < deadline:
            await asyncio.sleep(0.01)
        completed = self._responding == 0
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        # Note: Server.wait_closed() is deliberately avoided — since 3.12 it
        # waits for all client handlers too, which is exactly the ordering
        # this method controls by hand.
        return completed

    # -- the shared admission layer (every transport goes through these) -----

    def admit_connection(self) -> str | None:
        """Admission decision for one new connection, any transport.

        Returns None when the connection is admitted (and counted — pair
        with :meth:`release_connection`), else the protocol error code
        refusing it.
        """
        if self._draining:
            return protocol.ERR_SHUTTING_DOWN
        if self._connections >= self.config.max_connections:
            self.stats.connections_rejected += 1
            return protocol.ERR_TOO_MANY_CONNECTIONS
        self._connections += 1
        self.stats.connections_accepted += 1
        return None

    def release_connection(self) -> None:
        self._connections -= 1

    @contextlib.contextmanager
    def responding(self):
        """Marks one request as parse-to-response-written in flight, so the
        drain cannot cut off an answer a transport is still writing."""
        self._responding += 1
        try:
            yield
        finally:
            self._responding -= 1

    async def serve_request(self, request: protocol.Request) -> dict:
        """One parsed request to one response payload (never raises).

        This is the whole per-request admission pipeline — drain check,
        dataset allow-list, bounded in-flight queue, per-request timeout —
        shared by every transport: the TCP listener encodes the returned
        payload as a wire line, the HTTP front end as a response body with
        the status mapped from the ``error`` code.
        """
        if self._draining:
            return protocol.error_payload(
                protocol.ERR_SHUTTING_DOWN, "server is draining"
            )
        dataset = request.dataset or self.config.dataset
        if dataset not in self.datasets:
            return protocol.error_payload(
                protocol.ERR_UNKNOWN_DATASET,
                f"dataset {dataset!r} is not served here "
                f"(serving: {', '.join(self.datasets)})",
            )
        if self._inflight >= self.config.queue_limit:
            self.stats.requests_rejected_overload += 1
            return protocol.error_payload(
                protocol.ERR_OVERLOADED,
                f"in-flight queue full ({self.config.queue_limit}); retry with backoff",
            )
        k = request.k or self.config.k
        self._inflight += 1
        try:
            pending = self.frontend.query(dataset, request.query, k, **self._storage)
            if self.config.request_timeout is not None:
                response = await asyncio.wait_for(
                    pending, self.config.request_timeout
                )
            else:
                response = await pending
        except asyncio.TimeoutError:
            self.stats.requests_timed_out += 1
            return protocol.error_payload(
                protocol.ERR_TIMEOUT,
                f"request exceeded {self.config.request_timeout} s "
                "(its engine work completes on the worker and is discarded)",
            )
        except Exception as exc:  # noqa: BLE001 - a request must never kill the loop
            return protocol.error_payload(protocol.ERR_INTERNAL, str(exc))
        finally:
            self._inflight -= 1
        self.stats.requests_served += 1
        statistics = response.context.executor_statistics
        self.stats.engine_sql_statements += statistics.sql_statements
        self.stats.engine_cache_hits += statistics.cache_hits
        self.stats.engine_cache_misses += statistics.cache_misses
        self.stats.engine_interpretations_executed += (
            statistics.interpretations_executed
        )
        self.stats.engine_rows_streamed += statistics.rows_streamed
        pool = statistics.read_pool
        if pool:
            self.stats.engine_read_pool_leases += pool.get("leases", 0)
            self.stats.engine_read_pool_waits += pool.get("waits", 0)
            self.stats.engine_read_pool_peak = max(
                self.stats.engine_read_pool_peak, pool.get("peak_concurrency", 0)
            )
        return protocol.ok_payload(dataset, request.query, k, response)

    # -- connection handling (the TCP line transport) ------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        refusal = self.admit_connection()
        if refusal is not None:
            detail = (
                "server is draining"
                if refusal == protocol.ERR_SHUTTING_DOWN
                else f"connection limit ({self.config.max_connections}) reached"
            )
            with contextlib.suppress(ConnectionError):
                writer.write(protocol.error_response(refusal, detail))
                await writer.drain()
            writer.close()
            return
        self._writers.add(writer)
        splitter = protocol.LineSplitter(self.config.max_request_bytes)
        try:
            while True:
                data = await reader.read(8192)
                if not data:
                    break
                for item in splitter.feed(data):
                    if item is not protocol.OVERSIZED and not item.strip():
                        continue
                    with self.responding():
                        if item is protocol.OVERSIZED:
                            self.stats.protocol_errors += 1
                            response = protocol.error_response(
                                protocol.ERR_OVERSIZED,
                                "request line exceeds "
                                f"{self.config.max_request_bytes} bytes",
                            )
                        else:
                            response = await self._serve_line(item)
                        writer.write(response)
                        await writer.drain()
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # mid-request client disconnect: this connection only
        finally:
            self.release_connection()
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_line(self, line: bytes) -> bytes:
        """One request line to one response line (never raises)."""
        try:
            request = protocol.parse_request(line)
        except protocol.ProtocolError as exc:
            self.stats.protocol_errors += 1
            return protocol.error_response(exc.code, exc.detail)
        return protocol.encode_line(await self.serve_request(request))


# -- process entry point (repro serve --tcp) ----------------------------------


def _bind(config: TCPServerConfig, port: int | None = None) -> socket.socket:
    """A pre-bound listening socket every worker process will share."""
    sock = socket.create_server(
        (config.host, config.port if port is None else port),
        backlog=128,
        reuse_port=False,
    )
    sock.setblocking(False)
    return sock


async def _serve_async(
    sock: socket.socket,
    config: TCPServerConfig,
    *,
    http_sock: socket.socket | None = None,
    engine_config=None,
    engine_factory=None,
    announce: bool = True,
) -> int:
    """One worker's event loop: pool + listener(s) + signal-driven drain."""
    if config.read_pool_size is not None:
        from dataclasses import replace

        from repro.engine.context import EngineConfig

        engine_config = replace(
            engine_config or EngineConfig(), read_pool_size=config.read_pool_size
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread / platform without loop signal support
    with QueryServer(
        max_workers=config.engine_workers,
        engine_config=engine_config,
        engine_factory=engine_factory,
    ) as pool:
        tcp = TCPQueryServer(pool, config)
        await tcp.start(sock=sock)
        http_address = ""
        if http_sock is not None:
            from repro.net.http import HTTPQueryServer

            front = HTTPQueryServer(tcp)
            await front.start(sock=http_sock)
            http_address = " http={}:{}".format(*front.address)
        if announce:
            host, port = tcp.address
            print(
                f"serving dataset={config.dataset} backend={config.backend} "
                f"tcp={host}:{port}{http_address} "
                f"queue-limit={config.queue_limit} "
                f"max-connections={config.max_connections}",
                flush=True,
            )
        await stop.wait()
        completed = await tcp.drain()
    return 0 if completed else 1


def _run_worker(
    sock: socket.socket,
    config: TCPServerConfig,
    *,
    http_sock: socket.socket | None = None,
    engine_config=None,
    engine_factory=None,
    announce: bool = True,
) -> int:
    return asyncio.run(
        _serve_async(
            sock,
            config,
            http_sock=http_sock,
            engine_config=engine_config,
            engine_factory=engine_factory,
            announce=announce,
        )
    )


def run_tcp_server(
    config: TCPServerConfig,
    *,
    workers: int = 1,
    engine_config=None,
    engine_factory=None,
) -> int:
    """Bind, announce, serve until SIGTERM/SIGINT, drain, exit.

    Prints ``listening on <host>:<port>`` first (port 0 resolves to the
    kernel's pick), which is the readiness line ``repro bench-load
    --spawn`` and the tests parse; with ``config.http_port`` set, an
    ``http listening on <host>:<port>`` line follows for the HTTP front
    end's socket.  With ``workers > 1`` the sockets are bound once and one
    child per worker is forked to serve on them; engine pools are built
    after the fork (each child prewarms its own), and the parent forwards
    termination signals and reaps the group.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    sock = _bind(config)
    host, port = sock.getsockname()[:2]
    print(f"listening on {host}:{port}", flush=True)
    http_sock: socket.socket | None = None
    if config.http_port is not None:
        http_sock = _bind(config, port=config.http_port)
        http_host, http_port = http_sock.getsockname()[:2]
        print(f"http listening on {http_host}:{http_port}", flush=True)
    if workers == 1 or not hasattr(os, "fork"):
        if workers > 1:  # pragma: no cover - no-fork platforms only
            print("fork unavailable; serving with 1 worker", flush=True)
        try:
            return _run_worker(
                sock,
                config,
                http_sock=http_sock,
                engine_config=engine_config,
                engine_factory=engine_factory,
            )
        finally:
            sock.close()
            if http_sock is not None:
                http_sock.close()

    pids: list[int] = []
    for index in range(workers):
        pid = os.fork()
        if pid == 0:  # child: serve on the inherited sockets, then hard-exit
            status = 1
            try:
                status = _run_worker(
                    sock,
                    config,
                    http_sock=http_sock,
                    engine_config=engine_config,
                    engine_factory=engine_factory,
                    announce=(index == 0),
                )
            finally:
                os._exit(status)
        pids.append(pid)
    sock.close()
    if http_sock is not None:
        http_sock.close()

    def forward(signum: int, _frame) -> None:
        for pid in pids:
            with contextlib.suppress(ProcessLookupError):
                os.kill(pid, signum)

    previous = {
        signum: signal.signal(signum, forward)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        status = 0
        for pid in pids:
            _pid, raw = os.waitpid(pid, 0)
            if os.WIFEXITED(raw):
                status = max(status, os.WEXITSTATUS(raw))
            else:  # killed by an unforwarded signal
                status = max(status, 1)
        return status
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


if __name__ == "__main__":  # pragma: no cover - debugging aid
    sys.exit(run_tcp_server(TCPServerConfig(port=7341)))
