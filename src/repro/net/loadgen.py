"""Open- and closed-loop load generation against a live TCP server.

``repro bench-load`` drives the protocol of :mod:`repro.net.protocol`
with asyncio clients and persists every run as a schema-versioned
``BENCH_serve_*.json`` record (:mod:`repro.net.results`):

* **Closed loop** — N persistent connections, each issuing its next
  request the moment the previous answer lands.  Measures the server's
  sustainable throughput at a fixed concurrency (latency and throughput
  are coupled: a slow server slows the clients down).
* **Open loop** — requests depart on a fixed schedule (``rate`` per
  second) regardless of completions, the way real traffic arrives.
  In-flight requests pile up when the server falls behind, which is
  exactly what makes open-loop numbers honest about saturation — and what
  exercises the listener's overload rejection.

Per-request outcomes are bucketed (``ok`` / ``overloaded`` / ``timeout`` /
``error`` / ``transport_error``); only ``ok`` round trips feed the latency
percentiles, so a fast overload rejection cannot flatter p50.  While the
clients run, :class:`repro.net.monitor.ResourceMonitor` samples the server
process's CPU/RSS (when a pid is known — ``--spawn`` always knows it).
"""

from __future__ import annotations

import asyncio
import contextlib
import datetime as _datetime
import os
import random
import re
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.net import protocol
from repro.net.monitor import ResourceMonitor
from repro.net.results import build_bench_report, write_bench_report

#: Deterministic per-dataset query mixes (same vocabulary the serve bench
#: and the test-suite use) — the load client must not need to build the
#: dataset just to know what to ask.
DEFAULT_QUERIES: dict[str, list[str]] = {
    "imdb": ["hanks 2001", "london", "summer", "stone hill", "hanks", "2001"],
    "lyrics": ["london", "summer", "night", "love"],
}


@dataclass
class LoadRun:
    """Raw per-request data of one load run (pre-report)."""

    latencies_ms: list[float] = field(default_factory=list)
    outcomes: dict[str, int] = field(
        default_factory=lambda: {
            "ok": 0,
            "overloaded": 0,
            "timeout": 0,
            "error": 0,
            "transport_error": 0,
        }
    )
    duration_seconds: float = 0.0

    def book(self, outcome: str, latency_ms: float | None) -> None:
        self.outcomes[outcome] += 1
        if outcome == "ok" and latency_ms is not None:
            self.latencies_ms.append(latency_ms)


def _classify(payload: dict) -> str:
    if payload.get("ok"):
        return "ok"
    error = payload.get("error")
    if error == protocol.ERR_OVERLOADED:
        return "overloaded"
    if error == protocol.ERR_TIMEOUT:
        return "timeout"
    return "error"


async def _roundtrip(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    request: bytes,
    timeout: float,
) -> tuple[str, float | None]:
    """One request/response cycle on an open connection."""
    import json

    started = time.perf_counter()
    try:
        writer.write(request)
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
    except (ConnectionError, asyncio.TimeoutError, asyncio.IncompleteReadError, OSError):
        return "transport_error", None
    if not line:
        return "transport_error", None
    latency_ms = (time.perf_counter() - started) * 1000.0
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return "transport_error", None
    return _classify(payload), latency_ms


def _request_for(rng: random.Random, dataset: str, k: int) -> bytes:
    texts = DEFAULT_QUERIES.get(dataset, DEFAULT_QUERIES["imdb"])
    return protocol.encode_request(rng.choice(texts), dataset=dataset, k=k)


async def run_closed_loop(
    host: str,
    port: int,
    *,
    connections: int = 8,
    requests: int = 200,
    dataset: str = "imdb",
    k: int = 5,
    timeout: float = 30.0,
    seed: int = 13,
) -> LoadRun:
    """``connections`` persistent clients, back-to-back requests, ``requests`` total."""
    run = LoadRun()
    per_client = [requests // connections] * connections
    for index in range(requests % connections):
        per_client[index] += 1

    async def client(index: int) -> None:
        rng = random.Random(f"{seed}/closed/{index}")
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            for _ in range(per_client[index]):
                run.book("transport_error", None)
            return
        try:
            for _ in range(per_client[index]):
                outcome, latency_ms = await _roundtrip(
                    reader, writer, _request_for(rng, dataset, k), timeout
                )
                run.book(outcome, latency_ms)
                if outcome == "transport_error":
                    return  # the connection is gone; stop this client
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    started = time.perf_counter()
    await asyncio.gather(*(client(index) for index in range(connections)))
    run.duration_seconds = time.perf_counter() - started
    return run


async def run_open_loop(
    host: str,
    port: int,
    *,
    rate: float = 50.0,
    requests: int = 200,
    dataset: str = "imdb",
    k: int = 5,
    timeout: float = 30.0,
    seed: int = 13,
) -> LoadRun:
    """``requests`` departures at ``rate``/s, regardless of completions.

    Each in-flight request rides its own pooled connection (requests on one
    connection would serialize server-side and close the loop by accident);
    connections are reused once their previous request answered.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    run = LoadRun()
    rng = random.Random(f"{seed}/open")
    idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
    opened: list[asyncio.StreamWriter] = []

    async def fire(request: bytes) -> None:
        if idle:
            reader, writer = idle.pop()
        else:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                run.book("transport_error", None)
                return
            opened.append(writer)
        outcome, latency_ms = await _roundtrip(reader, writer, request, timeout)
        run.book(outcome, latency_ms)
        if outcome == "transport_error":
            writer.close()
        else:
            idle.append((reader, writer))

    started = time.perf_counter()
    interval = 1.0 / rate
    tasks = []
    for index in range(requests):
        due = started + index * interval
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(_request_for(rng, dataset, k))))
    await asyncio.gather(*tasks)
    run.duration_seconds = time.perf_counter() - started
    for writer in opened:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
    return run


# -- orchestration (repro bench-load) -----------------------------------------


@dataclass
class SpawnedServer:
    """A ``repro serve --tcp`` child process and its parsed address."""

    process: subprocess.Popen
    host: str
    port: int

    @property
    def pid(self) -> int:
        return self.process.pid

    def terminate(self, timeout: float = 15.0) -> int:
        """SIGTERM (graceful drain) and reap; SIGKILL only past ``timeout``."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
                self.process.kill()
                self.process.wait()
        return self.process.returncode


_LISTENING_RE = re.compile(r"listening on ([^\s:]+):(\d+)")


def spawn_tcp_server(
    *,
    dataset: str = "imdb",
    backend: str = "memory",
    db_path: str | None = None,
    shards: int | None = None,
    workers: int = 1,
    extra_args: list[str] | None = None,
    startup_timeout: float = 60.0,
) -> SpawnedServer:
    """Launch ``repro serve --tcp --port 0`` as a child and parse its address.

    The child runs with this interpreter and this checkout on
    ``PYTHONPATH``, so the spawned server always matches the code under
    test.  Blocks until the readiness line appears (the socket is bound
    before the line prints, so a connect after this returns succeeds).
    """
    package_root = str(Path(__file__).resolve().parents[2])  # .../src
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--tcp",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--dataset",
        dataset,
        "--backend",
        backend,
        "--tcp-workers",
        str(workers),
    ]
    if db_path is not None:
        argv += ["--db-path", str(db_path)]
    if shards is not None:
        argv += ["--shards", str(shards)]
    argv += extra_args or []
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True
    )
    deadline = time.monotonic() + startup_timeout
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if line:
            match = _LISTENING_RE.search(line)
            if match:
                return SpawnedServer(
                    process=process, host=match.group(1), port=int(match.group(2))
                )
        if process.poll() is not None or time.monotonic() > deadline:
            with contextlib.suppress(Exception):
                process.kill()
            raise RuntimeError(
                f"spawned server did not become ready: {' '.join(argv)}"
            )


def run_bench_load(
    host: str,
    port: int,
    *,
    mode: str = "closed",
    connections: int = 8,
    requests: int = 200,
    rate: float = 50.0,
    dataset: str = "imdb",
    backend: str = "memory",
    k: int = 5,
    timeout: float = 30.0,
    seed: int = 13,
    label: str | None = None,
    server_pid: int | None = None,
    output_dir: str | Path | None = ".",
    monitor_interval: float = 0.1,
) -> tuple[dict, Path | None]:
    """One full bench run: load + resource sampling → validated-shape record.

    Returns ``(record, path)``; ``path`` is None when ``output_dir`` is
    None (persistence skipped — the in-process tests build records
    without touching the working tree).
    """
    if mode not in ("closed", "open"):
        raise ValueError("mode must be 'closed' or 'open'")
    label = label or f"{mode}-{backend}-{dataset}"
    started_at = _datetime.datetime.now(_datetime.timezone.utc).isoformat(
        timespec="seconds"
    )
    monitor = (
        ResourceMonitor(server_pid, interval=monitor_interval)
        if server_pid is not None
        else None
    )
    if monitor is not None:
        monitor.start()
    try:
        if mode == "closed":
            run = asyncio.run(
                run_closed_loop(
                    host,
                    port,
                    connections=connections,
                    requests=requests,
                    dataset=dataset,
                    k=k,
                    timeout=timeout,
                    seed=seed,
                )
            )
        else:
            run = asyncio.run(
                run_open_loop(
                    host,
                    port,
                    rate=rate,
                    requests=requests,
                    dataset=dataset,
                    k=k,
                    timeout=timeout,
                    seed=seed,
                )
            )
    finally:
        samples = monitor.stop() if monitor is not None else []
    record = build_bench_report(
        config={
            "mode": mode,
            "dataset": dataset,
            "backend": backend,
            "connections": connections,
            "requests": requests,
            "rate": rate if mode == "open" else None,
            "k": k,
            "seed": seed,
            "host": host,
            "port": port,
            "label": label,
        },
        latencies_ms=run.latencies_ms,
        outcomes=run.outcomes,
        duration_seconds=run.duration_seconds,
        samples=samples,
        started_at=started_at,
    )
    path = None
    if output_dir is not None:
        path = write_bench_report(record, output_dir)
    return record, path


def summary_lines(record: dict, path: Path | None) -> list[str]:
    """The human-readable summary ``repro bench-load`` prints."""
    config = record["config"]
    latency = record["latency_ms"]
    outcomes = record["outcomes"]
    resources = record["resources"]
    lines = [
        f"mode={config['mode']} dataset={config['dataset']} "
        f"backend={config['backend']} connections={config['connections']} "
        f"requests={config['requests']}"
        + (f" rate={config['rate']}/s" if config.get("rate") else ""),
        f"load phase: {record['duration_seconds']:.3f} s   "
        f"throughput: {record['throughput_qps']:.1f} q/s",
        f"latency (ok only): p50 {latency['p50']:.2f} ms   "
        f"p95 {latency['p95']:.2f} ms   p99 {latency['p99']:.2f} ms   "
        f"max {latency['max']:.2f} ms",
        "outcomes: "
        + "  ".join(f"{key}={outcomes[key]}" for key in sorted(outcomes)),
    ]
    if resources["samples"]:
        lines.append(
            f"server resources: peak RSS "
            f"{resources['peak_rss_bytes'] / (1024 * 1024):.1f} MiB   "
            f"mean CPU {resources['mean_cpu_percent']:.1f}% "
            f"({len(resources['samples'])} samples)"
        )
    else:
        lines.append("server resources: not sampled (no server pid)")
    if path is not None:
        lines.append(f"persisted: {path}")
    return lines
