"""Open- and closed-loop load generation against a live server.

``repro bench-load`` drives either transport — the newline-JSON protocol
of :mod:`repro.net.protocol` (default) or the HTTP/1.1 front end of
:mod:`repro.net.http` (``--http``; keep-alive ``POST /query`` requests on
the same persistent connections) — with asyncio clients and persists every
run as a schema-versioned ``BENCH_serve_*.json`` record
(:mod:`repro.net.results`):

* **Closed loop** — N persistent connections, each issuing its next
  request the moment the previous answer lands.  Measures the server's
  sustainable throughput at a fixed concurrency (latency and throughput
  are coupled: a slow server slows the clients down).
* **Open loop** — requests depart on a fixed schedule (``rate`` per
  second) regardless of completions, the way real traffic arrives.
  In-flight requests pile up when the server falls behind, which is
  exactly what makes open-loop numbers honest about saturation — and what
  exercises the listener's overload rejection.

Per-request outcomes are bucketed (``ok`` / ``overloaded`` / ``timeout`` /
``error`` / ``transport_error``); only ``ok`` round trips feed the latency
percentiles, so a fast overload rejection cannot flatter p50.  While the
clients run, :class:`repro.net.monitor.ResourceMonitor` samples the server
process's CPU/RSS (when a pid is known — ``--spawn`` always knows it).
"""

from __future__ import annotations

import asyncio
import contextlib
import datetime as _datetime
import os
import random
import re
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.net import protocol
from repro.net.monitor import ResourceMonitor
from repro.net.results import build_bench_report, write_bench_report

#: Deterministic per-dataset query mixes (same vocabulary the serve bench
#: and the test-suite use) — the load client must not need to build the
#: dataset just to know what to ask.
DEFAULT_QUERIES: dict[str, list[str]] = {
    "imdb": ["hanks 2001", "london", "summer", "stone hill", "hanks", "2001"],
    "lyrics": ["london", "summer", "night", "love"],
}


@dataclass
class LoadRun:
    """Raw per-request data of one load run (pre-report)."""

    latencies_ms: list[float] = field(default_factory=list)
    outcomes: dict[str, int] = field(
        default_factory=lambda: {
            "ok": 0,
            "overloaded": 0,
            "timeout": 0,
            "error": 0,
            "transport_error": 0,
        }
    )
    duration_seconds: float = 0.0

    def book(self, outcome: str, latency_ms: float | None) -> None:
        self.outcomes[outcome] += 1
        if outcome == "ok" and latency_ms is not None:
            self.latencies_ms.append(latency_ms)


def _classify(payload: dict) -> str:
    if payload.get("ok"):
        return "ok"
    error = payload.get("error")
    if error == protocol.ERR_OVERLOADED:
        return "overloaded"
    if error == protocol.ERR_TIMEOUT:
        return "timeout"
    return "error"


async def _read_payload_tcp(reader: asyncio.StreamReader) -> dict:
    """One newline-framed response to its parsed JSON payload."""
    import json

    line = await reader.readline()
    if not line:
        raise ConnectionResetError("connection closed mid-response")
    return json.loads(line)


async def _read_payload_http(reader: asyncio.StreamReader) -> dict:
    """One ``Content-Length``-framed HTTP response to its JSON body.

    Only the body travels back to the caller — outcome classification runs
    on the protocol-v1 ``ok``/``error`` fields, the same as over TCP, so
    the status line is not needed.
    """
    import json

    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _separator, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value)
    return json.loads(await reader.readexactly(length))


async def _roundtrip(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    request: bytes,
    timeout: float,
    transport: str = "tcp",
) -> tuple[str, float | None]:
    """One request/response cycle on an open connection.

    The response read runs as an explicit task so a transport error while
    *writing* (the server can answer-and-close before the request is fully
    sent — HTTP servers do exactly that on a 400) cannot leave a pending
    reader behind: the ``finally`` always cancels and awaits it, and
    cancelling a ``StreamReader`` read also releases the stream for the
    connection's next user.
    """
    started = time.perf_counter()
    read = _read_payload_http if transport == "http" else _read_payload_tcp
    reader_task = asyncio.ensure_future(read(reader))
    try:
        try:
            writer.write(request)
            await writer.drain()
            payload = await asyncio.wait_for(asyncio.shield(reader_task), timeout)
        except (
            ConnectionError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            OSError,
            ValueError,  # covers json.JSONDecodeError and a bad Content-Length
        ):
            return "transport_error", None
        return _classify(payload), (time.perf_counter() - started) * 1000.0
    finally:
        if not reader_task.done():
            reader_task.cancel()
        with contextlib.suppress(Exception, asyncio.CancelledError):
            await reader_task


def _request_for(
    rng: random.Random, dataset: str, k: int, transport: str = "tcp"
) -> bytes:
    texts = DEFAULT_QUERIES.get(dataset, DEFAULT_QUERIES["imdb"])
    text = rng.choice(texts)
    if transport == "http":
        from repro.net.http import encode_query_request

        return encode_query_request(text, dataset=dataset, k=k)
    return protocol.encode_request(text, dataset=dataset, k=k)


async def run_closed_loop(
    host: str,
    port: int,
    *,
    connections: int = 8,
    requests: int = 200,
    dataset: str = "imdb",
    k: int = 5,
    timeout: float = 30.0,
    seed: int = 13,
    transport: str = "tcp",
) -> LoadRun:
    """``connections`` persistent clients, back-to-back requests, ``requests`` total."""
    run = LoadRun()
    per_client = [requests // connections] * connections
    for index in range(requests % connections):
        per_client[index] += 1

    async def client(index: int) -> None:
        rng = random.Random(f"{seed}/closed/{index}")
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            for _ in range(per_client[index]):
                run.book("transport_error", None)
            return
        try:
            for _ in range(per_client[index]):
                outcome, latency_ms = await _roundtrip(
                    reader,
                    writer,
                    _request_for(rng, dataset, k, transport),
                    timeout,
                    transport,
                )
                run.book(outcome, latency_ms)
                if outcome == "transport_error":
                    return  # the connection is gone; stop this client
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    started = time.perf_counter()
    await asyncio.gather(*(client(index) for index in range(connections)))
    run.duration_seconds = time.perf_counter() - started
    return run


async def run_open_loop(
    host: str,
    port: int,
    *,
    rate: float = 50.0,
    requests: int = 200,
    dataset: str = "imdb",
    k: int = 5,
    timeout: float = 30.0,
    seed: int = 13,
    transport: str = "tcp",
) -> LoadRun:
    """``requests`` departures at ``rate``/s, regardless of completions.

    Each in-flight request rides its own pooled connection (requests on one
    connection would serialize server-side and close the loop by accident);
    connections are reused once their previous request answered.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    run = LoadRun()
    rng = random.Random(f"{seed}/open")
    idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
    opened: list[asyncio.StreamWriter] = []

    async def fire(request: bytes) -> None:
        if idle:
            reader, writer = idle.pop()
        else:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                run.book("transport_error", None)
                return
            opened.append(writer)
        outcome, latency_ms = await _roundtrip(
            reader, writer, request, timeout, transport
        )
        run.book(outcome, latency_ms)
        if outcome == "transport_error":
            writer.close()
        else:
            idle.append((reader, writer))

    started = time.perf_counter()
    interval = 1.0 / rate
    tasks = []
    for index in range(requests):
        due = started + index * interval
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(fire(_request_for(rng, dataset, k, transport)))
        )
    await asyncio.gather(*tasks)
    run.duration_seconds = time.perf_counter() - started
    for writer in opened:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
    return run


# -- orchestration (repro bench-load) -----------------------------------------


@dataclass
class SpawnedServer:
    """A ``repro serve --tcp`` child process and its parsed address(es)."""

    process: subprocess.Popen
    host: str
    port: int
    #: Bound port of the HTTP front end (spawned with ``http=True`` only).
    http_port: int | None = None

    @property
    def pid(self) -> int:
        return self.process.pid

    def terminate(self, timeout: float = 15.0) -> int:
        """SIGTERM (graceful drain) and reap; SIGKILL only past ``timeout``."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
                self.process.kill()
                self.process.wait()
        return self.process.returncode


_LISTENING_RE = re.compile(r"listening on ([^\s:]+):(\d+)")
#: The HTTP front end's readiness line.  Checked *before* the TCP pattern on
#: every line — ``_LISTENING_RE`` substring-matches this line too.
_HTTP_LISTENING_RE = re.compile(r"http listening on ([^\s:]+):(\d+)")


def spawn_tcp_server(
    *,
    dataset: str = "imdb",
    backend: str = "memory",
    db_path: str | None = None,
    shards: int | None = None,
    workers: int = 1,
    http: bool = False,
    extra_args: list[str] | None = None,
    startup_timeout: float = 60.0,
) -> SpawnedServer:
    """Launch ``repro serve --tcp --port 0`` as a child and parse its address.

    The child runs with this interpreter and this checkout on
    ``PYTHONPATH``, so the spawned server always matches the code under
    test.  Blocks until the readiness line appears (the socket is bound
    before the line prints, so a connect after this returns succeeds); with
    ``http=True`` the child also serves the HTTP front end on an ephemeral
    port, and this blocks for *both* readiness lines.
    """
    package_root = str(Path(__file__).resolve().parents[2])  # .../src
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--tcp",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--dataset",
        dataset,
        "--backend",
        backend,
        "--tcp-workers",
        str(workers),
    ]
    if db_path is not None:
        argv += ["--db-path", str(db_path)]
    if shards is not None:
        argv += ["--shards", str(shards)]
    if http:
        argv += ["--http", "--http-port", "0"]
    argv += extra_args or []
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True
    )
    deadline = time.monotonic() + startup_timeout
    assert process.stdout is not None
    address: tuple[str, int] | None = None
    http_port: int | None = None
    while True:
        line = process.stdout.readline()
        if line:
            http_match = _HTTP_LISTENING_RE.search(line)
            if http_match:
                http_port = int(http_match.group(2))
            else:
                match = _LISTENING_RE.search(line)
                if match:
                    address = (match.group(1), int(match.group(2)))
            if address is not None and (not http or http_port is not None):
                return SpawnedServer(
                    process=process,
                    host=address[0],
                    port=address[1],
                    http_port=http_port,
                )
        if process.poll() is not None or time.monotonic() > deadline:
            with contextlib.suppress(Exception):
                process.kill()
            raise RuntimeError(
                f"spawned server did not become ready: {' '.join(argv)}"
            )


def run_bench_load(
    host: str,
    port: int,
    *,
    mode: str = "closed",
    connections: int = 8,
    requests: int = 200,
    rate: float = 50.0,
    dataset: str = "imdb",
    backend: str = "memory",
    k: int = 5,
    timeout: float = 30.0,
    seed: int = 13,
    transport: str = "tcp",
    label: str | None = None,
    server_pid: int | None = None,
    output_dir: str | Path | None = ".",
    monitor_interval: float = 0.1,
    read_pool_size: int | None = None,
    workers: int | None = None,
) -> tuple[dict, Path | None]:
    """One full bench run: load + resource sampling → validated-shape record.

    ``transport`` picks the wire: ``"tcp"`` speaks the newline-JSON
    protocol on ``port``; ``"http"`` issues keep-alive ``POST /query``
    requests, so ``port`` must then be the HTTP front end's.  Returns
    ``(record, path)``; ``path`` is None when ``output_dir`` is None
    (persistence skipped — the in-process tests build records without
    touching the working tree).  ``read_pool_size`` and ``workers`` are
    descriptive only — they record how the *server* was configured so
    ``--diff`` compares like against like; they change nothing about the
    load itself.
    """
    if mode not in ("closed", "open"):
        raise ValueError("mode must be 'closed' or 'open'")
    if transport not in ("tcp", "http"):
        raise ValueError("transport must be 'tcp' or 'http'")
    label = label or f"{mode}-{backend}-{dataset}"
    started_at = _datetime.datetime.now(_datetime.timezone.utc).isoformat(
        timespec="seconds"
    )
    monitor = (
        ResourceMonitor(server_pid, interval=monitor_interval)
        if server_pid is not None
        else None
    )
    if monitor is not None:
        monitor.start()
    try:
        if mode == "closed":
            run = asyncio.run(
                run_closed_loop(
                    host,
                    port,
                    connections=connections,
                    requests=requests,
                    dataset=dataset,
                    k=k,
                    timeout=timeout,
                    seed=seed,
                    transport=transport,
                )
            )
        else:
            run = asyncio.run(
                run_open_loop(
                    host,
                    port,
                    rate=rate,
                    requests=requests,
                    dataset=dataset,
                    k=k,
                    timeout=timeout,
                    seed=seed,
                    transport=transport,
                )
            )
    finally:
        samples = monitor.stop() if monitor is not None else []
    record = build_bench_report(
        config={
            "mode": mode,
            "transport": transport,
            "dataset": dataset,
            "backend": backend,
            "connections": connections,
            "requests": requests,
            "rate": rate if mode == "open" else None,
            "k": k,
            "seed": seed,
            "host": host,
            "port": port,
            "label": label,
            "read_pool_size": read_pool_size,
            "workers": workers,
        },
        latencies_ms=run.latencies_ms,
        outcomes=run.outcomes,
        duration_seconds=run.duration_seconds,
        samples=samples,
        started_at=started_at,
    )
    path = None
    if output_dir is not None:
        path = write_bench_report(record, output_dir)
    return record, path


def run_workers_sweep(
    host: str,
    port: int,
    *,
    sweep: list[int],
    requests: int = 200,
    label: str | None = None,
    **kwargs,
) -> list[tuple[dict, Path | None]]:
    """Closed-loop read-scaling sweep: one bench record per concurrency point.

    Runs :func:`run_bench_load` once per entry of ``sweep`` (client-thread
    counts, e.g. ``[1, 2, 4, 8]``) against one live store, labelling each
    record ``<label>-w<n>`` so ``bench-load --diff`` can pin every point of
    the scaling curve independently — a regression that only shows up at
    8 threads (a reader pool accidentally sized to 1) cannot hide behind a
    healthy single-thread number.  ``requests`` is per point, so every
    record aggregates the same sample count.
    """
    base = label or "closed-{}-{}".format(
        kwargs.get("backend", "memory"), kwargs.get("dataset", "imdb")
    )
    results: list[tuple[dict, Path | None]] = []
    for point in sweep:
        if point < 1:
            raise ValueError("sweep points must be positive thread counts")
        point_label = f"{base}-w{point}"
        results.append(
            run_bench_load(
                host,
                port,
                mode="closed",
                connections=point,
                requests=requests,
                label=point_label,
                **kwargs,
            )
        )
    return results


def summary_lines(record: dict, path: Path | None) -> list[str]:
    """The human-readable summary ``repro bench-load`` prints."""
    config = record["config"]
    latency = record["latency_ms"]
    outcomes = record["outcomes"]
    resources = record["resources"]
    lines = [
        f"mode={config['mode']} transport={config.get('transport', 'tcp')} "
        f"dataset={config['dataset']} "
        f"backend={config['backend']} connections={config['connections']} "
        f"requests={config['requests']}"
        + (f" rate={config['rate']}/s" if config.get("rate") else ""),
        f"load phase: {record['duration_seconds']:.3f} s   "
        f"throughput: {record['throughput_qps']:.1f} q/s",
        f"latency (ok only): p50 {latency['p50']:.2f} ms   "
        f"p95 {latency['p95']:.2f} ms   p99 {latency['p99']:.2f} ms   "
        f"max {latency['max']:.2f} ms",
        "outcomes: "
        + "  ".join(f"{key}={outcomes[key]}" for key in sorted(outcomes)),
    ]
    if resources["samples"]:
        lines.append(
            f"server resources: peak RSS "
            f"{resources['peak_rss_bytes'] / (1024 * 1024):.1f} MiB   "
            f"mean CPU {resources['mean_cpu_percent']:.1f}% "
            f"({len(resources['samples'])} samples)"
        )
    else:
        lines.append("server resources: not sampled (no server pid)")
    if path is not None:
        lines.append(f"persisted: {path}")
    return lines
