"""CPU/RSS sampling of one process, stdlib-only (``/proc``).

The bench harness must report what the *server* spends, not just what the
clients observe — a latency histogram with no resource trace cannot tell
"fast because idle" from "fast because efficient".  ``psutil`` is not a
dependency of this repo, so :class:`ResourceMonitor` reads the Linux
``/proc`` filesystem directly: ``/proc/<pid>/stat`` for cumulative
user+system CPU ticks, ``/proc/<pid>/status`` for ``VmRSS``.  On platforms
without ``/proc`` (or once the process exits) sampling degrades to an empty
series — the bench record stays schema-valid, with ``samples: []``.
"""

from __future__ import annotations

import os
import threading
import time


def _clock_ticks_per_second() -> float:
    try:
        return float(os.sysconf("SC_CLK_TCK"))
    except (AttributeError, ValueError, OSError):  # pragma: no cover
        return 100.0


def read_cpu_seconds(pid: int) -> float | None:
    """Cumulative user+system CPU seconds of ``pid``, or None."""
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
    except OSError:
        return None
    # Field 2 (comm) may contain spaces; everything after its closing paren
    # is space-separated.  utime/stime are fields 14/15 (1-based), i.e.
    # positions 11/12 after the paren.
    try:
        rest = stat.rsplit(")", 1)[1].split()
        utime, stime = int(rest[11]), int(rest[12])
    except (IndexError, ValueError):  # pragma: no cover - malformed stat
        return None
    return (utime + stime) / _clock_ticks_per_second()


def read_rss_bytes(pid: int) -> int | None:
    """Resident set size of ``pid`` in bytes, or None."""
    try:
        with open(f"/proc/{pid}/status", "rb") as handle:
            for raw in handle:
                if raw.startswith(b"VmRSS:"):
                    return int(raw.split()[1]) * 1024  # value is in kB
    except (OSError, ValueError, IndexError):
        return None
    return None


class ResourceMonitor:
    """Background sampler of one process's CPU% and RSS.

    ``start()`` launches a daemon thread that records one sample every
    ``interval`` seconds; ``stop()`` joins it and returns the series.  CPU
    percent is the delta of cumulative CPU seconds over the delta of wall
    time between consecutive samples (>100 means more than one core).
    """

    def __init__(self, pid: int, interval: float = 0.1):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.pid = pid
        self.interval = interval
        self.samples: list[dict] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "ResourceMonitor":
        self._thread = threading.Thread(
            target=self._run, name="repro-bench-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> list[dict]:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
        return self.samples

    def __enter__(self) -> "ResourceMonitor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        started = time.monotonic()
        last_wall = started
        last_cpu = read_cpu_seconds(self.pid)
        while not self._stop.wait(self.interval):
            now = time.monotonic()
            cpu = read_cpu_seconds(self.pid)
            rss = read_rss_bytes(self.pid)
            if cpu is None or rss is None:
                if self.samples:
                    break  # the process exited mid-run: end the series
                continue  # no /proc on this platform: stay empty
            cpu_percent = 0.0
            if last_cpu is not None and now > last_wall:
                cpu_percent = max(0.0, 100.0 * (cpu - last_cpu) / (now - last_wall))
            self.samples.append(
                {
                    "elapsed_seconds": round(now - started, 4),
                    "cpu_percent": round(cpu_percent, 2),
                    "rss_bytes": rss,
                }
            )
            last_wall, last_cpu = now, cpu
