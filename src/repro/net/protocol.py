"""The newline-delimited JSON wire protocol of ``repro serve --tcp``.

One request per line, one response line per request, both UTF-8 JSON
objects.  A request names a keyword query and optionally a dataset and a
result count::

    {"query": "hanks 2001", "dataset": "imdb", "k": 5}

A successful response carries the result rows as row-uid networks (the
same ``(table, key)`` identities the parity suites compare, so a network
client can verify byte-parity against sequential execution) plus serving
statistics::

    {"ok": true, "dataset": "imdb", "query": "hanks 2001", "k": 5,
     "rows": [[["actor", 1], ["acts", 2], ["movie", 2]], ...],
     "scores": [...],
     "stats": {"seconds": 0.002, "sql_statements": 1, "cache_hits": 0}}

A failed request answers ``{"ok": false, "error": "<code>", "detail":
"..."}`` on the same connection — protocol errors are per-request, never
per-connection: a malformed line, an oversized line or an unknown dataset
error that one request and the connection keeps serving.  Error codes are
the ``ERR_*`` constants below; clients switch on ``error``, ``detail`` is
human-readable.

Framing is plain ``\\n``-terminated lines.  :class:`LineSplitter` does the
incremental splitting on the server side with an explicit oversize guard:
a line longer than the limit is *discarded as it streams in* (the buffer
never grows past the limit) and surfaces as the :data:`OVERSIZED` marker
once its terminating newline arrives, so the stream resynchronizes on the
next line instead of killing the connection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Union

#: Version of the wire protocol (responses carry it as ``v``).
PROTOCOL_VERSION = 1

#: Default cap on one request line, in bytes (the listener's
#: ``max_request_bytes`` overrides it).
MAX_REQUEST_BYTES = 64 * 1024

# -- error codes --------------------------------------------------------------

ERR_MALFORMED = "malformed-request"
ERR_OVERSIZED = "oversized-request"
ERR_UNKNOWN_DATASET = "unknown-dataset"
ERR_OVERLOADED = "overloaded"
ERR_TIMEOUT = "timeout"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_TOO_MANY_CONNECTIONS = "too-many-connections"
ERR_INTERNAL = "internal-error"

#: Marker yielded by :meth:`LineSplitter.feed` in place of a line that
#: exceeded the limit (the line's bytes are gone; the stream is already
#: resynchronized on the following line).
OVERSIZED = object()


class ProtocolError(Exception):
    """A per-request protocol violation, carrying its wire error code."""

    def __init__(self, code: str, detail: str):
        super().__init__(detail)
        self.code = code
        self.detail = detail


@dataclass(frozen=True)
class Request:
    """One parsed request line."""

    query: str
    dataset: str | None = None
    k: int | None = None


def parse_request(line: bytes) -> Request:
    """Parse one request line; :class:`ProtocolError` on any violation."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ERR_MALFORMED, f"request is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            ERR_MALFORMED, f"request must be a JSON object, got {type(payload).__name__}"
        )
    query = payload.get("query")
    if not isinstance(query, str) or not query.strip():
        raise ProtocolError(ERR_MALFORMED, "request needs a non-empty string 'query'")
    dataset = payload.get("dataset")
    if dataset is not None and not isinstance(dataset, str):
        raise ProtocolError(ERR_MALFORMED, "'dataset' must be a string")
    k = payload.get("k")
    if k is not None and (isinstance(k, bool) or not isinstance(k, int) or k < 1):
        raise ProtocolError(ERR_MALFORMED, "'k' must be a positive integer")
    return Request(query=query.strip(), dataset=dataset, k=k)


def encode_line(payload: dict[str, Any]) -> bytes:
    """One wire line: compact JSON + the terminating newline."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def encode_request(
    query: str, dataset: str | None = None, k: int | None = None
) -> bytes:
    payload: dict[str, Any] = {"query": query}
    if dataset is not None:
        payload["dataset"] = dataset
    if k is not None:
        payload["k"] = k
    return encode_line(payload)


def ok_payload(dataset: str, query: str, k: int, response: Any) -> dict[str, Any]:
    """The response object of one served :class:`repro.server.QueryResponse`.

    Transport-agnostic: the TCP listener encodes it as one line, the HTTP
    front end as a ``200`` response body — same keys, same row identities,
    so clients of either transport verify parity against the same JSON.
    """
    statistics = response.context.executor_statistics
    return {
        "ok": True,
        "v": PROTOCOL_VERSION,
        "dataset": dataset,
        "query": query,
        "k": k,
        "rows": [list(map(list, network)) for network in response.result_uids()],
        "scores": [result.score for result in response.results],
        "stats": {
            "seconds": response.seconds,
            "sql_statements": statistics.sql_statements,
            "cache_hits": statistics.cache_hits,
        },
    }


def error_payload(code: str, detail: str) -> dict[str, Any]:
    """The response object of one failed request (any transport)."""
    return {"ok": False, "v": PROTOCOL_VERSION, "error": code, "detail": detail}


def ok_response(dataset: str, query: str, k: int, response: Any) -> bytes:
    """Encode one served :class:`repro.server.QueryResponse` as a wire line."""
    return encode_line(ok_payload(dataset, query, k, response))


def error_response(code: str, detail: str) -> bytes:
    return encode_line(error_payload(code, detail))


class LineSplitter:
    """Incremental ``\\n`` framing with a hard per-line byte limit.

    ``feed(data)`` returns the complete items the new bytes finished: each
    is either a line (``bytes``, without its newline) or :data:`OVERSIZED`.
    An over-limit line is dropped *while streaming* — the internal buffer is
    cleared the moment it crosses the limit, so a malicious or buggy client
    cannot balloon server memory — and reported exactly once, when its
    terminating newline finally arrives (that newline is the
    resynchronization point).
    """

    def __init__(self, limit: int = MAX_REQUEST_BYTES):
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = limit
        self._buffer = bytearray()
        self._discarding = False

    def feed(self, data: bytes) -> list[Union[bytes, object]]:
        items: list[Union[bytes, object]] = []
        self._buffer.extend(data)
        while True:
            newline = self._buffer.find(b"\n")
            if newline == -1:
                if self._discarding:
                    self._buffer.clear()  # still inside the oversized line
                elif len(self._buffer) > self.limit:
                    self._buffer.clear()
                    self._discarding = True
                return items
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            if self._discarding:
                # This newline terminates the line that overran the limit;
                # its tail (buffered since the overflow) is dropped with it.
                self._discarding = False
                items.append(OVERSIZED)
            elif newline > self.limit:
                # The whole oversized line arrived inside one feed.
                items.append(OVERSIZED)
            else:
                items.append(line)
