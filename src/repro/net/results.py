"""Schema-versioned ``BENCH_serve_*.json`` records.

Every ``repro bench-load`` run persists one record, so the serving-perf
trajectory survives the run and is diffable PR-over-PR (`git log` on the
committed records, or the CI artifacts).  The record shape is versioned
(:data:`BENCH_SCHEMA_VERSION`) and *validated* — by the tests, and by CI
right after the smoke run (``python -m repro.net.results BENCH_*.json``
exits non-zero on any violation), so a drifted writer cannot silently
produce unreadable history.  ``--diff BASELINE CANDIDATE [--threshold PCT]``
compares two records (throughput, p50/p95/p99) and exits 1 when any metric
regressed past the threshold — the PR-over-PR regression gate.

Record shape (version 1)::

    {
      "schema_version": 1,
      "kind": "bench-serve-load",
      "started_at": "2026-08-07T12:00:00+00:00",
      "config": {"mode": "closed", "transport": "tcp" | "http",
                 "dataset": ..., "backend": ...,
                 "connections": ..., "requests": ..., "rate": ...,
                 "k": ..., "label": ...},
      "duration_seconds": 1.23,
      "throughput_qps": 162.6,
      "outcomes": {"ok": N, "overloaded": N, "timeout": N,
                   "error": N, "transport_error": N},
      "latency_ms": {"count": N, "mean": ..., "p50": ..., "p95": ...,
                     "p99": ..., "max": ...},
      "resources": {"samples": [{"elapsed_seconds": ..., "cpu_percent":
                     ..., "rss_bytes": ...}, ...],
                    "peak_rss_bytes": ..., "mean_cpu_percent": ...}
    }
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import Sequence

BENCH_SCHEMA_VERSION = 1

BENCH_KIND = "bench-serve-load"

#: The file-name prefix every persisted record uses.
BENCH_FILE_PREFIX = "BENCH_serve_"

_OUTCOME_KEYS = ("ok", "overloaded", "timeout", "error", "transport_error")
_LATENCY_KEYS = ("count", "mean", "p50", "p95", "p99", "max")
_SAMPLE_KEYS = ("elapsed_seconds", "cpu_percent", "rss_bytes")


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending-sorted series (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


def build_bench_report(
    *,
    config: dict,
    latencies_ms: Sequence[float],
    outcomes: dict[str, int],
    duration_seconds: float,
    samples: Sequence[dict],
    started_at: str,
) -> dict:
    """Assemble one schema-version-1 record from raw run data."""
    ordered = sorted(latencies_ms)
    total_answered = sum(outcomes.get(key, 0) for key in _OUTCOME_KEYS)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "started_at": started_at,
        "config": dict(config),
        "duration_seconds": round(duration_seconds, 6),
        "throughput_qps": round(
            total_answered / duration_seconds if duration_seconds else 0.0, 3
        ),
        "outcomes": {key: int(outcomes.get(key, 0)) for key in _OUTCOME_KEYS},
        "latency_ms": {
            "count": len(ordered),
            "mean": round(sum(ordered) / len(ordered), 4) if ordered else 0.0,
            "p50": round(percentile(ordered, 0.50), 4),
            "p95": round(percentile(ordered, 0.95), 4),
            "p99": round(percentile(ordered, 0.99), 4),
            "max": round(ordered[-1], 4) if ordered else 0.0,
        },
        "resources": {
            "samples": list(samples),
            "peak_rss_bytes": max(
                (sample["rss_bytes"] for sample in samples), default=0
            ),
            "mean_cpu_percent": round(
                sum(sample["cpu_percent"] for sample in samples) / len(samples), 2
            )
            if samples
            else 0.0,
        },
    }


def bench_file_name(label: str) -> str:
    """``BENCH_serve_<label>.json`` with the label slugged for a filesystem."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "run"
    return f"{BENCH_FILE_PREFIX}{slug}.json"


def write_bench_report(record: dict, directory: str | Path = ".") -> Path:
    """Persist one record; the label comes from ``record['config']['label']``."""
    label = str(record.get("config", {}).get("label", "run"))
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / bench_file_name(label)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def validate_bench_report(record: object) -> list[str]:
    """All schema violations of one record (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"record must be a JSON object, got {type(record).__name__}"]
    if record.get("schema_version") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, "
            f"got {record.get('schema_version')!r}"
        )
    if record.get("kind") != BENCH_KIND:
        errors.append(f"kind must be {BENCH_KIND!r}, got {record.get('kind')!r}")
    if not isinstance(record.get("started_at"), str) or not record.get("started_at"):
        errors.append("started_at must be a non-empty ISO-8601 string")
    config = record.get("config")
    if not isinstance(config, dict):
        errors.append("config must be an object")
    else:
        for key in ("dataset", "backend", "label"):
            if not isinstance(config.get(key), str) or not config.get(key):
                errors.append(f"config.{key} must be a non-empty string")
        if config.get("mode") not in ("open", "closed"):
            errors.append("config.mode must be 'open' or 'closed'")
        if config.get("transport", "tcp") not in ("tcp", "http"):
            errors.append("config.transport must be 'tcp' or 'http'")
    for key in ("duration_seconds", "throughput_qps"):
        value = record.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
            errors.append(f"{key} must be a non-negative number")
    outcomes = record.get("outcomes")
    if not isinstance(outcomes, dict):
        errors.append("outcomes must be an object")
    else:
        for key in _OUTCOME_KEYS:
            value = outcomes.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                errors.append(f"outcomes.{key} must be a non-negative integer")
    latency = record.get("latency_ms")
    if not isinstance(latency, dict):
        errors.append("latency_ms must be an object")
    else:
        for key in _LATENCY_KEYS:
            value = latency.get(key)
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value < 0
            ):
                errors.append(f"latency_ms.{key} must be a non-negative number")
        if not errors and not (
            latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        ):
            errors.append("latency_ms percentiles must be non-decreasing")
    resources = record.get("resources")
    if not isinstance(resources, dict) or not isinstance(
        resources.get("samples"), list
    ):
        errors.append("resources.samples must be a list")
    else:
        for position, sample in enumerate(resources["samples"]):
            if not isinstance(sample, dict) or any(
                key not in sample for key in _SAMPLE_KEYS
            ):
                errors.append(
                    f"resources.samples[{position}] needs keys {_SAMPLE_KEYS}"
                )
                break
    return errors


#: The metrics ``--diff`` compares, as ``(label, getter, higher_is_better)``.
_DIFF_METRICS: tuple[tuple[str, tuple[str, ...], bool], ...] = (
    ("throughput_qps", ("throughput_qps",), True),
    ("latency_ms.p50", ("latency_ms", "p50"), False),
    ("latency_ms.p95", ("latency_ms", "p95"), False),
    ("latency_ms.p99", ("latency_ms", "p99"), False),
)


def diff_bench_reports(baseline: dict, candidate: dict) -> list[dict]:
    """Per-metric deltas between two valid records (baseline → candidate).

    Each entry carries the metric name, both values, the absolute delta and
    the percent change *in the direction of regression*: positive
    ``regression_percent`` means the candidate is worse on that metric (lower
    throughput, higher latency), so thresholding is one comparison per row.
    A zero baseline yields 0.0 — a cold record cannot regress against itself.
    """
    rows: list[dict] = []
    for name, path, higher_is_better in _DIFF_METRICS:
        before: float = baseline
        after: float = candidate
        for key in path:
            before = before[key]
            after = after[key]
        delta = after - before
        worsening = -delta if higher_is_better else delta
        regression_percent = 100.0 * worsening / before if before else 0.0
        rows.append(
            {
                "metric": name,
                "baseline": before,
                "candidate": after,
                "delta": round(delta, 4),
                "regression_percent": round(regression_percent, 2),
            }
        )
    return rows


def _load_valid_record(raw: str) -> dict | None:
    """One record, parsed and schema-validated; None (with stderr) on failure."""
    path = Path(raw)
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: unreadable: {exc}", file=sys.stderr)
        return None
    errors = validate_bench_report(record)
    if errors:
        print(f"{path}: {len(errors)} schema violation(s)", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return None
    return record


def _run_diff(baseline_path: str, candidate_path: str, threshold: float | None) -> int:
    """Compare two records; 0 ok, 1 regression past threshold, 2 unreadable."""
    baseline = _load_valid_record(baseline_path)
    candidate = _load_valid_record(candidate_path)
    if baseline is None or candidate is None:
        return 2
    rows = diff_bench_reports(baseline, candidate)
    print(f"diff: {baseline_path} -> {candidate_path}")
    regressions = 0
    for row in rows:
        regressed = threshold is not None and row["regression_percent"] > threshold
        regressions += regressed
        marker = "  REGRESSION" if regressed else ""
        percent = row["regression_percent"]
        direction = (
            f"{percent:+.2f}% worse" if percent >= 0 else f"{-percent:.2f}% better"
        )
        print(
            f"  {row['metric']}: {row['baseline']} -> {row['candidate']} "
            f"(delta {row['delta']:+}, {direction}){marker}"
        )
    if regressions:
        print(
            f"{regressions} metric(s) regressed more than {threshold}%",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Validate or diff record files.

    ``python -m repro.net.results BENCH_*.json`` validates each file against
    the schema (exit 1 on any violation).  ``--diff BASELINE CANDIDATE``
    compares two records — throughput and p50/p95/p99 latency — and, with
    ``--threshold PCT``, exits 1 when any metric regressed by more than
    ``PCT`` percent.  Unreadable or invalid inputs exit 2.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.net.results",
        description="Validate or diff BENCH_serve_*.json records.",
    )
    parser.add_argument("paths", nargs="*", help="record files to validate")
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("BASELINE", "CANDIDATE"),
        help="compare two records instead of validating",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="with --diff: exit 1 when any metric regresses more than PCT%%",
    )
    options = parser.parse_args(sys.argv[1:] if argv is None else argv)
    if options.diff:
        if options.paths:
            parser.print_usage(sys.stderr)
            print(
                "error: --diff takes exactly two records, no extra paths",
                file=sys.stderr,
            )
            return 2
        return _run_diff(options.diff[0], options.diff[1], options.threshold)
    if not options.paths:
        parser.print_usage(sys.stderr)
        return 2
    failures = 0
    for raw in options.paths:
        record = _load_valid_record(raw)
        if record is None:
            failures += 1
        else:
            print(f"{raw}: OK (schema v{record['schema_version']})")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
