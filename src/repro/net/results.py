"""Schema-versioned ``BENCH_serve_*.json`` records.

Every ``repro bench-load`` run persists one record, so the serving-perf
trajectory survives the run and is diffable PR-over-PR (`git log` on the
committed records, or the CI artifacts).  The record shape is versioned
(:data:`BENCH_SCHEMA_VERSION`) and *validated* — by the tests, and by CI
right after the smoke run (``python -m repro.net.results BENCH_*.json``
exits non-zero on any violation), so a drifted writer cannot silently
produce unreadable history.

Record shape (version 1)::

    {
      "schema_version": 1,
      "kind": "bench-serve-load",
      "started_at": "2026-08-07T12:00:00+00:00",
      "config": {"mode": "closed", "dataset": ..., "backend": ...,
                 "connections": ..., "requests": ..., "rate": ...,
                 "k": ..., "label": ...},
      "duration_seconds": 1.23,
      "throughput_qps": 162.6,
      "outcomes": {"ok": N, "overloaded": N, "timeout": N,
                   "error": N, "transport_error": N},
      "latency_ms": {"count": N, "mean": ..., "p50": ..., "p95": ...,
                     "p99": ..., "max": ...},
      "resources": {"samples": [{"elapsed_seconds": ..., "cpu_percent":
                     ..., "rss_bytes": ...}, ...],
                    "peak_rss_bytes": ..., "mean_cpu_percent": ...}
    }
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import Sequence

BENCH_SCHEMA_VERSION = 1

BENCH_KIND = "bench-serve-load"

#: The file-name prefix every persisted record uses.
BENCH_FILE_PREFIX = "BENCH_serve_"

_OUTCOME_KEYS = ("ok", "overloaded", "timeout", "error", "transport_error")
_LATENCY_KEYS = ("count", "mean", "p50", "p95", "p99", "max")
_SAMPLE_KEYS = ("elapsed_seconds", "cpu_percent", "rss_bytes")


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending-sorted series (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


def build_bench_report(
    *,
    config: dict,
    latencies_ms: Sequence[float],
    outcomes: dict[str, int],
    duration_seconds: float,
    samples: Sequence[dict],
    started_at: str,
) -> dict:
    """Assemble one schema-version-1 record from raw run data."""
    ordered = sorted(latencies_ms)
    total_answered = sum(outcomes.get(key, 0) for key in _OUTCOME_KEYS)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "started_at": started_at,
        "config": dict(config),
        "duration_seconds": round(duration_seconds, 6),
        "throughput_qps": round(
            total_answered / duration_seconds if duration_seconds else 0.0, 3
        ),
        "outcomes": {key: int(outcomes.get(key, 0)) for key in _OUTCOME_KEYS},
        "latency_ms": {
            "count": len(ordered),
            "mean": round(sum(ordered) / len(ordered), 4) if ordered else 0.0,
            "p50": round(percentile(ordered, 0.50), 4),
            "p95": round(percentile(ordered, 0.95), 4),
            "p99": round(percentile(ordered, 0.99), 4),
            "max": round(ordered[-1], 4) if ordered else 0.0,
        },
        "resources": {
            "samples": list(samples),
            "peak_rss_bytes": max(
                (sample["rss_bytes"] for sample in samples), default=0
            ),
            "mean_cpu_percent": round(
                sum(sample["cpu_percent"] for sample in samples) / len(samples), 2
            )
            if samples
            else 0.0,
        },
    }


def bench_file_name(label: str) -> str:
    """``BENCH_serve_<label>.json`` with the label slugged for a filesystem."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "run"
    return f"{BENCH_FILE_PREFIX}{slug}.json"


def write_bench_report(record: dict, directory: str | Path = ".") -> Path:
    """Persist one record; the label comes from ``record['config']['label']``."""
    label = str(record.get("config", {}).get("label", "run"))
    path = Path(directory) / bench_file_name(label)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def validate_bench_report(record: object) -> list[str]:
    """All schema violations of one record (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"record must be a JSON object, got {type(record).__name__}"]
    if record.get("schema_version") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, "
            f"got {record.get('schema_version')!r}"
        )
    if record.get("kind") != BENCH_KIND:
        errors.append(f"kind must be {BENCH_KIND!r}, got {record.get('kind')!r}")
    if not isinstance(record.get("started_at"), str) or not record.get("started_at"):
        errors.append("started_at must be a non-empty ISO-8601 string")
    config = record.get("config")
    if not isinstance(config, dict):
        errors.append("config must be an object")
    else:
        for key in ("dataset", "backend", "label"):
            if not isinstance(config.get(key), str) or not config.get(key):
                errors.append(f"config.{key} must be a non-empty string")
        if config.get("mode") not in ("open", "closed"):
            errors.append("config.mode must be 'open' or 'closed'")
    for key in ("duration_seconds", "throughput_qps"):
        value = record.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
            errors.append(f"{key} must be a non-negative number")
    outcomes = record.get("outcomes")
    if not isinstance(outcomes, dict):
        errors.append("outcomes must be an object")
    else:
        for key in _OUTCOME_KEYS:
            value = outcomes.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                errors.append(f"outcomes.{key} must be a non-negative integer")
    latency = record.get("latency_ms")
    if not isinstance(latency, dict):
        errors.append("latency_ms must be an object")
    else:
        for key in _LATENCY_KEYS:
            value = latency.get(key)
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value < 0
            ):
                errors.append(f"latency_ms.{key} must be a non-negative number")
        if not errors and not (
            latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        ):
            errors.append("latency_ms percentiles must be non-decreasing")
    resources = record.get("resources")
    if not isinstance(resources, dict) or not isinstance(
        resources.get("samples"), list
    ):
        errors.append("resources.samples must be a list")
    else:
        for position, sample in enumerate(resources["samples"]):
            if not isinstance(sample, dict) or any(
                key not in sample for key in _SAMPLE_KEYS
            ):
                errors.append(
                    f"resources.samples[{position}] needs keys {_SAMPLE_KEYS}"
                )
                break
    return errors


def main(argv: list[str] | None = None) -> int:
    """Validate record files: ``python -m repro.net.results BENCH_*.json``."""
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.net.results BENCH_serve_*.json", file=sys.stderr)
        return 2
    failures = 0
    for raw in paths:
        path = Path(raw)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failures += 1
            continue
        errors = validate_bench_report(record)
        if errors:
            failures += 1
            print(f"{path}: {len(errors)} schema violation(s)", file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
        else:
            print(f"{path}: OK (schema v{record['schema_version']})")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
