"""Keyword search over semi-structured data (Section 2.2.2).

The thesis' general characterization covers XML and RDF alongside relational
data: over XML, the result of a keyword query is the subtree rooted at the
(smallest) lowest common ancestor of nodes that collectively match the
keywords; over RDF, keywords map to graph nodes whose neighborhood is
explored to extract minimal connecting subgraphs.  This package implements
both semantics on small in-memory models:

* :mod:`repro.semistructured.xmltree` — an XML-like node tree with Dewey
  labels and SLCA (smallest lowest common ancestor) keyword search,
* :mod:`repro.semistructured.rdfgraph` — a triple store with minimal
  connecting-subgraph keyword search.
"""

from repro.semistructured.rdfgraph import RdfGraph, Triple, rdf_keyword_search
from repro.semistructured.xmltree import XmlNode, XmlTree, slca_search

__all__ = [
    "RdfGraph",
    "Triple",
    "XmlNode",
    "XmlTree",
    "rdf_keyword_search",
    "slca_search",
]
