"""RDF keyword search: minimal connecting subgraphs (Section 2.2.2).

Over RDF, the user's keywords are mapped to the nodes of the triple graph
and the neighborhood of those nodes is explored to extract subgraphs
containing all keywords.  The implementation mirrors the BANKS machinery at
the RDF granularity: multi-source shortest paths per keyword group over the
undirected view of the triple graph, candidate roots reached by every group,
results ranked by total connection cost.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator

import networkx as nx

from repro.core.keywords import KeywordQuery
from repro.db.tokenizer import DEFAULT_TOKENIZER


@dataclass(frozen=True)
class Triple:
    """One RDF statement: subject --predicate--> object."""

    subject: str
    predicate: str
    object: str


@dataclass(frozen=True)
class Subgraph:
    """A keyword-search result: connected nodes covering all keywords."""

    nodes: frozenset[str]
    cost: float

    @property
    def size(self) -> int:
        return len(self.nodes)


class RdfGraph:
    """A small in-memory triple store with a node-level keyword index."""

    def __init__(self):
        self._triples: list[Triple] = []
        self._graph = nx.Graph()
        self._keyword_nodes: dict[str, set[str]] = {}

    def add(self, subject: str, predicate: str, object: str) -> Triple:
        triple = Triple(subject, predicate, object)
        self._triples.append(triple)
        self._graph.add_edge(subject, object, predicate=predicate)
        for node in (subject, object):
            for term in DEFAULT_TOKENIZER.terms(node):
                self._keyword_nodes.setdefault(term, set()).add(node)
        return triple

    def triples(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def keyword_nodes(self, term: str) -> set[str]:
        return set(self._keyword_nodes.get(term, ()))

    def neighbors(self, node: str) -> list[str]:
        if node not in self._graph:
            return []
        return sorted(self._graph.neighbors(node))


def _multi_source_distances(
    graph: nx.Graph, sources: set[str]
) -> dict[str, tuple[float, str]]:
    dist: dict[str, tuple[float, str]] = {}
    heap: list[tuple[float, str, str]] = [(0.0, s, s) for s in sources]
    heapq.heapify(heap)
    while heap:
        d, node, pred = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = (d, pred)
        for neighbor in graph.neighbors(node):
            if neighbor not in dist:
                heapq.heappush(heap, (d + 1.0, neighbor, node))
    return dist


def rdf_keyword_search(
    graph: RdfGraph, query: KeywordQuery, k: int = 10
) -> list[Subgraph]:
    """Top-``k`` minimal connecting subgraphs for ``query`` (AND semantics)."""
    groups: list[set[str]] = []
    for term in dict.fromkeys(kw.term for kw in query.keywords):
        nodes = graph.keyword_nodes(term)
        if not nodes:
            return []
        groups.append(nodes)
    if not groups:
        return []
    distances = [_multi_source_distances(graph.graph, g) for g in groups]
    roots = set(distances[0])
    for dist in distances[1:]:
        roots &= set(dist)
    scored = sorted(
        ((sum(d[root][0] for d in distances), root) for root in roots),
        key=lambda pair: (pair[0], pair[1]),
    )
    results: list[Subgraph] = []
    seen: set[frozenset[str]] = set()
    for cost, root in scored:
        nodes: set[str] = set()
        for dist in distances:
            current = root
            nodes.add(current)
            while True:
                _d, pred = dist[current]
                if pred == current:
                    break
                nodes.add(pred)
                current = pred
        frozen = frozenset(nodes)
        if frozen in seen:
            continue
        seen.add(frozen)
        results.append(Subgraph(nodes=frozen, cost=cost))
        if len(results) >= k:
            break
    return results
