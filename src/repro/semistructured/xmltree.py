"""XML keyword search with LCA semantics (Section 2.2.2).

The result of a keyword query over an XML tree is the subtree rooted at the
Lowest Common Ancestor of nodes that collectively match the keywords; the
established refinement — SLCA, *smallest* LCA — keeps only results that do
not contain another result, the XML analogue of the relational minimality
condition.

Nodes carry Dewey labels (the position path from the root), under which LCA
computation is longest-common-prefix — the standard implementation
technique of the XML keyword search literature the thesis cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.keywords import KeywordQuery
from repro.db.tokenizer import DEFAULT_TOKENIZER

#: A Dewey label: the child-position path from the root, e.g. (0, 2, 1).
Dewey = tuple[int, ...]


@dataclass
class XmlNode:
    """One element of the tree: a tag, optional text, children."""

    tag: str
    text: str = ""
    children: list["XmlNode"] = field(default_factory=list)

    def child(self, tag: str, text: str = "") -> "XmlNode":
        """Append and return a new child element."""
        node = XmlNode(tag=tag, text=text)
        self.children.append(node)
        return node


class XmlTree:
    """An XML document with Dewey labels and a keyword index."""

    def __init__(self, root: XmlNode):
        self.root = root
        self._by_dewey: dict[Dewey, XmlNode] = {}
        self._keyword_nodes: dict[str, set[Dewey]] = {}
        self._label(root, ())

    def _label(self, node: XmlNode, dewey: Dewey) -> None:
        self._by_dewey[dewey] = node
        for term in DEFAULT_TOKENIZER.terms(node.text) | DEFAULT_TOKENIZER.terms(node.tag):
            self._keyword_nodes.setdefault(term, set()).add(dewey)
        for position, child in enumerate(node.children):
            self._label(child, dewey + (position,))

    # -- access -----------------------------------------------------------

    def node(self, dewey: Dewey) -> XmlNode:
        return self._by_dewey[dewey]

    def nodes(self) -> Iterator[tuple[Dewey, XmlNode]]:
        return iter(sorted(self._by_dewey.items()))

    def keyword_nodes(self, term: str) -> set[Dewey]:
        """Dewey labels of nodes whose tag or text contains ``term``."""
        return set(self._keyword_nodes.get(term, ()))

    def __len__(self) -> int:
        return len(self._by_dewey)

    # -- LCA machinery --------------------------------------------------------

    @staticmethod
    def common_prefix(a: Dewey, b: Dewey) -> Dewey:
        out = []
        for x, y in zip(a, b):
            if x != y:
                break
            out.append(x)
        return tuple(out)

    @staticmethod
    def is_ancestor(ancestor: Dewey, descendant: Dewey) -> bool:
        """True for proper and improper ancestry (a node is its own ancestor)."""
        return descendant[: len(ancestor)] == ancestor

    def subtree_text(self, dewey: Dewey) -> str:
        """All text under a node — what a result subtree presents."""
        node = self._by_dewey[dewey]
        parts = [node.text] if node.text else []
        for position, _child in enumerate(node.children):
            parts.append(self.subtree_text(dewey + (position,)))
        return " ".join(p for p in parts if p)


def slca_search(tree: XmlTree, query: KeywordQuery) -> list[Dewey]:
    """Smallest-LCA keyword search (Section 2.2.2's XML result semantics).

    Returns the Dewey labels of the smallest subtrees containing *all*
    query keywords, sorted.  AND semantics: keywords with no match anywhere
    make the result empty (unlike the relational OR-leaning pipelines, XML
    LCA search is conventionally conjunctive).
    """
    groups = []
    for term in dict.fromkeys(k.term for k in query.keywords):
        nodes = tree.keyword_nodes(term)
        if not nodes:
            return []
        groups.append(nodes)
    if not groups:
        return []
    # Candidate LCAs: for each match of the rarest group, pair with the
    # nearest match of every other group (quadratic but fine at this scale).
    groups.sort(key=len)
    candidates: set[Dewey] = set()
    for anchor in groups[0]:
        lca = anchor
        for other in groups[1:]:
            best: Dewey | None = None
            for match in other:
                prefix = XmlTree.common_prefix(lca, match)
                if best is None or len(prefix) > len(best):
                    best = prefix
            assert best is not None
            lca = best
        candidates.add(lca)
    # SLCA filter: drop candidates that are ancestors of other candidates.
    slcas = [
        c
        for c in candidates
        if not any(
            c != other and XmlTree.is_ancestor(c, other) for other in candidates
        )
    ]
    # Verify containment (the nearest-match heuristic can over-ascend).
    verified = []
    for c in slcas:
        if all(any(XmlTree.is_ancestor(c, m) for m in g) for g in groups):
            verified.append(c)
    return sorted(verified)
