"""Concurrent query serving: an engine pool behind a thread pool.

:class:`QueryServer` is the serving layer the engine seam was built for: it
pools one :class:`~repro.engine.QueryEngine` per ``(dataset, backend,
db_path)`` triple and fans concurrent keyword queries across a worker thread
pool.  Isolation falls out of the engine design — every query gets its own
:class:`~repro.engine.EngineContext`, stages are stateless, and the shared
layers (the SQLite connection, the cross-session result cache) serialize
internally — so concurrent queries return exactly what sequential queries
would, while batched ``UNION ALL`` execution keeps each one at a single SQL
statement on backends that support it.

Typical use::

    with QueryServer(max_workers=8) as server:
        response = server.query("imdb", "hanks 2001", k=5)     # synchronous
        futures = [server.submit("imdb", text) for text in texts]
        for future in futures: future.result()                 # concurrent

``benchmark_serve`` is the synthetic workload driver behind ``repro
bench-serve``: N client threads replay store-derived keyword queries against
one server, every response is verified against sequentially computed expected
rows, and the report carries throughput plus p50/p95 latency.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.engine import EngineConfig, EngineContext, QueryEngine

#: One pooled engine: ``(dataset, backend name, resolved db path or None,
#: shard count or None)``.  The shard count is part of the key because two
#: sharded layouts of one dataset are two distinct physical stores (each
#: with its own partitions, scatter connections and fan-out pool).
EngineKey = tuple[str, str, str | None, int | None]

#: Builds the engine of one pool slot: ``(dataset, backend, db_path, shards,
#: engine_config) -> QueryEngine``.  The default goes through
#: ``QueryEngine.for_dataset``; tests and embedders swap in pre-built or
#: pre-warmed engines.
EngineFactory = Callable[
    [str, str, "str | Path | None", int | None, EngineConfig | None], QueryEngine
]


def _default_engine_factory(
    dataset: str,
    backend: str,
    db_path: "str | Path | None",
    shards: int | None,
    config: EngineConfig | None,
) -> QueryEngine:
    kwargs = {} if config is None else {"config": config}
    return QueryEngine.for_dataset(
        dataset, backend=backend, db_path=db_path, shards=shards, **kwargs
    )


@dataclass(frozen=True)
class QueryResponse:
    """One served query: its isolated context plus serving bookkeeping."""

    dataset: str
    query: str
    context: EngineContext
    #: Wall-clock seconds inside the engine (excludes queue wait).
    seconds: float
    #: Name of the worker thread that served the query.
    worker: str

    @property
    def results(self):
        return self.context.results

    def result_uids(self) -> list[tuple]:
        """Row identities, the comparable essence of the result list."""
        return [result.row_uids() for result in self.context.results]


class QueryServer:
    """Shared engines, per-query contexts, a bounded worker pool.

    Engines are created lazily on first use of a ``(dataset, backend,
    db_path)`` combination and reused for every later query on it; the
    result cache inside each engine is therefore shared across all
    concurrent queries of that dataset — by design (that *is* the cache) and
    safely (the cache's process layer and the SQLite connection are
    lock-guarded; contexts never are shared).
    """

    def __init__(
        self,
        max_workers: int = 8,
        *,
        engine_config: EngineConfig | None = None,
        engine_factory: EngineFactory | None = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.engine_config = engine_config
        self._engine_factory = engine_factory or _default_engine_factory
        self._engines: dict[EngineKey, QueryEngine] = {}
        self._engines_lock = threading.Lock()
        #: Per-key construction locks: building a dataset takes seconds and
        #: must not stall queries on already-pooled engines.
        self._building: dict[EngineKey, threading.Lock] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._closed = False

    # -- engine pool --------------------------------------------------------

    def engine_for(
        self,
        dataset: str,
        backend: str = "memory",
        db_path: "str | Path | None" = None,
        shards: int | None = None,
    ) -> QueryEngine:
        """The pooled engine of one (dataset, backend, db_path, shards).

        Construction happens outside the pool lock, serialized per key: two
        first queries on one key build once, while queries on other (already
        built) keys are never blocked by a slow dataset build.  The shard
        count normalizes through the backend registry, so an unspecified
        count and an explicit default-count request share one engine.
        """
        from repro.db.backends import resolve_shard_layout

        shards = resolve_shard_layout(backend, shards)
        key: EngineKey = (
            dataset,
            backend,
            str(db_path) if db_path else None,
            shards,
        )
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is not None:
                return engine
            key_lock = self._building.setdefault(key, threading.Lock())
        with key_lock:
            try:
                with self._engines_lock:
                    engine = self._engines.get(key)
                    if engine is not None:
                        return engine
                engine = self._engine_factory(
                    dataset, backend, db_path, shards, self.engine_config
                )
                with self._engines_lock:
                    self._engines[key] = engine
                return engine
            finally:
                # Also on factory failure: a key whose build raised (bad
                # path, unknown dataset) must not leave its construction
                # lock behind forever.
                with self._engines_lock:
                    self._building.pop(key, None)

    @property
    def pooled_engines(self) -> int:
        with self._engines_lock:
            return len(self._engines)

    # -- serving ------------------------------------------------------------

    def submit(
        self,
        dataset: str,
        query: str,
        k: int | None = None,
        *,
        backend: str = "memory",
        db_path: "str | Path | None" = None,
        shards: int | None = None,
    ) -> "Future[QueryResponse]":
        """Enqueue one keyword query; resolves to a :class:`QueryResponse`."""
        if self._closed:
            raise RuntimeError("QueryServer is closed")
        engine = self.engine_for(
            dataset, backend=backend, db_path=db_path, shards=shards
        )
        return self._pool.submit(self._serve, engine, dataset, query, k)

    def query(
        self,
        dataset: str,
        query: str,
        k: int | None = None,
        *,
        backend: str = "memory",
        db_path: "str | Path | None" = None,
        shards: int | None = None,
    ) -> QueryResponse:
        """Synchronous convenience over :meth:`submit`."""
        return self.submit(
            dataset, query, k, backend=backend, db_path=db_path, shards=shards
        ).result()

    @staticmethod
    def _serve(
        engine: QueryEngine, dataset: str, query: str, k: int | None
    ) -> QueryResponse:
        started = time.perf_counter()
        context = engine.run(query, k=k)
        return QueryResponse(
            dataset=dataset,
            query=str(query),
            context=context,
            seconds=time.perf_counter() - started,
            worker=threading.current_thread().name,
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drain the worker pool, then close every pooled engine's backend."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        with self._engines_lock:
            engines, self._engines = list(self._engines.values()), {}
        for engine in engines:
            engine.backend.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- asyncio front end --------------------------------------------------------


class AsyncQueryFrontend:
    """An asyncio face over a :class:`QueryServer`'s engine pool.

    The engine pool and the worker threads underneath stay untouched —
    queries still execute on the pool's workers — but callers *await*
    responses instead of blocking on futures, so a single event loop can
    multiplex any number of slow clients (stalled sockets, drip-fed stdin)
    without pinning one worker thread per waiting client.  ``repro serve
    --async`` and the async ``bench-serve`` transport are built on this.
    """

    def __init__(self, server: QueryServer):
        self.server = server

    async def query(
        self,
        dataset: str,
        query: str,
        k: int | None = None,
        *,
        backend: str = "memory",
        db_path: "str | Path | None" = None,
        shards: int | None = None,
    ) -> QueryResponse:
        """Awaitable :meth:`QueryServer.query` (same pool, same isolation)."""
        import asyncio

        future = self.server.submit(
            dataset, query, k, backend=backend, db_path=db_path, shards=shards
        )
        return await asyncio.wrap_future(future)


# -- synthetic workload driver (repro bench-serve) ---------------------------


@dataclass
class BenchServeReport:
    """Outcome of one ``benchmark_serve`` run.

    ``seconds`` times the serve phase alone — submission through last
    response; result verification against the sequential expectation happens
    *after* the clock stops and reports its own ``verify_seconds``, so the
    throughput/latency numbers measure serving, not the bench harness.
    """

    dataset: str
    backend: str
    clients: int
    queries_per_client: int
    distinct_queries: int
    seconds: float
    #: Per-request engine latencies, sorted ascending.
    latencies: list[float] = field(default_factory=list)
    #: Requests whose rows differed from the sequential expectation.
    mismatches: int = 0
    #: How the clients drove the server: "threads" or "asyncio".
    transport: str = "threads"
    #: Wall-clock of the untimed post-run verification pass.
    verify_seconds: float = 0.0

    @property
    def total_queries(self) -> int:
        return self.clients * self.queries_per_client

    @property
    def throughput_qps(self) -> float:
        return self.total_queries / self.seconds if self.seconds else 0.0

    def latency_at(self, fraction: float) -> float:
        """Latency percentile (nearest-rank) over the run, in seconds."""
        if not self.latencies:
            return 0.0
        rank = min(len(self.latencies) - 1, int(fraction * len(self.latencies)))
        return self.latencies[rank]

    @property
    def ok(self) -> bool:
        return self.mismatches == 0

    def lines(self) -> list[str]:
        """The human-readable summary ``repro bench-serve`` prints."""
        return [
            f"dataset={self.dataset} backend={self.backend} "
            f"transport={self.transport} "
            f"clients={self.clients} queries/client={self.queries_per_client} "
            f"distinct={self.distinct_queries}",
            f"serve phase: {self.seconds:.3f} s   "
            f"throughput: {self.throughput_qps:.1f} q/s",
            f"latency: p50 {self.latency_at(0.50) * 1000:.2f} ms   "
            f"p95 {self.latency_at(0.95) * 1000:.2f} ms   "
            f"max {self.latency_at(1.0) * 1000:.2f} ms",
            "results: "
            + ("all verified against sequential execution"
               if self.ok
               else f"{self.mismatches} MISMATCH(ES) vs sequential execution")
            + f" (verification {self.verify_seconds * 1000:.1f} ms, untimed)",
        ]


def workload_texts(engine: QueryEngine, dataset: str, seed: int = 13) -> list[str]:
    """Store-derived keyword queries for one dataset (every one answerable)."""
    from repro.datasets.workload import WORKLOAD_SAMPLERS

    try:
        sampler = WORKLOAD_SAMPLERS[dataset]
    except KeyError:
        raise ValueError(
            f"no workload for dataset {dataset!r} "
            f"(use {' or '.join(sorted(WORKLOAD_SAMPLERS))})"
        ) from None
    sampled = sampler(engine.backend, n_queries=20, seed=seed)
    return [str(item.query) for item in sampled]


def benchmark_serve(
    dataset: str = "imdb",
    *,
    backend: str = "memory",
    db_path: "str | Path | None" = None,
    shards: int | None = None,
    clients: int = 8,
    queries_per_client: int = 25,
    k: int = 5,
    seed: int = 13,
    engine_config: EngineConfig | None = None,
    engine_factory: EngineFactory | None = None,
    texts: Sequence[str] | None = None,
    use_async: bool = False,
) -> BenchServeReport:
    """Drive one :class:`QueryServer` with ``clients`` concurrent clients.

    Each client replays ``queries_per_client`` queries sampled (with a
    per-client seed) from the store-derived workload — as threads by
    default, as asyncio tasks over :class:`AsyncQueryFrontend` with
    ``use_async`` (same per-client seeds, so both transports replay the
    identical workload).  Expected rows per distinct query are computed
    sequentially up front on the same engine; every response is verified
    against them *after* the timed serve phase, so ``mismatches`` stays 0 on
    a correct server and the clock measures serving alone.
    """
    from dataclasses import replace

    from repro.engine import ResultCache

    with QueryServer(
        max_workers=clients,
        engine_config=engine_config,
        engine_factory=engine_factory,
    ) as server:
        engine = server.engine_for(
            dataset, backend=backend, db_path=db_path, shards=shards
        )
        distinct = list(texts) if texts is not None else workload_texts(
            engine, dataset, seed=seed
        )
        # Expected rows come from a cache-free sibling engine and the process
        # cache starts the concurrent phase cold: the clients must *execute*
        # (concurrent batched SQL, cache fills under contention), not replay
        # answers the warm-up already parked in the shared cache — otherwise
        # the verification would only exercise the cache dictionary.
        reference = QueryEngine(
            engine.backend,
            generator=engine.generator,
            config=replace(engine.config, cache_results=False),
        )
        expected = {
            text: [result.row_uids() for result in reference.run(text, k=k).results]
            for text in distinct
        }
        ResultCache.clear_process_cache()

        storage = dict(backend=backend, db_path=db_path, shards=shards)

        def client(client_index: int) -> list[tuple[str, float, list[tuple]]]:
            rng = random.Random(f"{seed}/{client_index}")
            outcomes = []
            for _ in range(queries_per_client):
                text = rng.choice(distinct)
                response = server.query(dataset, text, k=k, **storage)
                outcomes.append((text, response.seconds, response.result_uids()))
            return outcomes

        async def drive_async() -> list[list[tuple[str, float, list[tuple]]]]:
            import asyncio

            frontend = AsyncQueryFrontend(server)

            async def async_client(client_index: int):
                rng = random.Random(f"{seed}/{client_index}")
                outcomes = []
                for _ in range(queries_per_client):
                    text = rng.choice(distinct)
                    response = await frontend.query(dataset, text, k=k, **storage)
                    outcomes.append(
                        (text, response.seconds, response.result_uids())
                    )
                return outcomes

            return list(
                await asyncio.gather(
                    *(async_client(index) for index in range(clients))
                )
            )

        started = time.perf_counter()
        if use_async:
            import asyncio

            per_client = asyncio.run(drive_async())
        else:
            with ThreadPoolExecutor(
                max_workers=clients, thread_name_prefix="repro-client"
            ) as clients_pool:
                per_client = list(clients_pool.map(client, range(clients)))
        elapsed = time.perf_counter() - started

    # Verification runs after the clock stopped: comparing row identities is
    # bench-harness work, not serving work, and must not skew the report.
    verify_started = time.perf_counter()
    mismatches = sum(
        uids != expected[text]
        for outcomes in per_client
        for text, _seconds, uids in outcomes
    )
    verify_seconds = time.perf_counter() - verify_started
    latencies = sorted(
        seconds for outcomes in per_client for _t, seconds, _uids in outcomes
    )
    return BenchServeReport(
        dataset=dataset,
        backend=backend,
        clients=clients,
        queries_per_client=queries_per_client,
        distinct_queries=len(distinct),
        seconds=elapsed,
        latencies=latencies,
        mismatches=mismatches,
        transport="asyncio" if use_async else "threads",
        verify_seconds=verify_seconds,
    )
