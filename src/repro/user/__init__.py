"""Simulated users.

The thesis' interaction-cost experiments are driven "in an automatic way"
(Section 3.8.2): ground-truth interpretations are established a-priori and
the system accepts correct options and rejects incorrect ones automatically.
:class:`~repro.user.oracle.SimulatedUser` reproduces that oracle; the
:mod:`repro.user.study` module adds the timing model behind the usability
study of Fig. 3.7.
"""

from repro.user.oracle import IntendedInterpretation, SimulatedUser
from repro.user.study import StudyTimingModel, TaskOutcome

__all__ = [
    "IntendedInterpretation",
    "SimulatedUser",
    "StudyTimingModel",
    "TaskOutcome",
]
