"""Ground-truth interpretations and the simulated user oracle.

For every workload query the generator records which structured
interpretation the (simulated) user intends: per keyword occurrence, the
database element it maps to, and optionally the intended join path.  The
oracle accepts a query construction option iff every atom of the option
matches the intended interpretation — exactly how Section 3.8.2 automates the
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.interpretation import (
    Atom,
    Interpretation,
    OperatorAtom,
    TableAtom,
    ValueAtom,
)

#: Intended element of one keyword: ("value", table, attribute),
#: ("table", table) or ("operator", operator, table).
ElementSpec = tuple[str, ...]


def value_spec(table: str, attribute: str) -> ElementSpec:
    return ("value", table, attribute)


def table_spec(table: str) -> ElementSpec:
    return ("table", table)


def operator_spec(operator: str, table: str) -> ElementSpec:
    return ("operator", operator, table)


@dataclass(frozen=True)
class IntendedInterpretation:
    """The ground truth of one keyword query.

    ``bindings`` maps keyword *positions* to element specs.  ``template_path``
    optionally pins the intended join path (compared up to reversal, as the
    schema graph is undirected).
    """

    bindings: Mapping[int, ElementSpec]
    template_path: tuple[str, ...] | None = None

    def matches_atom(self, atom: Atom) -> bool:
        spec = self.bindings.get(atom.keyword.position)
        if spec is None:
            return False
        if isinstance(atom, ValueAtom):
            return spec == ("value", atom.table, atom.attribute)
        if isinstance(atom, TableAtom):
            return spec == ("table", atom.table)
        if isinstance(atom, OperatorAtom):
            return spec == ("operator", atom.operator, atom.table)
        return False

    def matches_atoms(self, atoms: Iterable[Atom]) -> bool:
        return all(self.matches_atom(a) for a in atoms)

    def matches(self, interpretation: Interpretation) -> bool:
        """True iff the interpretation is exactly the intended one."""
        if not self.matches_atoms(interpretation.atoms):
            return False
        bound = {a.keyword.position for a in interpretation.atoms}
        if bound != set(self.bindings):
            return False
        if self.template_path is not None:
            path = interpretation.template.path
            if path != self.template_path and path != self.template_path[::-1]:
                return False
        return True


@dataclass
class SimulatedUser:
    """Oracle that evaluates query construction options against ground truth.

    Every call to :meth:`evaluate` counts as one interaction (the user reads
    the option and decides) — the unit of interaction cost throughout
    Chapter 3.  Accepts either an :class:`repro.core.options.Option` or a
    plain frozen atom set (treated as a partial interpretation).
    """

    intended: IntendedInterpretation
    evaluations: int = 0
    accepted: list = field(default_factory=list)
    rejected: list = field(default_factory=list)

    def evaluate(self, option) -> bool:
        self.evaluations += 1
        if isinstance(option, frozenset):
            correct = self.intended.matches_atoms(option)
        else:
            correct = option.is_correct(self.intended)
        if correct:
            self.accepted.append(option)
            return True
        self.rejected.append(option)
        return False

    def picks(self, interpretation: Interpretation) -> bool:
        """Whether the user recognizes ``interpretation`` as the intended one."""
        return self.intended.matches(interpretation)

    def reset(self) -> None:
        self.evaluations = 0
        self.accepted.clear()
        self.rejected.clear()
