"""Timing model of the usability study (Section 3.8.4, Fig. 3.7).

The original study measured wall-clock task completion time of 15 graduate
students on two interfaces.  We substitute a calibrated timing model: scanning
one entry of the ranked-query list costs ``ranking_seconds_per_entry``;
evaluating one construction option costs ``construction_seconds_per_option``
(reading a short question is slower than skimming a list row); both
interfaces pay a fixed ``overhead_seconds`` for issuing the query and
executing the final interpretation, and tasks are capped at ``timeout``
(10 minutes in the study).  The model preserves the *shape* of Fig. 3.7:
ranking wins when the intended interpretation is ranked high, construction
wins — increasingly — when it is not.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one simulated task on one interface."""

    interface: str
    seconds: float
    interactions: int
    timed_out: bool


@dataclass(frozen=True)
class StudyTimingModel:
    """Maps interaction counts to task completion time."""

    ranking_seconds_per_entry: float = 2.5
    construction_seconds_per_option: float = 9.0
    overhead_seconds: float = 15.0
    timeout_seconds: float = 600.0

    def ranking_task(self, intended_rank: int) -> TaskOutcome:
        """Task time with the pure ranking interface.

        ``intended_rank`` is 1-based; the user scans list entries until the
        intended query interpretation is reached.
        """
        if intended_rank < 1:
            raise ValueError("intended_rank is 1-based")
        seconds = self.overhead_seconds + intended_rank * self.ranking_seconds_per_entry
        if seconds >= self.timeout_seconds:
            return TaskOutcome("ranking", self.timeout_seconds, intended_rank, True)
        return TaskOutcome("ranking", seconds, intended_rank, False)

    def construction_task(self, options_evaluated: int, shortlist_scanned: int = 0) -> TaskOutcome:
        """Task time with the IQP construction interface.

        ``shortlist_scanned`` counts the refined ranked-list entries the user
        skims after construction terminates (the query window of Fig. 3.1).
        """
        if options_evaluated < 0 or shortlist_scanned < 0:
            raise ValueError("interaction counts must be non-negative")
        seconds = (
            self.overhead_seconds
            + options_evaluated * self.construction_seconds_per_option
            + shortlist_scanned * self.ranking_seconds_per_entry
        )
        interactions = options_evaluated + shortlist_scanned
        if seconds >= self.timeout_seconds:
            return TaskOutcome("construction", self.timeout_seconds, interactions, True)
        return TaskOutcome("construction", seconds, interactions, False)
