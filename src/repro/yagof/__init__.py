"""YAGO+F: combining a large-scale database with an ontology (Chapter 6).

Implements the instance-based matching between a large class ontology
(YAGO-like: hundreds of thousands of Wikipedia-derived categories in a
subclass hierarchy) and the tables of a large database (Freebase-like), and
the analyses of the resulting combined YAGO+F hierarchy:

* concept/instance distribution statistics (Tables 6.1/6.2),
* shared-instance distribution over database tables (Fig. 6.2),
* overlap-threshold matching with precision/recall evaluation (Fig. 6.4),
* the combined hierarchy summary (Table 6.3).
"""

from repro.yagof.analysis import (
    category_size_distribution,
    instance_level_distribution,
    shared_instance_distribution,
    yagof_summary,
)
from repro.yagof.matching import MatchConfig, Matching, match_tables
from repro.yagof.ontology import InstanceOntology, YagoFHierarchy

__all__ = [
    "InstanceOntology",
    "MatchConfig",
    "Matching",
    "YagoFHierarchy",
    "category_size_distribution",
    "instance_level_distribution",
    "match_tables",
    "shared_instance_distribution",
    "yagof_summary",
]
