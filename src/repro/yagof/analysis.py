"""Distribution analyses of YAGO, Freebase and YAGO+F (Section 6.4/6.6).

Reproduces the descriptive statistics of Chapter 6:

* Table 6.1 — distribution of YAGO categories over instance-count buckets
  (most Wikipedia-derived leaf categories are tiny; a few are huge),
* Table 6.2 — distribution of instances over ontology levels,
* Fig. 6.2 — distribution of shared instances over database tables (how many
  tables an instance appears in),
* Table 6.3 — summary of the combined YAGO+F hierarchy.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Mapping, Sequence

from repro.yagof.ontology import InstanceOntology, YagoFHierarchy

Instance = Hashable

#: Default instance-count buckets of Table 6.1.
DEFAULT_BUCKETS = (1, 2, 5, 10, 50, 100, 1000)


def category_size_distribution(
    ontology: InstanceOntology, buckets: Sequence[int] = DEFAULT_BUCKETS
) -> list[tuple[str, int]]:
    """Table 6.1: number of categories per instance-count bucket.

    Buckets are half-open: a bucket labelled ``<= b`` counts classes whose
    transitive instance count is within (previous bucket, b]; a final
    ``> last`` bucket catches the rest.  Empty classes get their own bucket.
    """
    rows: list[tuple[str, int]] = []
    counts = [len(ontology.instances_of(name)) for name in ontology.class_names()]
    empty = sum(1 for c in counts if c == 0)
    rows.append(("0", empty))
    previous = 0
    for bound in buckets:
        n = sum(1 for c in counts if previous < c <= bound)
        rows.append((f"<= {bound}", n))
        previous = bound
    rows.append((f"> {buckets[-1]}", sum(1 for c in counts if c > buckets[-1])))
    return rows


def instance_level_distribution(ontology: InstanceOntology) -> list[tuple[int, int, int]]:
    """Table 6.2: per level, the number of classes and directly assigned instances."""
    rows: list[tuple[int, int, int]] = []
    for level in range(ontology.depth() + 1):
        classes = ontology.classes_at_level(level)
        instances = set()
        for name in classes:
            instances |= ontology.direct_instances(name)
        rows.append((level, len(classes), len(instances)))
    return rows


def shared_instance_distribution(
    tables: Mapping[str, set[Instance]],
    shared_instances: set[Instance] | None = None,
) -> list[tuple[int, int]]:
    """Fig. 6.2: how many instances occur in exactly ``k`` tables.

    ``shared_instances`` restricts the census to instances shared with the
    ontology (the thesis' "shared instances"); by default every instance of
    any table is counted.
    """
    membership: Counter = Counter()
    for _table, instances in tables.items():
        for instance in instances:
            if shared_instances is not None and instance not in shared_instances:
                continue
            membership[instance] += 1
    histogram: Counter = Counter(membership.values())
    return sorted(histogram.items())


def yagof_summary(hierarchy: YagoFHierarchy) -> dict[str, int]:
    """Table 6.3: categories and instances in the combined YAGO+F structure."""
    ontology = hierarchy.ontology
    return {
        "yago_classes": len(ontology),
        "yago_instances": len(ontology.all_instances()),
        "classes_with_tables": len(hierarchy.classes_with_tables()),
        "attached_tables": len(hierarchy.attached_tables()),
        "shared_instances": hierarchy.shared_instance_count(),
    }
