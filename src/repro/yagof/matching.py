"""Instance-based matching of YAGO classes and database tables (Section 6.5).

A table matches a class when their instance sets overlap sufficiently.  The
matcher scores each (table, class) pair by *coverage* — the fraction of the
table's instances contained in the class — and assigns the table to the most
*specific* class among those exceeding the threshold (deepest in the tree;
matching the root trivially covers everything and says nothing).

The threshold trades precision against recall (Fig. 6.4): a high threshold
only accepts clean alignments (high precision, low recall); a low threshold
attaches noisy tables too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.yagof.ontology import InstanceOntology, YagoFHierarchy

Instance = Hashable


@dataclass(frozen=True)
class MatchConfig:
    """Matcher knobs."""

    #: Minimum coverage |I(table) ∩ I(class)| / |I(table)| to accept a match.
    threshold: float = 0.5
    #: Minimum absolute number of shared instances (guards tiny tables).
    min_shared: int = 2
    #: Never match classes above this level (0 = root is excluded anyway).
    min_level: int = 1


@dataclass
class Matching:
    """Result of one matching run."""

    #: table -> (class, coverage score, shared instances)
    assignments: dict[str, tuple[str, float, frozenset[Instance]]] = field(
        default_factory=dict
    )
    unmatched: list[str] = field(default_factory=list)

    def to_hierarchy(self, ontology: InstanceOntology) -> YagoFHierarchy:
        hierarchy = YagoFHierarchy(ontology=ontology)
        for table, (class_name, _score, shared) in sorted(self.assignments.items()):
            hierarchy.attach(class_name, table, shared)
        return hierarchy

    def precision_recall(
        self, ground_truth: Mapping[str, str], ontology: InstanceOntology
    ) -> tuple[float, float]:
        """Precision/recall of class assignments against the ground truth.

        A predicted class counts as correct when it equals the true class or
        is one of its ancestors/descendants within one level (matching a
        slightly coarser or finer category is still a useful alignment —
        the lenient criterion Chapter 6's manual evaluation applies).
        """
        correct = 0
        predicted = len(self.assignments)
        for table, (predicted_class, _score, _shared) in self.assignments.items():
            truth = ground_truth.get(table)
            if truth is None:
                continue
            if predicted_class == truth:
                correct += 1
                continue
            truth_path = ontology.ancestors(truth)
            pred_path = ontology.ancestors(predicted_class)
            if (
                predicted_class in truth_path[-2:]
                or truth in pred_path[-2:]
            ):
                correct += 1
        matchable = sum(1 for t in ground_truth if ground_truth[t] in ontology)
        precision = correct / predicted if predicted else 0.0
        recall = correct / matchable if matchable else 0.0
        return precision, recall


def match_tables(
    ontology: InstanceOntology,
    tables: Mapping[str, set[Instance]],
    config: MatchConfig = MatchConfig(),
) -> Matching:
    """Match every table against the ontology by instance overlap.

    For each table, candidate classes are those sharing at least
    ``min_shared`` instances; among candidates meeting the coverage
    threshold the deepest (most specific) class wins, with coverage as the
    tie-breaker.
    """
    result = Matching()
    # Pre-compute transitive instance sets once per class.
    class_instances: dict[str, set[Instance]] = {
        name: ontology.instances_of(name) for name in ontology.class_names()
    }
    for table, instances in sorted(tables.items()):
        if not instances:
            result.unmatched.append(table)
            continue
        best: tuple[int, float, str, frozenset[Instance]] | None = None
        for class_name, members in class_instances.items():
            level = ontology.level_of(class_name)
            if level < config.min_level:
                continue
            shared = instances & members
            if len(shared) < config.min_shared:
                continue
            coverage = len(shared) / len(instances)
            if coverage < config.threshold:
                continue
            key = (level, coverage, class_name, frozenset(shared))
            if best is None or (key[0], key[1]) > (best[0], best[1]):
                best = key
        if best is None:
            result.unmatched.append(table)
        else:
            level, coverage, class_name, shared = best
            result.assignments[table] = (class_name, coverage, shared)
    return result


def threshold_sweep(
    ontology: InstanceOntology,
    tables: Mapping[str, set[Instance]],
    ground_truth: Mapping[str, str],
    thresholds: list[float],
    min_shared: int = 2,
) -> list[tuple[float, float, float]]:
    """``(threshold, precision, recall)`` rows — the Fig. 6.4 series."""
    rows: list[tuple[float, float, float]] = []
    for threshold in thresholds:
        matching = match_tables(
            ontology, tables, MatchConfig(threshold=threshold, min_shared=min_shared)
        )
        precision, recall = matching.precision_recall(ground_truth, ontology)
        rows.append((threshold, precision, recall))
    return rows
