"""Instance-bearing class ontologies (Section 6.4) and the YAGO+F hierarchy.

Unlike the schema ontology of Chapter 5 (which groups schema *elements*),
the YAGO-side ontology assigns *instances* (entity identifiers) to classes
arranged in a subclass tree; matching against database tables is driven by
instance overlap (Section 6.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

Instance = Hashable


@dataclass
class OntologyClass:
    name: str
    parent: str | None
    children: list[str] = field(default_factory=list)
    instances: set[Instance] = field(default_factory=set)


class InstanceOntology:
    """A class tree with direct instance assignments (YAGO-style)."""

    ROOT = "entity"

    def __init__(self):
        self._classes: dict[str, OntologyClass] = {
            self.ROOT: OntologyClass(name=self.ROOT, parent=None)
        }

    # -- construction -----------------------------------------------------

    def add_class(self, name: str, parent: str | None = None) -> OntologyClass:
        parent = parent or self.ROOT
        if name in self._classes:
            raise ValueError(f"duplicate class {name!r}")
        if parent not in self._classes:
            raise KeyError(f"unknown parent class {parent!r}")
        cls = OntologyClass(name=name, parent=parent)
        self._classes[name] = cls
        self._classes[parent].children.append(name)
        return cls

    def add_instances(self, name: str, instances: Iterable[Instance]) -> None:
        self._classes[name].instances.update(instances)

    # -- structure ----------------------------------------------------------

    def cls(self, name: str) -> OntologyClass:
        return self._classes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    def class_names(self) -> list[str]:
        return sorted(self._classes)

    def ancestors(self, name: str) -> list[str]:
        path: list[str] = []
        current: str | None = name
        while current is not None:
            path.append(current)
            current = self._classes[current].parent
        path.reverse()
        return path

    def level_of(self, name: str) -> int:
        return len(self.ancestors(name)) - 1

    def depth(self) -> int:
        return max((self.level_of(n) for n in self._classes), default=0)

    def leaves(self) -> list[str]:
        return sorted(n for n, c in self._classes.items() if not c.children)

    def classes_at_level(self, level: int) -> list[str]:
        return sorted(n for n in self._classes if self.level_of(n) == level)

    # -- instances -------------------------------------------------------------

    def direct_instances(self, name: str) -> set[Instance]:
        return set(self._classes[name].instances)

    def instances_of(self, name: str) -> set[Instance]:
        """All instances of ``name`` and its descendants (transitive)."""
        out: set[Instance] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            cls = self._classes[current]
            out |= cls.instances
            stack.extend(cls.children)
        return out

    def all_instances(self) -> set[Instance]:
        return self.instances_of(self.ROOT)


@dataclass
class YagoFHierarchy:
    """The combined structure: database tables attached to ontology classes.

    ``attachments[class]`` lists the tables matched under the class; the
    instance sets recorded per attachment are the shared instances that
    justified the match.
    """

    ontology: InstanceOntology
    attachments: dict[str, list[tuple[str, frozenset[Instance]]]] = field(
        default_factory=dict
    )

    def attach(self, class_name: str, table: str, shared: Iterable[Instance]) -> None:
        if class_name not in self.ontology:
            raise KeyError(f"unknown class {class_name!r}")
        self.attachments.setdefault(class_name, []).append(
            (table, frozenset(shared))
        )

    def attached_tables(self) -> set[str]:
        return {
            table for entries in self.attachments.values() for table, _shared in entries
        }

    def classes_with_tables(self) -> list[str]:
        return sorted(self.attachments)

    def shared_instance_count(self) -> int:
        return len(
            {
                instance
                for entries in self.attachments.values()
                for _table, shared in entries
                for instance in shared
            }
        )
