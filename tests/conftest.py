"""Shared fixtures.

``mini_db`` is a hand-built three-table movie database with exactly known
content, used wherever tests assert precise values.  The synthetic
IMDB/Lyrics/Freebase instances are session-scoped (building them is the
expensive part of the suite).
"""

from __future__ import annotations

import pytest

from repro.core.generator import InterpretationGenerator
from repro.core.probability import ATFModel, TemplateCatalog
from repro.datasets.freebase import build_freebase
from repro.datasets.imdb import build_imdb
from repro.datasets.lyrics import build_lyrics
from repro.db.backends import StorageBackend, create_backend
from repro.db.database import Database
from repro.db.schema import Attribute, Schema, Table


def mini_schema() -> Schema:
    schema = Schema()
    schema.add_table(Table("actor", [Attribute("name"), Attribute("id", textual=False)]))
    schema.add_table(
        Table("movie", [Attribute("title"), Attribute("year"), Attribute("id", textual=False)])
    )
    schema.add_table(Table("acts", [Attribute("role"), Attribute("id", textual=False)]))
    schema.link("acts", "actor")
    schema.link("acts", "movie")
    return schema


def build_mini_db(
    backend: str | StorageBackend = "memory", db_path=None
) -> StorageBackend:
    """actor(1..3) -- acts -- movie(1..3), with deliberate term collisions.

    * "hanks" occurs in actor.name (twice) and movie.title ("hanks island").
    * "london" occurs in actor.name and movie.title.
    * movie years are textual so "2001" is a keyword.

    ``backend`` selects the storage engine, so the same known content is
    available to the backend-parity tests on every engine.
    """
    db = create_backend(backend, mini_schema(), path=db_path)
    db.insert("actor", {"id": 1, "name": "tom hanks"})
    db.insert("actor", {"id": 2, "name": "colin hanks"})
    db.insert("actor", {"id": 3, "name": "jack london"})
    db.insert("movie", {"id": 1, "title": "terminal", "year": "2004"})
    db.insert("movie", {"id": 2, "title": "hanks island", "year": "2001"})
    db.insert("movie", {"id": 3, "title": "london calling", "year": "2001"})
    db.insert("acts", {"id": 1, "actor_id": 1, "movie_id": 1, "role": "captain"})
    db.insert("acts", {"id": 2, "actor_id": 1, "movie_id": 2, "role": "pilot"})
    db.insert("acts", {"id": 3, "actor_id": 2, "movie_id": 2, "role": "doctor"})
    db.insert("acts", {"id": 4, "actor_id": 3, "movie_id": 3, "role": "writer"})
    db.build_indexes()
    return db


@pytest.fixture
def mini_db() -> Database:
    return build_mini_db()


@pytest.fixture
def mini_generator(mini_db) -> InterpretationGenerator:
    return InterpretationGenerator(mini_db, max_template_joins=4)


@pytest.fixture
def mini_model(mini_db, mini_generator) -> ATFModel:
    catalog = TemplateCatalog(mini_generator.templates)
    return ATFModel(mini_db.require_index(), catalog)


@pytest.fixture(scope="session")
def imdb_db() -> Database:
    return build_imdb()


@pytest.fixture(scope="session")
def lyrics_db() -> Database:
    return build_lyrics()


@pytest.fixture(scope="session")
def freebase_instance():
    return build_freebase(n_domains=6, rows_per_entity_table=10)
