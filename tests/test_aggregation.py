"""Unit tests for analytical (aggregation) queries — §2.2.7, the K4 example."""

import pytest

from repro.core.generator import GeneratorConfig, InterpretationGenerator
from repro.core.interpretation import Interpretation, OperatorAtom, ValueAtom
from repro.core.keywords import Keyword, KeywordQuery
from repro.core.query import StructuredQuery
from repro.core.templates import QueryTemplate
from repro.user.oracle import IntendedInterpretation, operator_spec, value_spec


@pytest.fixture
def count_interpretation(mini_db):
    """count_{movie}(actor:"hanks" |x| acts |x| movie) — movies with hanks."""
    e1 = mini_db.schema.join_edges("actor", "acts")[0]
    e2 = mini_db.schema.join_edges("acts", "movie")[0]
    template = QueryTemplate(path=("actor", "acts", "movie"), edges=(e1, e2))
    query = KeywordQuery.from_terms(["count", "hanks"])
    k_count, k_hanks = query.keywords
    return Interpretation.build(
        query,
        template,
        {
            OperatorAtom(k_count, "count", "movie"): 2,
            ValueAtom(k_hanks, "actor", "name"): 0,
        },
    )


class TestOperatorAtom:
    def test_describe(self):
        atom = OperatorAtom(Keyword(0, "number"), "count", "movie")
        assert "COUNT" in atom.describe()
        assert atom.kind == "operator"

    def test_validate_single_operator(self, count_interpretation):
        count_interpretation.validate()

    def test_validate_rejects_two_operators(self, mini_db):
        e1 = mini_db.schema.join_edges("actor", "acts")[0]
        e2 = mini_db.schema.join_edges("acts", "movie")[0]
        template = QueryTemplate(path=("actor", "acts", "movie"), edges=(e1, e2))
        query = KeywordQuery.from_terms(["count", "number"])
        k0, k1 = query.keywords
        interp = Interpretation.build(
            query,
            template,
            {
                OperatorAtom(k0, "count", "movie"): 2,
                OperatorAtom(k1, "count", "actor"): 0,
            },
        )
        with pytest.raises(ValueError):
            interp.validate()


class TestAggregateQuery:
    def test_count_value(self, mini_db, count_interpretation):
        sq = count_interpretation.to_structured_query()
        assert sq.is_aggregate
        # hanks actors appear in movies 1 and 2 -> COUNT(DISTINCT movie) = 2.
        assert sq.aggregate_value(mini_db) == 2

    def test_algebra_rendering(self, count_interpretation):
        algebra = count_interpretation.to_structured_query().algebra()
        assert algebra.startswith("count_{movie}(")

    def test_sql_rendering(self, count_interpretation):
        sql = count_interpretation.to_structured_query().to_sql()
        assert sql.startswith("SELECT COUNT(DISTINCT t2_movie.id)")

    def test_non_aggregate_raises(self, mini_db):
        template = QueryTemplate(path=("actor",), edges=())
        sq = StructuredQuery(template=template)
        with pytest.raises(ValueError):
            sq.aggregate_value(mini_db)

    def test_unsupported_operator(self, mini_db):
        template = QueryTemplate(path=("actor",), edges=())
        sq = StructuredQuery(template=template, aggregate=("avg", 0))
        with pytest.raises(ValueError):
            sq.aggregate_value(mini_db)


class TestGeneratorIntegration:
    def test_operator_atoms_generated(self, mini_db):
        gen = InterpretationGenerator(mini_db, max_template_joins=2)
        atoms = gen.keyword_atoms(Keyword(0, "count"))
        assert any(isinstance(a, OperatorAtom) for a in atoms)

    def test_operator_vocabulary_configurable(self, mini_db):
        gen = InterpretationGenerator(
            mini_db, config=GeneratorConfig(operator_terms=())
        )
        atoms = gen.keyword_atoms(Keyword(0, "count"))
        assert not any(isinstance(a, OperatorAtom) for a in atoms)

    def test_k4_style_query_resolvable(self, mini_db):
        """"count movie hanks": the analytical intent is in the space."""
        gen = InterpretationGenerator(
            mini_db, config=GeneratorConfig(max_atoms_per_keyword=24), max_template_joins=2
        )
        query = KeywordQuery.from_terms(["count", "movie", "hanks"])
        intended = IntendedInterpretation(
            bindings={
                0: operator_spec("count", "movie"),
                1: ("table", "movie"),
                2: value_spec("actor", "name"),
            },
            template_path=("actor", "acts", "movie"),
        )
        space = gen.interpretations(query)
        matches = [i for i in space if intended.matches(i)]
        assert len(matches) == 1
        assert matches[0].to_structured_query().aggregate_value(mini_db) == 2

    def test_oracle_operator_spec(self):
        intended = IntendedInterpretation(bindings={0: operator_spec("count", "movie")})
        assert intended.matches_atom(OperatorAtom(Keyword(0, "count"), "count", "movie"))
        assert not intended.matches_atom(
            OperatorAtom(Keyword(0, "count"), "count", "actor")
        )
