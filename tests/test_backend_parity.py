"""Backend parity: every storage engine must produce identical results.

Runs the existing interpretation / top-k / baseline scenarios against each
registered backend and asserts ranked outputs are *identical* — the semantic
contract of :class:`repro.db.backends.base.StorageBackend`.  The in-memory
engine is the reference; any new backend added to the registry is covered
automatically.
"""

from __future__ import annotations

import pytest

from repro.baselines.banks import BanksSearch
from repro.baselines.discover import DiscoverRanker
from repro.baselines.sqak import SqakRanker
from repro.core.generator import InterpretationGenerator
from repro.core.keywords import KeywordQuery
from repro.core.probability import ATFModel, TemplateCatalog, rank_interpretations
from repro.core.topk import TopKExecutor
from repro.datasets.imdb import build_imdb
from repro.db.backends import available_backends
from repro.db.datagraph import DataGraph
from tests.conftest import build_mini_db

BACKENDS = available_backends()

QUERIES = ["hanks", "hanks 2001", "london", "hanks terminal", "london 2001"]


@pytest.fixture(scope="module", params=BACKENDS)
def stack(request):
    """(db, generator, model) over the mini database on one backend."""
    db = build_mini_db(request.param)
    generator = InterpretationGenerator(db, max_template_joins=4)
    model = ATFModel(db.require_index(), TemplateCatalog(generator.templates))
    return db, generator, model


def _ranked_signature(generator, model, query_text):
    query = KeywordQuery.parse(query_text)
    ranked = rank_interpretations(generator.interpretations(query), model)
    return [
        (interp.to_structured_query().algebra(), round(p, 12)) for interp, p in ranked
    ]


@pytest.fixture(scope="module")
def reference():
    """Reference outputs computed once on the in-memory engine."""
    db = build_mini_db("memory")
    generator = InterpretationGenerator(db, max_template_joins=4)
    model = ATFModel(db.require_index(), TemplateCatalog(generator.templates))
    return db, generator, model


class TestInterpretationParity:
    @pytest.mark.parametrize("query_text", QUERIES)
    def test_ranked_interpretations_identical(self, stack, reference, query_text):
        _db, generator, model = stack
        _rdb, ref_generator, ref_model = reference
        assert _ranked_signature(generator, model, query_text) == _ranked_signature(
            ref_generator, ref_model, query_text
        )

    def test_index_statistics_identical(self, stack, reference):
        db = stack[0]
        ref_db = reference[0]
        assert db.require_index().stats_snapshot() == ref_db.require_index().stats_snapshot()


class TestTopKParity:
    @pytest.mark.parametrize("query_text", QUERIES)
    def test_topk_results_identical(self, stack, reference, query_text):
        db, generator, model = stack
        ref_db, ref_generator, ref_model = reference
        query = KeywordQuery.parse(query_text)

        ranked = rank_interpretations(generator.interpretations(query), model)
        ref_ranked = rank_interpretations(
            ref_generator.interpretations(query), ref_model
        )
        executor = TopKExecutor(db)
        ref_executor = TopKExecutor(ref_db)
        results = executor.execute(ranked, k=5)
        ref_results = ref_executor.execute(ref_ranked, k=5)

        assert [(r.score, r.row_uids()) for r in results] == [
            (r.score, r.row_uids()) for r in ref_results
        ]
        stats = executor.statistics
        ref_stats = ref_executor.statistics
        assert stats.interpretations_executed == ref_stats.interpretations_executed
        assert stats.stopped_early == ref_stats.stopped_early


class TestBaselineParity:
    def test_discover_ranking_identical(self, stack, reference):
        _db, generator, _model = stack
        _rdb, ref_generator, _rmodel = reference
        query = KeywordQuery.parse("hanks 2001")
        ranked = DiscoverRanker(generator).rank(query)
        ref_ranked = DiscoverRanker(ref_generator).rank(query)
        assert [
            (r.rank, r.interpretation.describe(), round(r.probability, 12))
            for r in ranked
        ] == [
            (r.rank, r.interpretation.describe(), round(r.probability, 12))
            for r in ref_ranked
        ]

    def test_sqak_scores_identical(self, stack, reference):
        db, generator, _model = stack
        ref_db, ref_generator, _rmodel = reference
        query = KeywordQuery.parse("hanks 2001")
        ranker = SqakRanker(generator, db.require_index())
        ref_ranker = SqakRanker(ref_generator, ref_db.require_index())
        scores = {
            i.describe(): round(ranker.score(i), 12)
            for i in generator.interpretations(query)
        }
        ref_scores = {
            i.describe(): round(ref_ranker.score(i), 12)
            for i in ref_generator.interpretations(query)
        }
        assert scores == ref_scores

    def test_banks_datagraph_identical(self, stack, reference):
        db = stack[0]
        ref_db = reference[0]
        graph = DataGraph(db)
        ref_graph = DataGraph(ref_db)
        assert set(graph.graph.nodes) == set(ref_graph.graph.nodes)
        assert set(map(frozenset, graph.graph.edges)) == set(
            map(frozenset, ref_graph.graph.edges)
        )
        query = KeywordQuery.parse("hanks terminal")
        trees = BanksSearch(graph).search(query, k=3)
        ref_trees = BanksSearch(ref_graph).search(query, k=3)
        assert [sorted(t.nodes) for t in trees] == [sorted(t.nodes) for t in ref_trees]


@pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "memory"])
def test_imdb_search_pipeline_parity(backend):
    """End-to-end acceptance check on a small synthetic IMDB instance."""
    kwargs = dict(seed=7, n_movies=40, n_actors=24, n_directors=8, n_companies=6)
    mem_db = build_imdb(**kwargs)
    other_db = build_imdb(**kwargs, backend=backend)

    mem_generator = InterpretationGenerator(mem_db, max_template_joins=4)
    mem_model = ATFModel(mem_db.require_index(), TemplateCatalog(mem_generator.templates))
    generator = InterpretationGenerator(other_db, max_template_joins=4)
    model = ATFModel(other_db.require_index(), TemplateCatalog(generator.templates))

    for query_text in ("hanks 2001", "london", "stone"):
        ref = _ranked_signature(mem_generator, mem_model, query_text)
        got = _ranked_signature(generator, model, query_text)
        assert got == ref
        if not ref:
            continue
        query = KeywordQuery.parse(query_text)
        ranked_mem = rank_interpretations(mem_generator.interpretations(query), mem_model)
        ranked = rank_interpretations(generator.interpretations(query), model)
        mem_results = TopKExecutor(mem_db).execute(ranked_mem, k=5)
        results = TopKExecutor(other_db).execute(ranked, k=5)
        assert [(r.score, r.row_uids()) for r in results] == [
            (r.score, r.row_uids()) for r in mem_results
        ]


def test_bool_values_normalize_identically(tmp_path):
    """Bool cells store as ints on every backend (SQLite has no bool
    affinity), so index terms, selections and digests never diverge."""
    from repro.db.backends import available_backends, create_backend
    from repro.db.schema import Attribute, Schema, Table

    snapshots = {}
    for backend_name in available_backends():
        schema = Schema()
        schema.add_table(Table("t", [Attribute("flag"), Attribute("id", textual=False)]))
        db = create_backend(backend_name, schema)
        tup = db.insert("t", {"id": 1, "flag": True})
        assert tup.get("flag") == 1 and not isinstance(tup.get("flag"), bool)
        db.build_indexes()
        assert db.selection_keys("t", [("flag", ("1",))]) == {1}
        assert db.selection_keys("t", [("flag", ("true",))]) == set()
        snapshots[backend_name] = db.index.stats_snapshot()
        db.close()
    assert len(set(map(repr, snapshots.values()))) == 1
