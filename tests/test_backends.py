"""Unit tests of the storage-backend layer: registry + SQLite engine."""

from __future__ import annotations

import pytest

from repro.db.backends import (
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.db.backends import sql as sql_module
from repro.db.errors import (
    DatabaseError,
    IntegrityError,
    UnknownAttributeError,
    UnknownTableError,
)
from repro.db.schema import Attribute, Schema, Table
from tests.conftest import build_mini_db, mini_schema


class TestRegistry:
    def test_available_backends(self):
        assert available_backends() == ["memory", "sqlite", "sqlite-sharded"]

    def test_create_by_name(self):
        assert isinstance(create_backend("memory", mini_schema()), MemoryBackend)
        assert isinstance(create_backend("sqlite", mini_schema()), SQLiteBackend)

    def test_instance_passthrough(self):
        db = MemoryBackend(mini_schema())
        assert create_backend(db, mini_schema()) is db

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("postgres", mini_schema())

    def test_path_on_memory_backend_rejected(self):
        with pytest.raises(ValueError, match="does not support a storage path"):
            create_backend("memory", mini_schema(), path="/tmp/nope.db")

    def test_register_requires_concrete_name(self):
        class Nameless(StorageBackend):
            pass

        with pytest.raises(ValueError):
            register_backend(Nameless)

    def test_database_is_memory_backend(self):
        from repro.db import Database

        assert Database is MemoryBackend


class TestSQLiteRelation:
    def test_insert_get_len_scan(self):
        db = build_mini_db("sqlite")
        relation = db.relation("actor")
        assert len(relation) == 3
        assert relation.get(2).get("name") == "colin hanks"
        assert relation.get(99) is None
        assert [t.key for t in relation] == [1, 2, 3]
        assert list(relation.keys()) == [1, 2, 3]

    def test_lookup(self):
        db = build_mini_db("sqlite")
        matches = db.relation("acts").lookup("actor_id", 1)
        assert [t.key for t in matches] == [1, 2]
        assert db.relation("acts").lookup("actor_id", 77) == []

    def test_auto_key_assignment(self):
        db = create_backend("sqlite", mini_schema())
        first = db.insert("actor", {"name": "anonymous"})
        second = db.insert("actor", {"name": "also anonymous"})
        assert first.key == 0
        assert second.key == 1

    def test_duplicate_key_raises(self):
        db = build_mini_db("sqlite")
        with pytest.raises(IntegrityError):
            db.insert("actor", {"id": 1, "name": "again"})

    def test_unknown_attribute_raises(self):
        db = build_mini_db("sqlite")
        with pytest.raises(UnknownAttributeError):
            db.insert("actor", {"id": 9, "salary": 1})

    def test_unknown_table_raises(self):
        db = build_mini_db("sqlite")
        with pytest.raises(UnknownTableError):
            db.relation("studio")

    def test_missing_attributes_become_none(self):
        db = create_backend("sqlite", mini_schema())
        tup = db.insert("movie", {"id": 1, "title": "untitled"})
        assert tup.get("year") is None
        assert db.relation("movie").get(1).get("year") is None


class TestSQLitePersistence:
    def test_roundtrip_reuses_stored_rows(self, tmp_path):
        path = tmp_path / "mini.sqlite"
        original = build_mini_db("sqlite", db_path=path)
        snapshot = original.require_index().stats_snapshot()
        original.close()

        reopened = create_backend("sqlite", mini_schema(), path=path)
        assert reopened.has_rows()
        assert reopened.total_tuples() == 10
        # Index statistics are rebuilt from the stored tables, without any
        # re-ingestion, and match the original build exactly.
        assert reopened.require_index().stats_snapshot() == snapshot
        reopened.close()

    def test_fresh_file_is_empty(self, tmp_path):
        db = create_backend("sqlite", mini_schema(), path=tmp_path / "empty.sqlite")
        assert not db.has_rows()
        db.close()

    def test_schema_mismatch_fails_fast(self, tmp_path):
        path = tmp_path / "mini.sqlite"
        build_mini_db("sqlite", db_path=path).close()
        other = Schema()
        other.add_table(Table("actor", [Attribute("stage_name"), Attribute("id", textual=False)]))
        with pytest.raises(DatabaseError, match="stored table"):
            SQLiteBackend(other, path=path)

    def test_context_manager_commits(self, tmp_path):
        path = tmp_path / "ctx.sqlite"
        with create_backend("sqlite", mini_schema(), path=path) as db:
            db.insert("actor", {"id": 1, "name": "tom hanks"})
        reopened = create_backend("sqlite", mini_schema(), path=path)
        assert reopened.has_rows()
        reopened.close()

    def test_dataset_builder_skips_generation(self, tmp_path):
        from repro.datasets.imdb import build_imdb

        path = tmp_path / "imdb.sqlite"
        first = build_imdb(n_movies=20, n_actors=12, backend="sqlite", db_path=path)
        totals = first.total_tuples()
        first.close()
        # Re-opening with the same parameters loads the stored rows.
        again = build_imdb(n_movies=20, n_actors=12, backend="sqlite", db_path=path)
        assert again.total_tuples() == totals
        again.close()

    def test_dataset_builder_rejects_mismatched_store(self, tmp_path):
        from repro.datasets.imdb import build_imdb

        path = tmp_path / "imdb.sqlite"
        build_imdb(n_movies=20, n_actors=12, backend="sqlite", db_path=path).close()
        # Asking for a differently sized instance from the same file must not
        # silently return the stored one.
        with pytest.raises(ValueError, match="different IMDB instance"):
            build_imdb(n_movies=5, n_actors=3, backend="sqlite", db_path=path)

    def test_dataset_builder_rejects_different_seed(self, tmp_path):
        """Same sizes, different seed: counts match, the fingerprint must not."""
        from repro.datasets.imdb import build_imdb

        path = tmp_path / "imdb.sqlite"
        build_imdb(seed=7, n_movies=10, n_actors=6, backend="sqlite", db_path=path).close()
        with pytest.raises(ValueError, match="generation parameters differ"):
            build_imdb(seed=8, n_movies=10, n_actors=6, backend="sqlite", db_path=path)

    def test_negative_limit_rejected_on_both_backends(self):
        for backend in ("memory", "sqlite"):
            db = build_mini_db(backend)
            with pytest.raises(ValueError, match="non-negative"):
                db.execute_path(["actor"], [], limit=-1)


class TestSQLiteExecution:
    @staticmethod
    def _actor_movie(db):
        schema = db.schema
        e1 = schema.join_edges("actor", "acts")[0]
        e2 = schema.join_edges("acts", "movie")[0]
        return ["actor", "acts", "movie"], [e1, e2]

    def test_limit_pushdown(self):
        db = build_mini_db("sqlite")
        path, edges = self._actor_movie(db)
        rows = db.execute_path(path, edges, limit=2)
        assert len(rows) == 2
        assert db.has_results(path, edges)

    def test_empty_selection_short_circuits(self):
        db = build_mini_db("sqlite")
        path, edges = self._actor_movie(db)
        assert db.execute_path(path, edges, {0: [("name", ("zzz",))]}) == []

    def test_arity_mismatch(self):
        db = build_mini_db("sqlite")
        path, edges = self._actor_movie(db)
        with pytest.raises(ValueError):
            db.execute_path(path, edges[:1])

    def test_wrong_edge_raises(self):
        db = build_mini_db("sqlite")
        e1 = db.schema.join_edges("actor", "acts")[0]
        with pytest.raises(ValueError):
            db.execute_path(["actor", "movie"], [e1])

    def test_unknown_selection_attribute(self):
        db = build_mini_db("sqlite")
        path, edges = self._actor_movie(db)
        with pytest.raises(UnknownTableError):
            db.execute_path(path, edges, {0: [("salary", ("10",))]})

    def test_large_key_sets_post_filtered(self, monkeypatch):
        """Key sets above the SQL parameter budget fall back to Python filtering."""
        monkeypatch.setattr(sql_module, "MAX_INLINE_KEYS", 1)
        db = build_mini_db("sqlite")
        path, edges = self._actor_movie(db)
        sel = {0: [("name", ("hanks",))], 2: [("year", ("2001",))]}
        rows = db.execute_path(path, edges, sel)
        assert {tuple(t.uid for t in r) for r in rows} == {
            (("actor", 1), ("acts", 2), ("movie", 2)),
            (("actor", 2), ("acts", 3), ("movie", 2)),
        }
        assert len(db.execute_path(path, edges, sel, limit=1)) == 1

    def test_add_table_after_build(self):
        db = build_mini_db("sqlite")
        db.add_table(Table("award", [Attribute("title"), Attribute("id", textual=False)]))
        db.insert("award", {"id": 1, "title": "best hanks impression"})
        assert len(db.relation("award")) == 1
        assert "award" in db.index.tables_containing("hanks")


class TestLimitOrderParity:
    """``limit`` must truncate to the same rows on every backend.

    The in-memory engine orders selected tuples like ``repr(key)`` ('10' <
    '2'), not insertion order — keys 2 and 10 tell the two apart.
    """

    @staticmethod
    def _two_actor_db(backend):
        db = create_backend(backend, mini_schema())
        db.insert("actor", {"id": 2, "name": "foo bar"})
        db.insert("actor", {"id": 10, "name": "foo baz"})
        db.insert("movie", {"id": 1, "title": "x", "year": "2000"})
        db.insert("acts", {"id": 1, "actor_id": 2, "movie_id": 1, "role": "a"})
        db.insert("acts", {"id": 2, "actor_id": 10, "movie_id": 1, "role": "b"})
        db.build_indexes()
        return db

    def test_selected_base_limit(self):
        mem = self._two_actor_db("memory")
        sq = self._two_actor_db("sqlite")
        sel = {0: [("name", ("foo",))]}
        for limit in (1, 2, None):
            mem_rows = mem.execute_path(["actor"], [], sel, limit=limit)
            sq_rows = sq.execute_path(["actor"], [], sel, limit=limit)
            assert [r[0].key for r in sq_rows] == [r[0].key for r in mem_rows]

    def test_join_path_limit(self):
        mem = self._two_actor_db("memory")
        sq = self._two_actor_db("sqlite")
        path = ["movie", "acts", "actor"]
        e1 = mem.schema.join_edges("acts", "movie")[0]
        e2 = mem.schema.join_edges("acts", "actor")[0]
        sel = {2: [("name", ("foo",))]}
        for limit in (1, 2, None):
            mem_rows = mem.execute_path(path, [e1, e2], sel, limit=limit)
            sq_rows = sq.execute_path(path, [e1, e2], sel, limit=limit)
            assert [tuple(t.uid for t in r) for r in sq_rows] == [
                tuple(t.uid for t in r) for r in mem_rows
            ]


    def test_string_key_limit(self):
        """repr()-based key order must hold for string keys too ('ab c' < 'ab')."""

        def build(backend):
            schema = Schema()
            schema.add_table(Table("a", [Attribute("t"), Attribute("id", textual=False)]))
            db = create_backend(backend, schema)
            db.insert("a", {"id": "ab", "t": "hello x"})
            db.insert("a", {"id": "ab c", "t": "hello y"})
            db.build_indexes()
            return db

        mem, sq = build("memory"), build("sqlite")
        sel = {0: [("t", ("hello",))]}
        for limit in (1, 2):
            mem_rows = mem.execute_path(["a"], [], sel, limit=limit)
            sq_rows = sq.execute_path(["a"], [], sel, limit=limit)
            assert [r[0].key for r in sq_rows] == [r[0].key for r in mem_rows]


class TestValueFidelity:
    def test_bool_values_normalized_before_indexing(self, tmp_path):
        """Live indexing must see what a reopen rebuild will see (bool -> int)."""
        path = tmp_path / "b.sqlite"
        schema = Schema()
        schema.add_table(Table("flags", [Attribute("v"), Attribute("id", textual=False)]))
        db = create_backend("sqlite", schema, path=path)
        db.build_indexes()
        db.insert("flags", {"id": 1, "v": True})
        live = db.index.stats_snapshot()
        db.close()
        schema2 = Schema()
        schema2.add_table(Table("flags", [Attribute("v"), Attribute("id", textual=False)]))
        reopened = create_backend("sqlite", schema2, path=path)
        assert reopened.require_index().stats_snapshot() == live
        reopened.close()

    def test_unstorable_value_raises_database_error(self):
        db = build_mini_db("sqlite")
        with pytest.raises(DatabaseError):
            db.insert("actor", {"id": 50, "name": ["not", "a", "scalar"]})


def test_load_database_reuses_populated_sqlite_file(tmp_path):
    from repro.db.serialize import load_database, save_database

    json_path = tmp_path / "db.json"
    sqlite_path = tmp_path / "db.sqlite"
    memory = build_mini_db("memory")
    save_database(memory, json_path)
    first = load_database(json_path, backend="sqlite", db_path=sqlite_path)
    first.close()
    # Loading again into the same file must not re-insert (no IntegrityError)
    # and must see the identical content.
    again = load_database(json_path, backend="sqlite", db_path=sqlite_path)
    assert again.index.stats_snapshot() == memory.index.stats_snapshot()
    again.close()


def test_load_database_rejects_mismatched_sqlite_file(tmp_path):
    from repro.db.serialize import load_database, save_database

    json_path = tmp_path / "db.json"
    sqlite_path = tmp_path / "db.sqlite"
    save_database(build_mini_db("memory"), json_path)
    # Populate the target file with *different* content first.
    other = create_backend("sqlite", mini_schema(), path=sqlite_path)
    other.insert("actor", {"id": 1, "name": "someone else"})
    other.close()
    with pytest.raises(ValueError, match="already holds different data"):
        load_database(json_path, backend="sqlite", db_path=sqlite_path)


def test_copy_into_sqlite():
    memory = build_mini_db("memory")
    sqlite = memory.copy_into(create_backend("sqlite", mini_schema()))
    sqlite.build_indexes()
    assert sqlite.total_tuples() == memory.total_tuples()
    assert sqlite.index.stats_snapshot() == memory.index.stats_snapshot()
