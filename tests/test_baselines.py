"""Unit tests for repro.baselines (SQAK, DISCOVER, BANKS)."""

import pytest

from repro.baselines.banks import BanksSearch
from repro.baselines.discover import DiscoverRanker
from repro.baselines.sqak import SqakRanker
from repro.core.keywords import KeywordQuery
from repro.db.datagraph import DataGraph
from repro.user.oracle import IntendedInterpretation, value_spec

HANKS_2001 = KeywordQuery.from_terms(["hanks", "2001"])


class TestSqak:
    @pytest.fixture
    def ranker(self, mini_db, mini_generator):
        return SqakRanker(mini_generator, mini_db.require_index())

    def test_rank_is_complete_permutation(self, ranker, mini_generator):
        ranked = ranker.rank(HANKS_2001)
        assert len(ranked) == len(mini_generator.interpretations(HANKS_2001))
        assert [r.rank for r in ranked] == list(range(1, len(ranked) + 1))

    def test_scores_prefer_fewer_joins(self, ranker):
        """Steiner minimization: all predicates equal, shorter trees win."""
        ranked = ranker.rank(KeywordQuery.from_terms(["hanks"]))
        sizes = [r.interpretation.template.size for r in ranked]
        assert sizes[0] == min(sizes)

    def test_distinctive_match_preferred(self, ranker, mini_db):
        """TF-IDF prefers the rarer binding: "london" is rarer (hence more
        distinctive) in actor.name than "hanks" — SQAK node cost reflects it."""
        idx = mini_db.require_index()
        assert idx.idf("london", "actor") > idx.idf("hanks", "actor")

    def test_rank_of_intended(self, ranker):
        intended = IntendedInterpretation(
            bindings={0: value_spec("actor", "name"), 1: value_spec("movie", "year")},
            template_path=("actor", "acts", "movie"),
        )
        assert ranker.rank_of(HANKS_2001, intended) is not None

    def test_probabilities_normalized(self, ranker):
        ranked = ranker.rank(HANKS_2001)
        assert sum(r.probability for r in ranked) == pytest.approx(1.0)


class TestDiscover:
    @pytest.fixture
    def ranker(self, mini_generator):
        return DiscoverRanker(mini_generator)

    def test_orders_by_join_count(self, ranker):
        ranked = ranker.rank(HANKS_2001)
        sizes = [r.interpretation.template.size for r in ranked]
        assert sizes == sorted(sizes)

    def test_rank_of(self, ranker):
        intended = IntendedInterpretation(
            bindings={0: value_spec("actor", "name"), 1: value_spec("movie", "year")},
            template_path=("actor", "acts", "movie"),
        )
        rank = ranker.rank_of(HANKS_2001, intended)
        assert rank is not None

    def test_missing_interpretation(self, ranker):
        ghost = IntendedInterpretation(bindings={0: value_spec("company", "name")})
        assert ranker.rank_of(HANKS_2001, ghost) is None


class TestBanks:
    @pytest.fixture
    def search(self, mini_db):
        return BanksSearch(DataGraph(mini_db))

    def test_finds_joining_tuple_trees(self, search):
        trees = search.search(HANKS_2001, k=5)
        assert trees
        # Best tree should join a hanks actor with a 2001 movie via acts.
        best = trees[0]
        tables = {t for t, _k in best.nodes}
        assert "actor" in tables or "movie" in tables

    def test_tree_connects_all_keyword_groups(self, search, mini_db):
        groups = search.keyword_groups(HANKS_2001)
        for tree in search.search(HANKS_2001, k=3):
            for group in groups:
                assert tree.nodes & group or any(
                    n in group for n in tree.nodes
                ), "tree misses a keyword group"

    def test_costs_ascending(self, search):
        trees = search.search(HANKS_2001, k=5)
        costs = [t.cost for t in trees]
        assert costs == sorted(costs)

    def test_minimal_tree_shape(self, search):
        """The cheapest JTT for hanks+2001 is actor-acts-movie (3 tuples)."""
        trees = search.search(HANKS_2001, k=1)
        assert trees[0].size <= 3

    def test_unmatched_keywords(self, search):
        assert search.search(KeywordQuery.from_terms(["zzz"]), k=3) == []

    def test_single_keyword(self, search):
        trees = search.search(KeywordQuery.from_terms(["london"]), k=3)
        assert trees
        assert trees[0].cost == 0.0  # the keyword node itself

    def test_deduplicated_node_sets(self, search):
        trees = search.search(HANKS_2001, k=10)
        node_sets = [t.nodes for t in trees]
        assert len(node_sets) == len(set(node_sets))

    def test_k_limits_results(self, search):
        assert len(search.search(HANKS_2001, k=2)) <= 2
