"""Batched (UNION ALL) execution parity with sequential execution.

The contract under test: for any ranked interpretation list,
``execute_paths_batched`` / the executor's batched strategy return *exactly*
the rows, scores and order of sequential per-interpretation execution — on
the SQLite backend (native tagged-UNION pushdown) and on backends inheriting
the generic per-path fallback — while the SQLite path issues a single SQL
statement per batch.
"""

from __future__ import annotations

import pytest

from repro.core.topk import TopKExecutor
from repro.db.backends.base import BatchedExecution
from repro.db.backends.memory import MemoryBackend
from repro.db.backends.sqlite import SQLiteBackend
from repro.engine import EngineConfig, QueryEngine, ResultCache
from tests.conftest import build_mini_db, mini_schema

QUERIES = ["hanks 2001", "london", "hanks", "2001", "stone hill", "summer"]


@pytest.fixture(autouse=True)
def fresh_process_cache():
    ResultCache.clear_process_cache()
    yield
    ResultCache.clear_process_cache()


def _result_rows(context):
    return [(r.score, r.interpretation_rank, r.row_uids()) for r in context.results]


def _specs(db, query_text, n=None):
    """Path specs of the ranked interpretations of ``query_text`` on ``db``."""
    engine = QueryEngine(db, config=EngineConfig(cache_results=False))
    ranked = engine.rank(query_text)
    queries = [interp.to_structured_query() for interp, _p in ranked[:n]]
    return [query.path_spec() for query in queries], queries


class TestBackendBatchedContract:
    """execute_paths_batched parity at the storage layer."""

    @pytest.mark.parametrize("limit", [None, 1, 3, 0])
    def test_sqlite_union_matches_sequential(self, limit):
        db = build_mini_db("sqlite")
        specs, queries = _specs(db, "hanks 2001")
        assert len(specs) >= 2
        batched = db.execute_paths_batched(specs, limit=limit)
        assert isinstance(batched, BatchedExecution)
        for rows, query in zip(batched.rows, queries):
            assert rows == query.execute(db, limit=limit)

    def test_sqlite_issues_one_statement(self):
        db = build_mini_db("sqlite")
        specs, _queries = _specs(db, "hanks 2001")
        batched = db.execute_paths_batched(specs, limit=10)
        assert batched.statements == 1
        assert batched.batched_indexes == list(range(len(specs)))

    def test_provably_empty_spec_costs_no_statement(self):
        db = build_mini_db("sqlite")
        specs, _queries = _specs(db, "hanks")
        # A selection no tuple satisfies: empty key set, no SQL needed.
        path, edges, _selections = specs[0]
        empty_spec = (path, edges, {0: [("name", ("notaterm",))]})
        batched = db.execute_paths_batched([empty_spec], limit=10)
        assert batched.rows == [[]]
        assert batched.statements == 0
        assert batched.batched_indexes == []

    def test_single_member_skips_union_overhead(self):
        db = build_mini_db("sqlite")
        specs, queries = _specs(db, "london", n=1)
        batched = db.execute_paths_batched(specs, limit=10)
        assert batched.statements == 1
        assert batched.batched_indexes == []  # plain execute_path, no tagging
        assert batched.rows[0] == queries[0].execute(db, limit=10)

    def test_oversized_key_set_falls_back_per_path(self, monkeypatch):
        """Members beyond the inline-parameter budget run sequentially."""
        from repro.db.backends import sql as sql_module

        monkeypatch.setattr(sql_module, "MAX_INLINE_KEYS", 1)
        db = build_mini_db("sqlite")
        specs, queries = _specs(db, "hanks 2001")
        batched = db.execute_paths_batched(specs, limit=10)
        # "hanks" matches 3 tuples somewhere, so every member overflows the
        # patched budget — but results must still be exactly sequential.
        for rows, query in zip(batched.rows, queries):
            assert rows == query.execute(db, limit=10)
        assert batched.statements == len(specs)
        assert batched.batched_indexes == []
        # Every excluded spec reports why it left the shared statement (the
        # spec whose only key set fits the patched cap runs solo instead —
        # a single-member batch, not a fallback).
        assert batched.fallbacks
        assert all("inline cap" in reason for reason in batched.fallbacks.values())

    def test_parameter_budget_overflow_reports_reason(self, monkeypatch):
        """A spec whose total key footprint blows the statement-wide budget
        (each set individually inlinable) falls back with the budget cause."""
        from repro.db.backends import sql as sql_module

        monkeypatch.setattr(sql_module, "MAX_TOTAL_INLINE_KEYS", 3)
        db = build_mini_db("sqlite")
        specs, queries = _specs(db, "hanks 2001")
        assert len(specs) >= 2
        batched = db.execute_paths_batched(specs, limit=10)
        for rows, query in zip(batched.rows, queries):
            assert rows == query.execute(db, limit=10)
        assert batched.fallbacks  # at least one spec left the batch
        assert all(
            "parameter budget exhausted" in reason
            for reason in batched.fallbacks.values()
        )
        # Specs that stayed inside the budget still shared one statement.
        surviving = [i for i in range(len(specs)) if i not in batched.fallbacks]
        assert batched.batched_indexes == (
            surviving if len(surviving) > 1 else []
        )

    def test_memory_backend_inherits_per_path_fallback(self):
        db = build_mini_db("memory")
        assert not MemoryBackend.supports_batched_execution
        specs, queries = _specs(db, "hanks 2001")
        batched = db.execute_paths_batched(specs, limit=10)
        assert batched.statements == len(specs)
        for rows, query in zip(batched.rows, queries):
            assert rows == query.execute(db, limit=10)

    def test_duplicate_specs_attribute_independently(self):
        db = build_mini_db("sqlite")
        specs, queries = _specs(db, "london", n=2)
        doubled = [specs[0], specs[0], *specs[1:]]
        batched = db.execute_paths_batched(doubled, limit=10)
        expected = queries[0].execute(db, limit=10)
        assert batched.rows[0] == expected
        assert batched.rows[1] == expected


class TestExecutorBatchedStrategy:
    """TopKExecutor.execute with batch_size set: same rows, fewer statements."""

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_batched_equals_sequential(self, backend, k):
        db = build_mini_db(backend)
        engine = QueryEngine(db, config=EngineConfig(cache_results=False))
        for query_text in QUERIES:
            ranked = engine.rank(query_text)
            sequential = TopKExecutor(db, per_query_limit=100)
            batched = TopKExecutor(db, per_query_limit=100, batch_size=4)
            expected = sequential.execute(ranked, k=k)
            actual = batched.execute(ranked, k=k)
            assert [
                (r.score, r.interpretation_rank, r.row_uids()) for r in actual
            ] == [(r.score, r.interpretation_rank, r.row_uids()) for r in expected]

    def test_sqlite_batch_is_one_statement(self):
        db = build_mini_db("sqlite")
        engine = QueryEngine(db, config=EngineConfig(cache_results=False))
        ranked = engine.rank("hanks 2001")
        assert len(ranked) >= 2
        executor = TopKExecutor(db, per_query_limit=100, batch_size=16)
        executor.execute(ranked, k=5)
        stats = executor.statistics
        assert stats.interpretations_executed >= 2
        assert stats.sql_statements == 1
        assert stats.batches == 1
        assert set(stats.attribution) == set(
            range(1, stats.interpretations_executed + 1)
        )

    def test_cache_hits_leave_the_batch(self):
        db = build_mini_db("sqlite")
        cache = ResultCache(db)
        engine = QueryEngine(db, cache=cache)
        ranked = engine.rank("hanks 2001")
        warm = ranked[0][0].to_structured_query()
        cache.put(warm, 100, warm.execute(db, limit=100))
        executor = TopKExecutor(db, per_query_limit=100, cache=cache, batch_size=16)
        executor.execute(ranked, k=5)
        stats = executor.statistics
        assert stats.cache_hits == 1
        assert stats.interpretations_executed >= 1
        assert stats.sql_statements == stats.batches == 1
        assert 1 not in stats.attribution  # the warm rank executed nothing

    def test_batched_populates_the_cache(self):
        db = build_mini_db("sqlite")
        cache = ResultCache(db)
        engine = QueryEngine(db, cache=cache)
        ranked = engine.rank("hanks 2001")
        first = TopKExecutor(db, per_query_limit=100, cache=cache, batch_size=16)
        expected = first.execute(ranked, k=5)
        second = TopKExecutor(db, per_query_limit=100, cache=cache, batch_size=16)
        actual = second.execute(ranked, k=5)
        assert second.statistics.interpretations_executed == 0
        assert second.statistics.sql_statements == 0
        assert second.statistics.cache_hits > 0
        assert [r.row_uids() for r in actual] == [r.row_uids() for r in expected]


class TestEnginePipelineParity:
    """End-to-end: batched engines answer exactly like sequential engines."""

    @pytest.mark.parametrize("dataset", ["imdb", "lyrics"])
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_batched_engine_matches_sequential_engine(self, dataset, backend):
        sequential = QueryEngine.for_dataset(
            dataset,
            backend=backend,
            config=EngineConfig(cache_results=False, batch_execution=False),
        )
        batched = QueryEngine.for_dataset(
            dataset,
            backend=backend,
            config=EngineConfig(cache_results=False, batch_execution=True),
        )
        for query_text in QUERIES:
            expected = sequential.run(query_text, k=5)
            actual = batched.run(query_text, k=5)
            assert _result_rows(actual) == _result_rows(expected), (
                dataset,
                backend,
                query_text,
            )

    def test_acceptance_one_statement_for_k_interpretations(self):
        """The headline criterion: k interpretations, 1 SQL statement."""
        engine = QueryEngine.for_dataset(
            "imdb", backend="sqlite", config=EngineConfig(cache_results=False)
        )
        context = engine.run("hanks 2001", k=5)
        stats = context.executor_statistics
        assert stats.interpretations_executed >= 2
        assert stats.sql_statements == 1
        assert stats.batches == 1
        assert sum(stats.attribution.values()) == stats.rows_materialized

    def test_memory_engine_stays_sequential(self):
        engine = QueryEngine.for_dataset(
            "imdb", backend="memory", config=EngineConfig(cache_results=False)
        )
        context = engine.run("hanks 2001", k=5)
        stats = context.executor_statistics
        assert stats.batches == 0
        assert stats.sql_statements == stats.interpretations_executed

    def test_explain_shows_batching(self):
        engine = QueryEngine.for_dataset(
            "imdb", backend="sqlite", config=EngineConfig(cache_results=False)
        )
        context = engine.run("hanks 2001", k=5, explain=True)
        text = "\n".join(context.explain_lines())
        assert "sql statements: 1 (1 batch(es)" in text
        assert "rows per executed interpretation" in text
        assert "batch fallback" not in text  # nothing overflowed

    def test_explain_shows_fallback_causes(self, monkeypatch):
        """When the parameter budget overflows, --explain names the ranks
        that fell back and why (the former silent-fallback blind spot)."""
        from repro.db.backends import sql as sql_module

        monkeypatch.setattr(sql_module, "MAX_INLINE_KEYS", 1)
        engine = QueryEngine.for_dataset(
            "imdb", backend="sqlite", config=EngineConfig(cache_results=False)
        )
        context = engine.run("london", k=5, explain=True)
        stats = context.executor_statistics
        assert stats.fallback_reasons
        # Reasons key on the 1-based interpretation rank used everywhere
        # else in the explain block.
        assert set(stats.fallback_reasons) <= set(
            range(1, len(context.ranked) + 1)
        )
        text = "\n".join(context.explain_lines())
        for rank, reason in stats.fallback_reasons.items():
            assert f"batch fallback #{rank}: {reason}" in text


def test_schema_and_backend_flags():
    """The capability flag matches the implementations."""
    assert SQLiteBackend.supports_batched_execution
    assert not MemoryBackend.supports_batched_execution
    assert mini_schema().table_names  # conftest helper stays importable
